"""Train once, serve many: export a detector bundle and screen over HTTP.

The paper's deployment story splits in two: an offline stage that learns
the trusted regions (expensive — Monte Carlo simulation, KMM calibration,
five boundary fits), and a production-test stage that screens each
fabricated device in milliseconds.  ``repro.serve`` packages that split:

1. fit the golden chip-free detector and export it as a single
   ``repro-bundle-v1`` file (self-describing, digest-verified);
2. serve the bundle over a zero-dependency HTTP JSON API with
   micro-batching;
3. screen devices from any client — here the stdlib-only
   ``ScoringClient`` — and read the serving metrics.

Run:  python examples/serve_and_score.py
"""

import os
import tempfile

from repro import DetectorConfig, GoldenChipFreeDetector, PlatformConfig
from repro import generate_experiment_data
from repro.serve import DetectorServer, ScoringClient, load_bundle


def main() -> None:
    # 1. Offline: fit the detector (no golden chips anywhere) ...
    data = generate_experiment_data(PlatformConfig())
    detector = GoldenChipFreeDetector(DetectorConfig(kde_samples=30_000))
    detector.fit_premanufacturing(data.sim_pcms, data.sim_fingerprints)
    detector.fit_silicon(data.dutt_pcms)

    with tempfile.TemporaryDirectory() as scratch:
        # ... and freeze it into one exportable artifact.
        bundle_path = os.path.join(scratch, "detector.npz")
        info = detector.export_bundle(bundle_path)
        print(f"exported {os.path.basename(bundle_path)} "
              f"(schema v{info.schema_version}, digest {info.digest[:12]}...)")

        # The bundle stands alone: any process can verify and reload it.
        restored = load_bundle(bundle_path)
        print(f"bundle carries boundaries {', '.join(restored.boundaries)}")

        # 2. Production test: serve the bundle over HTTP.  port=0 picks a
        # free port; micro-batching coalesces concurrent requests.
        with DetectorServer(restored, port=0) as server:
            client = ScoringClient(server.url)
            client.wait_ready()
            print(f"serving at {server.url}")

            # 3. Screen every device under Trojan test against B5.
            result = client.score(data.dutt_fingerprints, boundaries=["B5"])
            flagged = int((~result.verdicts["B5"]).sum())
            print(f"B5 flags {flagged} of {result.n_devices} devices "
                  f"as Trojan-infested")

            # The service keeps score too.
            counters = client.metrics()["counters"]
            print(f"server counters: {counters['serve.requests']} request(s), "
                  f"{counters['serve.devices_scored']} device(s) scored")


if __name__ == "__main__":
    main()
