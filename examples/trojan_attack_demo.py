"""Attack demo: the hardware Trojans really leak the AES key.

Reconstructs the threat model of the paper's platform (Liu/Jin/Makris,
ICCAD'13): a chip encrypts plaintexts with an on-chip AES-128 key and
transmits ciphertexts over a public UWB channel.  The Trojan hides each key
bit in the amplitude (Trojan I) or frequency (Trojan II) margin of the
corresponding ciphertext-bit transmission.

The demo shows three things:

1. an eavesdropper who knows the encoding recovers the *entire* key from
   ordinary traffic;
2. the infested chip is functionally identical to the clean one (it passes
   every functional test);
3. the per-device transmission power stays within the specification margin,
   so parametric production tests pass too.

Run:  python examples/trojan_attack_demo.py
"""

import numpy as np

from repro.circuits.spicemodel import default_spice_deck
from repro.crypto.bits import bytes_to_bits, random_block, random_key
from repro.silicon.foundry import Foundry
from repro.testbed.chip import WirelessCryptoChip
from repro.testbed.spec import ProductionTest
from repro.trojans.amplitude import AmplitudeModulationTrojan
from repro.trojans.attacker import KeyRecoveryAttacker
from repro.trojans.frequency import FrequencyModulationTrojan


def eavesdrop(chip, mode, n_blocks=80, seed=0):
    """Intercept ``n_blocks`` transmissions and try to recover the key."""
    rng = np.random.default_rng(seed)
    attacker = KeyRecoveryAttacker(mode=mode)
    for _ in range(n_blocks):
        attacker.observe(chip.transmit_plaintext(random_block(rng)))
    return attacker


def main() -> None:
    deck = default_spice_deck()
    foundry = Foundry(deck_nominal=deck.nominal, variation=deck.variation, seed=1)
    die = foundry.fabricate_lot(1)[0]
    key = random_key(rng=42)

    clean = WirelessCryptoChip(die=die, key=key, version="TF")
    # The production flow: known-answer AES + power/frequency spec limits
    # centred on the clean reference.  The +-25 % power margin is what the
    # line needs anyway (process variation alone spans ~+-14 %, 2 sigma).
    program = ProductionTest.centered_on(clean, margin=0.25, seed=7)

    trojans = {
        "Trojan I (amplitude)": (AmplitudeModulationTrojan(depth=0.17), "amplitude"),
        "Trojan II (frequency)": (FrequencyModulationTrojan(depth=0.17), "frequency"),
    }

    for label, (trojan, mode) in trojans.items():
        infested = WirelessCryptoChip(die=die, key=key, trojan=trojan, version="T")
        print(f"=== {label}")

        # 1+2. The full production flow: functional + parametric screens.
        result = program.run(infested)
        print(f"  functional test:            {'PASS' if result.functional_pass else 'FAIL'}")
        print(
            f"  power screen:               {'PASS' if result.power_pass else 'FAIL'} "
            f"({result.power / program.run(clean).power - 1.0:+.2%} vs clean)"
        )
        print(f"  frequency screen:           {'PASS' if result.frequency_pass else 'FAIL'}")
        assert result.passed, "the Trojan must survive the production flow"

        # 3. The leak: full key recovery from the public channel.
        attacker = eavesdrop(infested, mode)
        recovered = attacker.recover_key_bits()
        correct = int(np.sum(recovered == bytes_to_bits(key)))
        print(f"  channel coverage:           {attacker.coverage():.0%}")
        print(f"  leak margin:                {attacker.leak_margin():.1%}")
        print(f"  key bits recovered:         {correct}/128")
        assert correct == 128, "the Trojan should leak the full key"
        print()

    # A clean device leaks nothing.
    attacker = eavesdrop(clean, "amplitude")
    print(f"clean device leak margin: {attacker.leak_margin():.2e} (no modulation)")


if __name__ == "__main__":
    main()
