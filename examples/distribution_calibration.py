"""Calibration deep-dive: watching KMM close the simulation-silicon gap.

Before trusting a golden chip-free boundary, a deployment should verify that
the calibrated simulation population actually matches the silicon PCM
distribution.  This example uses maximum mean discrepancy (MMD) — the
quantity KMM minimizes — as that acceptance check:

1. measure the raw simulation-vs-silicon PCM discrepancy (MMD + permutation
   test p-value);
2. calibrate with KMM, importance-resample, and re-measure;
3. compare against a plain mean shift;
4. show how the effective sample size warns when the drift approaches the
   edge of the simulated support.

Run:  python examples/distribution_calibration.py
"""

from dataclasses import replace

from repro import PlatformConfig, generate_experiment_data
from repro.stats.kmm import KernelMeanMatcher, importance_resample
from repro.stats.mmd import mmd_permutation_test, mmd_squared


def describe(label, sim, silicon):
    mmd2, p = mmd_permutation_test(sim, silicon, n_permutations=200, rng=0)
    verdict = "distinguishable" if p < 0.05 else "indistinguishable"
    print(f"  {label:<28s} MMD^2 = {mmd2:+.4f}   p = {p:.3f}  ({verdict})")
    return mmd2


def main() -> None:
    data = generate_experiment_data(PlatformConfig())
    sim, silicon = data.sim_pcms, data.dutt_pcms

    print("PCM distribution match, before and after calibration:")
    raw = describe("raw simulation", sim, silicon)

    shifted = sim + (silicon.mean(axis=0) - sim.mean(axis=0))
    describe("plain mean shift", shifted, silicon)

    matcher = KernelMeanMatcher(B=10.0).fit(sim, silicon)
    resampled = importance_resample(sim, matcher.weights, 200, rng=0)
    kmm = describe("KMM importance resample", resampled, silicon)
    print(f"\n  KMM effective sample size: {matcher.effective_sample_size():.1f} "
          f"of {sim.shape[0]} simulated devices")
    print(f"  discrepancy reduced by {1 - kmm / raw:.0%}")
    print(
        "\n  (A plain mean shift looks even better here because this platform's "
        "drift is almost a\n  pure translation — but it invents PCM values no "
        "simulation ever produced, while KMM\n  only re-weights real simulated "
        "devices, which is what the regression stage requires.)"
    )

    print("\nEffective sample size vs drift (degeneracy warning):")
    for drift in (0.2, 0.45, 0.8, 1.2):
        d = generate_experiment_data(replace(PlatformConfig(), drift_scale=drift))
        m = KernelMeanMatcher(B=10.0).fit(d.sim_pcms, d.dutt_pcms)
        ess = m.effective_sample_size()
        note = "ok" if ess >= 7 else "DEGENERATE: silicon near the edge of the simulated support"
        print(f"  drift {drift:4.2f}: ESS = {ess:5.1f}   [{note}]")

    print(
        "\nWhen the effective sample size collapses, importance weighting can no "
        "longer move the\nsimulated population onto the silicon operating point — "
        "the regime where boundary B4\nstops improving on B3 (see the drift "
        "ablation)."
    )


if __name__ == "__main__":
    main()
