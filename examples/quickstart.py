"""Quickstart: golden chip-free Trojan detection in ~20 lines.

Builds the synthetic silicon experiment (a wireless cryptographic IC
fabricated at a drifted operating point, 40 Trojan-free + 80 Trojan-infested
devices), trains the golden chip-free trusted region, and screens every
device under Trojan test.

Run:  python examples/quickstart.py
"""

from repro import (
    DetectorConfig,
    GoldenChipFreeDetector,
    PlatformConfig,
    format_table1,
    generate_experiment_data,
)


def main() -> None:
    # 1. The "world": trusted Spice simulation + fabricated silicon.
    data = generate_experiment_data(PlatformConfig())
    print(
        f"simulated golden devices: {data.sim_fingerprints.shape[0]}, "
        f"devices under Trojan test: {data.n_devices}"
    )

    # 2. The detector: no golden chips anywhere.
    detector = GoldenChipFreeDetector(DetectorConfig(kde_samples=30_000))
    detector.fit_premanufacturing(data.sim_pcms, data.sim_fingerprints)
    detector.fit_silicon(data.dutt_pcms)

    # 3. Screen the devices with the final boundary B5.
    verdicts = detector.classify(data.dutt_fingerprints, boundary="B5")
    flagged = (~verdicts).sum()
    print(f"\nB5 flags {flagged} of {data.n_devices} devices as Trojan-infested")

    # 4. Full scorecard (we know the ground truth in simulation).
    print()
    print(format_table1(detector.evaluate(data.dutt_fingerprints, data.infested)))


if __name__ == "__main__":
    main()
