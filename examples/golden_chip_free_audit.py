"""Production audit: golden chip-free screening vs a golden-chip reference.

Plays the role of a trust lab receiving a shipment of 120 devices (40 clean,
80 Trojan-infested — unknown to the lab).  Two detectors screen them:

* **golden chip-free** (this paper): trusted Spice model + PCM measurements
  + KMM + adaptive-KDE tail modeling -> boundary B5;
* **golden-chip reference** (the classical method the paper competes with):
  a one-class SVM trained directly on the measured fingerprints of the 40
  known-clean devices — the luxury the paper shows you can do without.

The audit prints per-boundary scorecards and the head-to-head comparison.

Run:  python examples/golden_chip_free_audit.py
"""

import numpy as np

from repro import (
    DetectorConfig,
    GoldenChipFreeDetector,
    PlatformConfig,
    TrustedRegion,
    evaluate_detection,
    format_table1,
    generate_experiment_data,
)


def main() -> None:
    config = DetectorConfig(kde_samples=30_000)
    data = generate_experiment_data(PlatformConfig())

    # ---------------- golden chip-free pipeline ----------------
    detector = GoldenChipFreeDetector(config)
    detector.fit_premanufacturing(data.sim_pcms, data.sim_fingerprints)
    detector.fit_silicon(data.dutt_pcms)
    results = detector.evaluate(data.dutt_fingerprints, data.infested)
    print(format_table1(results, title="Golden chip-free screening (B1..B5)"))

    # ---------------- golden-chip reference ----------------
    golden_fingerprints = data.trojan_free_fingerprints()
    reference = TrustedRegion(
        name="golden",
        nu=config.svm_nu,
        floor_ratio=config.floor_ratio,
        noise_floor_rel=config.noise_floor_rel,
        seed=0,
    ).fit(golden_fingerprints)
    ref_metrics = evaluate_detection(
        reference.predict_trojan_free(data.dutt_fingerprints), data.infested
    )

    b5 = results["B5"]
    print("\nHead-to-head on the same 120 DUTTs:")
    print(f"  golden-chip reference : FP {ref_metrics.as_row()}")
    print(f"  golden chip-free (B5) : FP {b5.as_row()}")
    gap = b5.fn_count - ref_metrics.fn_count
    print(
        f"\nThe golden chip-free boundary gives up {gap} Trojan-free device(s) "
        f"relative to the golden-chip reference\nwhile keeping zero Trojan escapes "
        f"— the paper's headline claim."
    )

    # ---------------- per-device audit sheet ----------------
    verdicts = detector.classify(data.dutt_fingerprints, boundary="B5")
    scores = detector.boundaries["B5"].decision_scores(data.dutt_fingerprints)
    flagged = np.flatnonzero(~verdicts)
    print(f"\nDevices flagged by B5 ({flagged.size} of {data.n_devices}), most suspicious first:")
    order = flagged[np.argsort(scores[flagged])]
    for index in order[:12]:
        truth = data.trojan_names[index]
        print(f"  device #{index:3d}  score {scores[index]:+.4f}  actual: {truth}")
    if order.size > 12:
        print(f"  ... and {order.size - 12} more")


if __name__ == "__main__":
    main()
