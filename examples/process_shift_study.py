"""Process-shift study: why the golden chip-free anchoring matters.

Sweeps the drift between the trusted Spice deck and the foundry operating
point and measures, at each drift, how the simulation-only boundary B1 and
the PCM-anchored boundary B5 classify the Trojan-free devices.

The punchline reproduces the paper's motivation: even a modest process
drift makes a simulation-trained trusted region reject *every* legitimate
chip, while the PCM-anchored region follows the silicon.

Run:  python examples/process_shift_study.py
"""

from dataclasses import replace

from repro import (
    DetectorConfig,
    GoldenChipFreeDetector,
    PlatformConfig,
    generate_experiment_data,
)

DRIFT_SCALES = (0.0, 0.15, 0.3, 0.45, 0.6)


def run_at_drift(platform: PlatformConfig, config: DetectorConfig):
    data = generate_experiment_data(platform)
    detector = GoldenChipFreeDetector(config)
    detector.fit_premanufacturing(data.sim_pcms, data.sim_fingerprints)
    detector.fit_silicon(data.dutt_pcms)
    results = detector.evaluate(data.dutt_fingerprints, data.infested)

    pcm_shift = (
        (data.dutt_pcms.mean() - data.sim_pcms.mean()) / data.sim_pcms.std()
    )
    return pcm_shift, results


def main() -> None:
    base = PlatformConfig()
    config = DetectorConfig(kde_samples=20_000)

    print("drift   PCM shift   B1 (sim-only)      B5 (golden chip-free)")
    print("scale   [sigma]     FP      FN          FP      FN")
    print("-" * 62)
    for scale in DRIFT_SCALES:
        pcm_shift, results = run_at_drift(replace(base, drift_scale=scale), config)
        b1, b5 = results["B1"], results["B5"]
        print(
            f"{scale:4.2f}   {pcm_shift:+8.2f}    "
            f"{b1.fp_count:2d}/80   {b1.fn_count:2d}/40       "
            f"{b5.fp_count:2d}/80   {b5.fn_count:2d}/40"
        )

    print(
        "\nAs the line drifts, B1 rejects more and more legitimate devices "
        "(its trusted region is\nfrozen at the deck's operating point), while "
        "B5 stays anchored to silicon through the PCMs\n— without ever seeing "
        "a golden chip, and without letting a Trojan through."
    )


if __name__ == "__main__":
    main()
