"""Cryptographic substrate: a from-scratch AES-128 core and bit utilities.

The wireless cryptographic IC used as the paper's experimentation platform
encrypts plaintext blocks with AES-128 before serializing the ciphertext to
the UWB transmitter.  This package provides that core.
"""

from repro.crypto.aes import AES128, aes128_decrypt_block, aes128_encrypt_block
from repro.crypto.bits import (
    bits_to_bytes,
    bytes_to_bits,
    hamming_weight,
    random_block,
    random_key,
)

__all__ = [
    "AES128",
    "aes128_encrypt_block",
    "aes128_decrypt_block",
    "bytes_to_bits",
    "bits_to_bytes",
    "hamming_weight",
    "random_block",
    "random_key",
]
