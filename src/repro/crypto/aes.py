"""A from-scratch AES-128 implementation (FIPS-197).

This is the digital heart of the wireless cryptographic IC: plaintext blocks
are encrypted with an on-chip key before serialization and UWB transmission.
The implementation favours clarity over speed — the S-box is derived from its
algebraic definition (multiplicative inverse in GF(2^8) followed by the FIPS
affine transform) rather than pasted as a magic table, and every round
operation is its own function so tests can exercise them independently.

Only AES-128 (Nk=4, Nr=10) is provided because that is what the platform
chip implements.
"""

from __future__ import annotations

from typing import List

import numpy as np

# ---------------------------------------------------------------------------
# GF(2^8) arithmetic (the AES field, reduction polynomial x^8+x^4+x^3+x+1)
# ---------------------------------------------------------------------------

AES_MODULUS = 0x11B


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements in GF(2^8) with the AES modulus."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= AES_MODULUS
        b >>= 1
    return result


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(2^8); by convention ``gf_inv(0) == 0``."""
    if a == 0:
        return 0
    # Fermat: a^(2^8 - 2) = a^254 is the inverse in GF(2^8).
    result = 1
    power = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = gf_mul(result, power)
        power = gf_mul(power, power)
        exponent >>= 1
    return result


def _affine_forward(x: int) -> int:
    """The FIPS-197 affine transform applied after inversion in SubBytes."""
    result = 0
    for i in range(8):
        bit = (
            (x >> i)
            ^ (x >> ((i + 4) % 8))
            ^ (x >> ((i + 5) % 8))
            ^ (x >> ((i + 6) % 8))
            ^ (x >> ((i + 7) % 8))
            ^ (0x63 >> i)
        ) & 1
        result |= bit << i
    return result


def _build_sbox() -> List[int]:
    return [_affine_forward(gf_inv(x)) for x in range(256)]


SBOX: List[int] = _build_sbox()
INV_SBOX: List[int] = [0] * 256
for _i, _v in enumerate(SBOX):
    INV_SBOX[_v] = _i

# Round constants for key expansion: rcon[i] = x^(i-1) in GF(2^8).
RCON: List[int] = [0x01]
for _ in range(9):
    RCON.append(gf_mul(RCON[-1], 0x02))


# ---------------------------------------------------------------------------
# State helpers. The AES state is a 4x4 byte matrix stored column-major,
# represented here as a flat list of 16 ints where state[r + 4*c] is row r,
# column c — the same layout FIPS-197 uses for loading a 16-byte block.
# ---------------------------------------------------------------------------


def _block_to_state(block: bytes) -> List[int]:
    return list(block)


def _state_to_block(state: List[int]) -> bytes:
    return bytes(state)


def sub_bytes(state: List[int]) -> List[int]:
    """Apply the S-box to every state byte."""
    return [SBOX[b] for b in state]


def inv_sub_bytes(state: List[int]) -> List[int]:
    """Apply the inverse S-box to every state byte."""
    return [INV_SBOX[b] for b in state]


def shift_rows(state: List[int]) -> List[int]:
    """Cyclically left-shift row r of the state by r positions."""
    out = [0] * 16
    for r in range(4):
        for c in range(4):
            out[r + 4 * c] = state[r + 4 * ((c + r) % 4)]
    return out


def inv_shift_rows(state: List[int]) -> List[int]:
    """Cyclically right-shift row r of the state by r positions."""
    out = [0] * 16
    for r in range(4):
        for c in range(4):
            out[r + 4 * ((c + r) % 4)] = state[r + 4 * c]
    return out


def mix_columns(state: List[int]) -> List[int]:
    """Multiply each state column by the fixed MixColumns matrix."""
    out = [0] * 16
    for c in range(4):
        col = state[4 * c : 4 * c + 4]
        out[4 * c + 0] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3]
        out[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3]
        out[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3)
        out[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2)
    return out


def inv_mix_columns(state: List[int]) -> List[int]:
    """Multiply each state column by the inverse MixColumns matrix."""
    out = [0] * 16
    for c in range(4):
        col = state[4 * c : 4 * c + 4]
        out[4 * c + 0] = (
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9)
        )
        out[4 * c + 1] = (
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13)
        )
        out[4 * c + 2] = (
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11)
        )
        out[4 * c + 3] = (
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14)
        )
    return out


def add_round_key(state: List[int], round_key: List[int]) -> List[int]:
    """XOR the state with one 16-byte round key."""
    return [s ^ k for s, k in zip(state, round_key)]


def expand_key(key: bytes) -> List[List[int]]:
    """FIPS-197 key expansion: a 16-byte key into 11 round keys of 16 bytes."""
    if len(key) != 16:
        raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
    words: List[List[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = [SBOX[b] for b in temp]  # SubWord
            temp[0] ^= RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    round_keys = []
    for r in range(11):
        flat: List[int] = []
        for w in words[4 * r : 4 * r + 4]:
            flat.extend(w)
        round_keys.append(flat)
    return round_keys


class AES128:
    """AES-128 block cipher with a fixed key, as burned into the chip.

    Parameters
    ----------
    key:
        The 16-byte encryption key.  On the platform IC this key is stored
        on-chip and is precisely what the hardware Trojans try to leak.
    """

    def __init__(self, key: bytes):
        self._round_keys = expand_key(key)
        self._key = bytes(key)

    @property
    def key(self) -> bytes:
        """The on-chip key (accessible in simulation; secret on real silicon)."""
        return self._key

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(plaintext) != 16:
            raise ValueError(f"plaintext block must be 16 bytes, got {len(plaintext)}")
        state = _block_to_state(plaintext)
        state = add_round_key(state, self._round_keys[0])
        for r in range(1, 10):
            state = sub_bytes(state)
            state = shift_rows(state)
            state = mix_columns(state)
            state = add_round_key(state, self._round_keys[r])
        state = sub_bytes(state)
        state = shift_rows(state)
        state = add_round_key(state, self._round_keys[10])
        return _state_to_block(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(ciphertext) != 16:
            raise ValueError(f"ciphertext block must be 16 bytes, got {len(ciphertext)}")
        state = _block_to_state(ciphertext)
        state = add_round_key(state, self._round_keys[10])
        for r in range(9, 0, -1):
            state = inv_shift_rows(state)
            state = inv_sub_bytes(state)
            state = add_round_key(state, self._round_keys[r])
            state = inv_mix_columns(state)
        state = inv_shift_rows(state)
        state = inv_sub_bytes(state)
        state = add_round_key(state, self._round_keys[0])
        return _state_to_block(state)


# ---------------------------------------------------------------------------
# Vectorized block encryption for the batched population engine.
#
# Every AES round operation is a byte-table lookup, a fixed permutation or a
# XOR — integer operations with no rounding — so applying them to uint8
# ndarrays via numpy fancy indexing is bit-identical to the scalar reference
# by construction.  The tables are derived from the same algebraic SBOX /
# gf_mul definitions above, not pasted constants.
# ---------------------------------------------------------------------------

_SBOX_TABLE = np.array(SBOX, dtype=np.uint8)
_MUL2_TABLE = np.array([gf_mul(value, 2) for value in range(256)], dtype=np.uint8)
_MUL3_TABLE = np.array([gf_mul(value, 3) for value in range(256)], dtype=np.uint8)
#: Gather indices implementing shift_rows: out byte ``r + 4*c`` reads state
#: byte ``r + 4*((c + r) % 4)``, the same index arithmetic as `shift_rows`.
_SHIFT_ROWS_IDX = np.array(
    [(i % 4) + 4 * (((i // 4) + (i % 4)) % 4) for i in range(16)], dtype=np.intp
)


def _mix_columns_array(state: np.ndarray) -> np.ndarray:
    """MixColumns on a ``(..., 16)`` uint8 state array."""
    cols = state.reshape(*state.shape[:-1], 4, 4)  # [..., column, row]
    b0, b1, b2, b3 = (cols[..., 0], cols[..., 1], cols[..., 2], cols[..., 3])
    out = np.empty_like(cols)
    out[..., 0] = _MUL2_TABLE[b0] ^ _MUL3_TABLE[b1] ^ b2 ^ b3
    out[..., 1] = b0 ^ _MUL2_TABLE[b1] ^ _MUL3_TABLE[b2] ^ b3
    out[..., 2] = b0 ^ b1 ^ _MUL2_TABLE[b2] ^ _MUL3_TABLE[b3]
    out[..., 3] = _MUL3_TABLE[b0] ^ b1 ^ b2 ^ _MUL2_TABLE[b3]
    return out.reshape(state.shape)


def aes128_encrypt_blocks(key: bytes, blocks: np.ndarray) -> np.ndarray:
    """Encrypt a batch of 16-byte blocks with one key.

    Parameters
    ----------
    key:
        The 16-byte AES-128 key.
    blocks:
        ``uint8`` array of shape ``(..., 16)`` — e.g. ``(n_plaintexts, 16)``
        or ``(n_devices, n_plaintexts, 16)``.  The dtype is checked rather
        than coerced: silently casting wider integers would hide caller
        bugs.

    Returns
    -------
    ``uint8`` ciphertext array of the same shape; each 16-byte row equals
    ``AES128(key).encrypt_block`` on the corresponding plaintext row.
    """
    blocks = np.asarray(blocks)
    if blocks.dtype != np.uint8:
        raise ValueError(f"blocks must be uint8, got dtype {blocks.dtype}")
    if blocks.ndim < 1 or blocks.shape[-1] != 16:
        raise ValueError(f"blocks must have a trailing axis of 16, got shape {blocks.shape}")
    round_keys = np.array(expand_key(key), dtype=np.uint8)  # (11, 16)
    state = blocks ^ round_keys[0]
    for r in range(1, 10):
        state = _SBOX_TABLE[state]
        state = state[..., _SHIFT_ROWS_IDX]
        state = _mix_columns_array(state)
        state = state ^ round_keys[r]
    state = _SBOX_TABLE[state]
    state = state[..., _SHIFT_ROWS_IDX]
    return state ^ round_keys[10]


def aes128_encrypt_block(key: bytes, plaintext: bytes) -> bytes:
    """One-shot AES-128 block encryption."""
    return AES128(key).encrypt_block(plaintext)


def aes128_decrypt_block(key: bytes, ciphertext: bytes) -> bytes:
    """One-shot AES-128 block decryption."""
    return AES128(key).decrypt_block(ciphertext)
