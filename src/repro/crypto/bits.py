"""Bit/byte conversion helpers used by the crypto core and the serializer.

All conversions are most-significant-bit first, matching the order in which
the serialization buffer of the wireless cryptographic IC shifts ciphertext
bits out to the UWB transmitter.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator

BLOCK_BYTES = 16
BLOCK_BITS = 128


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Expand ``data`` into a ``uint8`` array of bits, MSB first per byte."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr)


def bits_to_bytes(bits) -> bytes:
    """Pack an MSB-first bit sequence back into bytes.

    Raises ``ValueError`` if the bit count is not a multiple of 8 or any
    element is not 0/1.
    """
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError(f"bits must be 1-D, got shape {arr.shape}")
    if arr.size % 8 != 0:
        raise ValueError(f"bit count must be a multiple of 8, got {arr.size}")
    if not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must contain only 0 and 1")
    return np.packbits(arr.astype(np.uint8)).tobytes()


def hamming_weight(data: bytes) -> int:
    """Number of set bits in ``data``."""
    return int(bytes_to_bits(data).sum())


def random_block(rng: SeedLike = None) -> bytes:
    """Draw a uniformly random 128-bit block (e.g. a plaintext)."""
    gen = as_generator(rng)
    return gen.integers(0, 256, size=BLOCK_BYTES, dtype=np.uint8).tobytes()


def random_key(rng: SeedLike = None) -> bytes:
    """Draw a uniformly random AES-128 key."""
    return random_block(rng)
