"""Builders for the paper's datasets S1 through S5 (Section 3.2).

=====  ====================================================================
set    contents
=====  ====================================================================
S1     n Monte Carlo golden fingerprints (straight from simulation)
S2     KDE tail-enhanced synthetic population generated from S1
S3     fingerprints *predicted* from the fabricated devices' measured PCMs
       through the MARS regressions learned on simulation data
S4     fingerprints predicted from the KMM mean-shifted simulated PCMs
       (simulation PCM population calibrated to the silicon operating
       point)
S5     KDE tail-enhanced synthetic population generated from S4
=====  ====================================================================

Each S_k trains the corresponding trusted boundary B_k.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.config import DetectorConfig
from repro.learn.latent import LatentGainMars
from repro.learn.mars import MultiOutputMars
from repro.stats.kde import AdaptiveKde
from repro.stats.kmm import KernelMeanMatcher, importance_resample
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_2d, check_matching_rows


@dataclass
class DatasetBundle:
    """The five golden-fingerprint populations, keyed ``"S1"``..``"S5"``."""

    sets: Dict[str, np.ndarray] = field(default_factory=dict)

    def __getitem__(self, key: str) -> np.ndarray:
        if key not in self.sets:
            raise KeyError(
                f"dataset {key!r} not built yet; available: {sorted(self.sets)}"
            )
        return self.sets[key]

    def __contains__(self, key: str) -> bool:
        return key in self.sets

    def names(self):
        """Built dataset names, in pipeline order."""
        return [name for name in ("S1", "S2", "S3", "S4", "S5") if name in self.sets]


def train_regressions(sim_pcms, sim_fingerprints, config: DetectorConfig):
    """Learn the MARS regressions ``g : m_p -> m`` on simulation data.

    ``config.regression_mode`` selects between the consistent latent-gain
    model (default) and the paper-literal independent per-output models.
    """
    sim_pcms = check_2d(sim_pcms, "sim_pcms")
    sim_fingerprints = check_2d(sim_fingerprints, "sim_fingerprints")
    check_matching_rows(sim_pcms, sim_fingerprints, "sim_pcms", "sim_fingerprints")
    kwargs = dict(
        max_terms=config.mars_max_terms,
        max_degree=config.mars_max_degree,
        penalty=config.mars_penalty,
    )
    if config.regression_mode == "latent_gain":
        model = LatentGainMars(**kwargs)
    else:
        model = MultiOutputMars(**kwargs)
    return model.fit(sim_pcms, sim_fingerprints)


def build_s1(sim_fingerprints) -> np.ndarray:
    """S1: the raw Monte Carlo golden fingerprints."""
    return check_2d(sim_fingerprints, "sim_fingerprints").copy()


def tail_enhance(population, config: DetectorConfig, rng: SeedLike = None) -> np.ndarray:
    """KDE tail enhancement (S1 -> S2 and S4 -> S5): sample M' >> M points."""
    population = check_2d(population, "population")
    # The KDE whitener uses only the relative floor: tail enhancement should
    # inflate each direction in proportion to the population's own spread in
    # that direction.  (The *boundary* whitener applies the absolute
    # measurement-noise floor; inflating near-degenerate directions up to
    # the noise floor here would hand Trojan-sized orthogonal displacement
    # to the trusted region for free.)
    kde = AdaptiveKde(
        alpha=config.kde_alpha,
        bandwidth=config.kde_bandwidth,
        bandwidth_scale=config.kde_bandwidth_scale,
        floor_ratio=config.floor_ratio,
    ).fit(population)
    return kde.sample(config.kde_samples, rng=as_generator(rng))


def build_s3(regressions, silicon_pcms) -> np.ndarray:
    """S3: golden fingerprints predicted from measured silicon PCMs."""
    silicon_pcms = check_2d(silicon_pcms, "silicon_pcms")
    return regressions.predict(silicon_pcms)


def shift_pcm_population(
    sim_pcms,
    silicon_pcms,
    config: DetectorConfig,
    rng: SeedLike = None,
) -> np.ndarray:
    """The kernel-mean-shifted PCM population m''_p (Section 2.4).

    KMM computes importance weights that match the simulated PCM population
    to the silicon PCM distribution; importance resampling then produces an
    unweighted shifted population of ``config.kmm_resample_size`` samples.
    Because the Monte Carlo population is wider than a single-lot DUTT
    population, m''_p spreads wider than the silicon PCMs themselves.
    """
    sim_pcms = check_2d(sim_pcms, "sim_pcms")
    silicon_pcms = check_2d(silicon_pcms, "silicon_pcms")
    matcher = KernelMeanMatcher(B=config.kmm_B, eps=config.kmm_eps, gamma=config.kmm_gamma)
    matcher.fit(sim_pcms, silicon_pcms)
    return importance_resample(
        sim_pcms, matcher.weights, config.kmm_resample_size, rng=as_generator(rng)
    )


def build_s4(
    regressions,
    sim_pcms,
    silicon_pcms,
    config: DetectorConfig,
    rng: SeedLike = None,
) -> np.ndarray:
    """S4: fingerprints predicted from the KMM-shifted simulated PCMs."""
    shifted = shift_pcm_population(sim_pcms, silicon_pcms, config, rng=rng)
    return regressions.predict(shifted)


def build_all(
    sim_pcms,
    sim_fingerprints,
    silicon_pcms,
    config: Optional[DetectorConfig] = None,
    rng: SeedLike = None,
) -> DatasetBundle:
    """Build S1..S5 in one call (used by tests and ablations).

    The pipeline class builds the same sets stage by stage; this helper is
    for callers that already have all inputs in hand.
    """
    config = config or DetectorConfig()
    gen = as_generator(rng if rng is not None else config.seed)
    regressions = train_regressions(sim_pcms, sim_fingerprints, config)
    bundle = DatasetBundle()
    bundle.sets["S1"] = build_s1(sim_fingerprints)
    bundle.sets["S2"] = tail_enhance(bundle.sets["S1"], config, rng=gen)
    bundle.sets["S3"] = build_s3(regressions, silicon_pcms)
    bundle.sets["S4"] = build_s4(regressions, sim_pcms, silicon_pcms, config, rng=gen)
    bundle.sets["S5"] = tail_enhance(bundle.sets["S4"], config, rng=gen)
    return bundle
