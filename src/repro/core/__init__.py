"""Core library: the golden chip-free Trojan detection pipeline.

This package implements the paper's contribution proper — the three-stage
flow (pre-manufacturing, silicon measurement, Trojan test) that learns the
trusted side-channel region without golden chips:

* :class:`~repro.core.pipeline.GoldenChipFreeDetector` — the full pipeline,
  producing boundaries B1..B5;
* :mod:`repro.core.datasets` — the S1..S5 dataset builders of Section 3.2;
* :class:`~repro.core.boundaries.TrustedRegion` — a one-class-SVM trusted
  region with whitened-coordinate preprocessing;
* :mod:`repro.core.metrics` — FP/FN detection metrics (paper Eq. 1-2).
"""

from repro.core.boundaries import TrustedRegion
from repro.core.config import DetectorConfig
from repro.core.datasets import DatasetBundle
from repro.core.golden import GoldenReferenceDetector
from repro.core.io import (
    load_detector_config,
    load_experiment_data,
    save_detector_config,
    save_experiment_data,
)
from repro.core.metrics import DetectionMetrics, evaluate_detection
from repro.core.pipeline import GoldenChipFreeDetector
from repro.core.report import format_table1

__all__ = [
    "DetectorConfig",
    "TrustedRegion",
    "DatasetBundle",
    "GoldenReferenceDetector",
    "save_experiment_data",
    "load_experiment_data",
    "save_detector_config",
    "load_detector_config",
    "GoldenChipFreeDetector",
    "DetectionMetrics",
    "evaluate_detection",
    "format_table1",
]
