"""Textual reporting of detection results (paper Table 1 format)."""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.metrics import DetectionMetrics

#: Which dataset trains which boundary, for row labels.
BOUNDARY_TO_DATASET = {"B1": "S1", "B2": "S2", "B3": "S3", "B4": "S4", "B5": "S5"}


def format_table1(results: Mapping[str, DetectionMetrics], title: str = "") -> str:
    """Render FP/FN metrics like the paper's Table 1.

    ``results`` maps boundary names ("B1".."B5") to their metrics.
    """
    if not results:
        raise ValueError("no results to format")
    lines = []
    if title:
        lines.append(title)
    lines.append("Data set used to train the trusted region |   FP   |   FN")
    lines.append("-" * 58)
    for boundary in ("B1", "B2", "B3", "B4", "B5"):
        if boundary not in results:
            continue
        metrics = results[boundary]
        dataset = BOUNDARY_TO_DATASET.get(boundary, "?")
        lines.append(
            f"{dataset:<41s} | {metrics.fp_count:>2d}/{metrics.n_infested:<3d} "
            f"| {metrics.fn_count:>2d}/{metrics.n_trojan_free:<3d}"
        )
    return "\n".join(lines)


def format_table1_markdown(results: Mapping[str, DetectionMetrics],
                           paper_fn: Mapping[str, int] = None) -> str:
    """Render FP/FN metrics as a Markdown table (for reports/EXPERIMENTS.md).

    ``paper_fn`` optionally adds the paper's FN column for comparison.
    """
    if not results:
        raise ValueError("no results to format")
    header = "| Data set | FP | FN |"
    divider = "|---|---:|---:|"
    if paper_fn:
        header = "| Data set | FP | FN | Paper FN |"
        divider = "|---|---:|---:|---:|"
    lines = [header, divider]
    for boundary in ("B1", "B2", "B3", "B4", "B5"):
        if boundary not in results:
            continue
        metrics = results[boundary]
        dataset = BOUNDARY_TO_DATASET.get(boundary, "?")
        row = (
            f"| {dataset} | {metrics.fp_count}/{metrics.n_infested} "
            f"| {metrics.fn_count}/{metrics.n_trojan_free} |"
        )
        if paper_fn:
            row += f" {paper_fn.get(boundary, '—')}/{metrics.n_trojan_free} |"
        lines.append(row)
    return "\n".join(lines)


def summarize_rates(results: Mapping[str, DetectionMetrics]) -> Dict[str, Dict[str, float]]:
    """FP/FN rates per boundary as plain floats (for machine consumption)."""
    return {
        name: {"fp_rate": metrics.fp_rate, "fn_rate": metrics.fn_rate}
        for name, metrics in results.items()
    }
