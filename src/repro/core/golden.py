"""The classical golden-chip detector the paper competes against.

Fig. 1 of the paper: given a representative set of trusted ("golden") chips,
train a one-class classifier on their measured fingerprints and declare any
DUTT outside the learned region Trojan-infested.  This is the luxury the
golden chip-free pipeline removes; the library ships it as the reference
yardstick for head-to-head evaluations (see
``examples/golden_chip_free_audit.py`` and the A7 bench).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.boundaries import TrustedRegion
from repro.core.config import DetectorConfig
from repro.core.metrics import DetectionMetrics, evaluate_detection
from repro.utils.validation import check_2d


class GoldenReferenceDetector:
    """One-class trusted region trained directly on golden-chip fingerprints.

    Uses the same boundary machinery (whitening with a noise floor + ν-SVM)
    and the same configuration knobs as the golden chip-free pipeline, so
    comparisons isolate exactly one variable: where the training population
    comes from.

    Parameters
    ----------
    config:
        Shared detector configuration (ν, gamma, floors, subsampling).
    """

    def __init__(self, config: Optional[DetectorConfig] = None):
        self.config = config or DetectorConfig()
        self._region: Optional[TrustedRegion] = None

    def fit(self, golden_fingerprints) -> "GoldenReferenceDetector":
        """Learn the trusted region from measured golden-chip fingerprints."""
        golden_fingerprints = check_2d(golden_fingerprints, "golden_fingerprints")
        self._region = TrustedRegion(
            name="golden",
            nu=self.config.svm_nu,
            gamma=self.config.svm_gamma,
            floor_ratio=self.config.floor_ratio,
            noise_floor_rel=self.config.noise_floor_rel,
            max_training_samples=self.config.svm_max_training_samples,
            seed=self.config.seed,
        ).fit(golden_fingerprints)
        return self

    def _check_fitted(self):
        if self._region is None:
            raise RuntimeError("GoldenReferenceDetector must be fitted before use")

    @property
    def region(self) -> TrustedRegion:
        """The fitted trusted region."""
        self._check_fitted()
        return self._region

    def classify(self, fingerprints) -> np.ndarray:
        """True = Trojan-free (inside the golden region)."""
        self._check_fitted()
        return self._region.predict_trojan_free(fingerprints)

    def evaluate(self, fingerprints, infested) -> DetectionMetrics:
        """FP/FN over a labelled DUTT population."""
        return evaluate_detection(self.classify(fingerprints), infested)
