"""Trusted-region boundaries: whitened-space one-class SVMs.

Each of the paper's boundaries B1..B5 is the same construction applied to a
different training population: whiten the population (with an eigenvalue
floor — fingerprints are strongly correlated and synthetic populations can
be rank-deficient), then fit a ν-one-class SVM in whitened coordinates.

The whitening step is what gives the boundary its sensitivity: process
variation spans few directions of the six-dimensional fingerprint space,
while a Trojan's key-dependent modulation displaces a device *off* that
manifold.  In whitened coordinates such off-manifold displacement is large
even when it is small in absolute power.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.learn.elliptic import EllipticEnvelope
from repro.learn.ocsvm import OneClassSvm
from repro.obs.trace import span
from repro.stats.preprocessing import Whitener
from repro.utils.rng import SeedLike
from repro.utils.validation import check_2d


class TrustedRegion:
    """A named trusted-region boundary (whitener + one-class SVM).

    Parameters
    ----------
    name:
        Boundary label (``"B1"``..``"B5"`` in the paper flow).
    nu / gamma:
        One-class SVM parameters (gamma ``None`` = median heuristic in
        whitened space).
    floor_ratio:
        Relative eigenvalue floor of the whitener.
    noise_floor_rel:
        Absolute whitener floor as a fraction of the training population's
        mean fingerprint magnitude (encodes bench measurement noise).
    max_training_samples:
        Subsampling cap passed to the SVM.
    method:
        One-class learner in whitened space: ``"ocsvm"`` (the paper's
        choice) or ``"mahalanobis"`` (an elliptic envelope at the matching
        chi-square quantile; classifier-choice ablation A7).
    seed:
        Seed for the (deterministic) subsampling.
    """

    METHODS = ("ocsvm", "mahalanobis")

    def __init__(
        self,
        name: str = "B",
        nu: float = 0.05,
        gamma: Optional[float] = None,
        floor_ratio: float = 2e-3,
        noise_floor_rel: float = 0.0,
        max_training_samples: int = 1500,
        method: str = "ocsvm",
        seed: SeedLike = None,
    ):
        if noise_floor_rel < 0:
            raise ValueError(f"noise_floor_rel must be non-negative, got {noise_floor_rel}")
        if method not in self.METHODS:
            raise ValueError(f"method must be one of {self.METHODS}, got {method!r}")
        self.name = name
        self.method = method
        self.floor_ratio = float(floor_ratio)
        self.noise_floor_rel = float(noise_floor_rel)
        self._whitener: Optional[Whitener] = None
        if method == "ocsvm":
            self._learner = OneClassSvm(
                nu=nu,
                gamma=gamma,
                max_training_samples=max_training_samples,
                seed=seed,
            )
        else:
            self._learner = EllipticEnvelope(contamination=nu)
        self.n_training_samples_: Optional[int] = None
        self.n_features_: Optional[int] = None

    def fit(self, population) -> "TrustedRegion":
        """Learn the boundary enclosing a golden fingerprint ``population``."""
        population = check_2d(population, "population")
        with span("boundary.fit", boundary=self.name, method=self.method,
                  n=int(population.shape[0])):
            self.n_training_samples_ = population.shape[0]
            self.n_features_ = population.shape[1]
            floor_sigma = self.noise_floor_rel * float(np.mean(np.abs(population)))
            self._whitener = Whitener(
                floor_ratio=self.floor_ratio, floor_sigma=floor_sigma
            )
            whitened = self._whitener.fit_transform(population)
            self._learner.fit(whitened)
        return self

    def _check_fitted(self):
        if self.n_training_samples_ is None:
            raise RuntimeError(f"TrustedRegion {self.name!r} must be fitted before use")

    def decision_scores(self, fingerprints, validate: bool = True) -> np.ndarray:
        """Decision values; >= 0 means inside the trusted region.

        ``validate=False`` skips the shape/finiteness coercion for callers
        that already validated the batch once (e.g. the pipeline's
        :meth:`~repro.core.pipeline.GoldenChipFreeDetector.classify_batch`,
        which scores the same device block against several boundaries) —
        the scores themselves are identical either way.
        """
        self._check_fitted()
        if validate:
            fingerprints = check_2d(fingerprints, "fingerprints")
            if fingerprints.shape[1] != self.n_features:
                raise ValueError(
                    f"fingerprints have {fingerprints.shape[1]} features, "
                    f"boundary {self.name!r} was trained on {self.n_features}"
                )
        return self._learner.decision_function(self._whitener.transform(fingerprints))

    def predict_trojan_free(self, fingerprints) -> np.ndarray:
        """Boolean array: True where a device is classified Trojan-free."""
        return self.decision_scores(fingerprints) >= 0.0

    @property
    def n_features(self) -> Optional[int]:
        """Feature width the boundary was trained on (``None`` before fit).

        Falls back to the whitener's mean width for boundaries restored
        from state written before the width was recorded explicitly.
        """
        if self.n_features_ is not None:
            return self.n_features_
        if self._whitener is not None and self._whitener.mean_ is not None:
            return int(self._whitener.mean_.shape[0])
        return None

    @property
    def whitener(self) -> Whitener:
        """The fitted whitener (for diagnostics and visualization)."""
        return self._whitener

    @property
    def svm(self) -> OneClassSvm:
        """The fitted one-class SVM (raises for non-SVM methods)."""
        if not isinstance(self._learner, OneClassSvm):
            raise AttributeError(
                f"TrustedRegion {self.name!r} uses method {self.method!r}, not an SVM"
            )
        return self._learner

    @property
    def learner(self):
        """The fitted one-class learner, whatever its method."""
        return self._learner

    def to_state(self) -> dict:
        """Codec state of the fitted boundary (see :mod:`repro.cache.codec`)."""
        self._check_fitted()
        return {
            "params": {
                "name": self.name,
                "method": self.method,
                "floor_ratio": self.floor_ratio,
                "noise_floor_rel": self.noise_floor_rel,
            },
            "whitener": self._whitener,
            "learner": self._learner,
            "n_training_samples": int(self.n_training_samples_),
            "n_features": None if self.n_features is None else int(self.n_features),
        }

    @classmethod
    def from_state(cls, state: dict) -> "TrustedRegion":
        """Rebuild a fitted boundary from :meth:`to_state` output."""
        region = cls(**state["params"])
        region._whitener = state["whitener"]
        region._learner = state["learner"]
        region.n_training_samples_ = int(state["n_training_samples"])
        # Entries written before the width was recorded lack the key; the
        # n_features property then derives it from the whitener.
        width = state.get("n_features")
        region.n_features_ = None if width is None else int(width)
        return region
