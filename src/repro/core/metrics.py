"""Detection metrics: false positives and false negatives (paper Eq. 1-2).

The paper counts, over the N devices under Trojan test:

* **FP** — Trojan-infested devices classified as Trojan-free;
* **FN** — Trojan-free devices classified as Trojan-infested.

(Note the convention: "positive" is *passing* the trust test, so an escaped
Trojan is a false positive.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DetectionMetrics:
    """FP/FN counts and rates for one boundary over one DUTT population."""

    fp_count: int
    fn_count: int
    n_infested: int
    n_trojan_free: int

    @property
    def fp_rate(self) -> float:
        """Fraction of infested devices that escaped detection."""
        return self.fp_count / self.n_infested if self.n_infested else 0.0

    @property
    def fn_rate(self) -> float:
        """Fraction of Trojan-free devices wrongly flagged."""
        return self.fn_count / self.n_trojan_free if self.n_trojan_free else 0.0

    def as_row(self) -> str:
        """Format like the paper's Table 1 (``FP a/b   FN c/d``)."""
        return (
            f"{self.fp_count}/{self.n_infested}"
            f"  {self.fn_count}/{self.n_trojan_free}"
        )


def evaluate_detection(predicted_trojan_free, infested) -> DetectionMetrics:
    """Compute FP/FN from per-device predictions and ground truth.

    Parameters
    ----------
    predicted_trojan_free:
        Boolean array, True where a device was classified Trojan-free
        (i.e. its fingerprint fell inside the trusted region).
    infested:
        Boolean array of ground truth, True for Trojan-infested devices.
    """
    predicted = np.asarray(predicted_trojan_free, dtype=bool)
    truth = np.asarray(infested, dtype=bool)
    if predicted.shape != truth.shape:
        raise ValueError(
            f"prediction shape {predicted.shape} != truth shape {truth.shape}"
        )
    if predicted.ndim != 1:
        raise ValueError("metrics expect 1-D per-device arrays")
    fp = int(np.sum(predicted & truth))
    fn = int(np.sum(~predicted & ~truth))
    return DetectionMetrics(
        fp_count=fp,
        fn_count=fn,
        n_infested=int(truth.sum()),
        n_trojan_free=int((~truth).sum()),
    )
