"""Persistence: save and load experiment data and detector configurations.

Production flows separate data collection (bench time) from analysis; these
helpers serialize the measurement campaign results to ``.npz`` and the
detector configuration to JSON so an audit can be re-run or archived.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.config import DetectorConfig
from repro.experiments.platformcfg import ExperimentData

PathLike = Union[str, Path]


def save_experiment_data(data: ExperimentData, path: PathLike) -> Path:
    """Write all measurements of one experiment to a compressed ``.npz``."""
    path = Path(path)
    np.savez_compressed(
        path,
        sim_pcms=data.sim_pcms,
        sim_fingerprints=data.sim_fingerprints,
        dutt_pcms=data.dutt_pcms,
        dutt_fingerprints=data.dutt_fingerprints,
        infested=data.infested,
        trojan_names=np.asarray(data.trojan_names, dtype=np.str_),
    )
    # numpy appends .npz when missing; report the real file.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_experiment_data(path: PathLike) -> ExperimentData:
    """Load measurements written by :func:`save_experiment_data`.

    The measurement campaign object (frozen key, plaintexts, instruments) is
    not serialized — only its results; the returned object has
    ``campaign=None``.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        required = {
            "sim_pcms", "sim_fingerprints", "dutt_pcms",
            "dutt_fingerprints", "infested", "trojan_names",
        }
        missing = required - set(archive.files)
        if missing:
            raise ValueError(f"archive is missing arrays: {sorted(missing)}")
        return ExperimentData(
            sim_pcms=archive["sim_pcms"],
            sim_fingerprints=archive["sim_fingerprints"],
            dutt_pcms=archive["dutt_pcms"],
            dutt_fingerprints=archive["dutt_fingerprints"],
            infested=archive["infested"].astype(bool),
            trojan_names=[str(name) for name in archive["trojan_names"]],
            campaign=None,
        )


def save_detector_config(config: DetectorConfig, path: PathLike) -> Path:
    """Write a detector configuration as JSON."""
    path = Path(path)
    path.write_text(json.dumps(dataclasses.asdict(config), indent=2, sort_keys=True))
    return path


def load_detector_config(path: PathLike) -> DetectorConfig:
    """Load a configuration written by :func:`save_detector_config`.

    Unknown keys are rejected — a config written by a newer library version
    should fail loudly rather than be silently misinterpreted.
    """
    raw = json.loads(Path(path).read_text())
    known = {field.name for field in dataclasses.fields(DetectorConfig)}
    unknown = set(raw) - known
    if unknown:
        raise ValueError(f"unknown configuration keys: {sorted(unknown)}")
    return DetectorConfig(**raw)
