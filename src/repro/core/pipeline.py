"""The golden chip-free detector: the paper's three-stage pipeline.

Stage 1 — **pre-manufacturing** (Section 2.1): Monte Carlo simulate golden
devices with the trusted Spice deck; learn the MARS regressions
``g_j : m_p -> m_j``; train boundary B1 on the raw simulated fingerprints
(S1) and B2 on their KDE tail-enhanced population (S2).

Stage 2 — **silicon measurement** (Section 2.2): measure the PCMs of the
devices under Trojan test; predict golden fingerprints from them (S3 -> B3);
calibrate the simulated PCM population to the silicon operating point with
kernel mean matching and predict from the shifted population (S4 -> B4);
tail-enhance that population with adaptive KDE (S5 -> B5).

Stage 3 — **Trojan test** (Section 2.3): classify each DUTT fingerprint
against a chosen boundary; compute FP/FN.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.boundaries import TrustedRegion
from repro.core.config import DetectorConfig
from repro.core.datasets import (
    DatasetBundle,
    build_s1,
    build_s3,
    build_s4,
    tail_enhance,
    train_regressions,
)
from repro.core.metrics import DetectionMetrics, evaluate_detection
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.parallel import parallel_map
from repro.utils.rng import spawn_children
from repro.utils.validation import check_2d

BOUNDARY_NAMES = ("B1", "B2", "B3", "B4", "B5")


def _fit_region(item):
    """Fit one trusted region on its dataset (picklable pool worker)."""
    region, data = item
    return region.fit(data)


class GoldenChipFreeDetector:
    """Learns trusted regions B1..B5 without golden chips.

    Typical use::

        detector = GoldenChipFreeDetector(DetectorConfig())
        detector.fit_premanufacturing(sim_pcms, sim_fingerprints)
        detector.fit_silicon(dutt_pcms)
        verdicts = detector.classify(dutt_fingerprints)          # B5
        table = detector.evaluate(dutt_fingerprints, infested)   # all B's
    """

    def __init__(self, config: Optional[DetectorConfig] = None):
        self.config = config or DetectorConfig()
        self.datasets = DatasetBundle()
        self.boundaries: Dict[str, TrustedRegion] = {}
        self.regressions_ = None
        self._sim_pcms: Optional[np.ndarray] = None
        # Independent child generators per stochastic step, all derived from
        # the master seed: [S2 KDE, KMM resample, S5 KDE, B1, B2, B3, B4, B5].
        # SeedSequence spawning is prefix-stable, so the first three streams
        # match the historical 4-child layout; each boundary now owns its own
        # stream (required for order-independent, parallelizable fits).
        self._rngs = spawn_children(self.config.seed, 3 + len(BOUNDARY_NAMES))

    # ------------------------------------------------------------------
    # stage 1: pre-manufacturing
    # ------------------------------------------------------------------

    def fit_premanufacturing(self, sim_pcms, sim_fingerprints) -> "GoldenChipFreeDetector":
        """Learn regressions and the simulation-only boundaries B1/B2."""
        sim_pcms = check_2d(sim_pcms, "sim_pcms")
        sim_fingerprints = check_2d(sim_fingerprints, "sim_fingerprints")
        with span("pipeline.fit_premanufacturing", n_sim=int(sim_pcms.shape[0])):
            self._sim_pcms = sim_pcms
            with span("regression.train", mode=self.config.regression_mode):
                self.regressions_ = train_regressions(
                    sim_pcms, sim_fingerprints, self.config
                )

            self.datasets.sets["S1"] = build_s1(sim_fingerprints)
            with span("dataset.build", dataset="S2"):
                self.datasets.sets["S2"] = tail_enhance(
                    self.datasets["S1"], self.config, rng=self._rngs[0]
                )
            self._fit_boundaries({"B1": "S1", "B2": "S2"})
        return self

    # ------------------------------------------------------------------
    # stage 2: silicon measurement
    # ------------------------------------------------------------------

    def fit_silicon(self, dutt_pcms) -> "GoldenChipFreeDetector":
        """Anchor the trusted region in silicon via the DUTTs' PCMs."""
        if self.regressions_ is None:
            raise RuntimeError("fit_premanufacturing must run before fit_silicon")
        dutt_pcms = check_2d(dutt_pcms, "dutt_pcms")
        if dutt_pcms.shape[1] != self._sim_pcms.shape[1]:
            raise ValueError(
                f"DUTT PCMs have {dutt_pcms.shape[1]} features, "
                f"simulation had {self._sim_pcms.shape[1]}"
            )

        with span("pipeline.fit_silicon", n_dutt=int(dutt_pcms.shape[0])):
            with span("dataset.build", dataset="S3"):
                self.datasets.sets["S3"] = build_s3(self.regressions_, dutt_pcms)
            with span("dataset.build", dataset="S4"):
                self.datasets.sets["S4"] = build_s4(
                    self.regressions_, self._sim_pcms, dutt_pcms, self.config,
                    rng=self._rngs[1],
                )
            with span("dataset.build", dataset="S5"):
                self.datasets.sets["S5"] = tail_enhance(
                    self.datasets["S4"], self.config, rng=self._rngs[2]
                )
            self._fit_boundaries({"B3": "S3", "B4": "S4", "B5": "S5"})
        return self

    def _new_region(self, name: str) -> TrustedRegion:
        return TrustedRegion(
            name=name,
            nu=self.config.svm_nu,
            gamma=self.config.svm_gamma,
            floor_ratio=self.config.floor_ratio,
            noise_floor_rel=self.config.noise_floor_rel,
            max_training_samples=self.config.svm_max_training_samples,
            method=self.config.boundary_method,
            seed=self._rngs[3 + BOUNDARY_NAMES.index(name)],
        )

    def _fit_boundaries(self, mapping: Dict[str, str]) -> None:
        """Fit independent boundaries, optionally across worker processes.

        Each boundary consumes only its own child generator, so fitting in a
        pool yields the same regions as fitting serially, in any order.
        """
        pairs = [(self._new_region(name), self.datasets[dataset])
                 for name, dataset in mapping.items()]
        with span("pipeline.fit_boundaries", boundaries=",".join(mapping),
                  n_jobs=self.config.n_jobs):
            fitted = parallel_map(_fit_region, pairs, n_jobs=self.config.n_jobs)
        for name, region in zip(mapping, fitted):
            self.boundaries[name] = region

    # ------------------------------------------------------------------
    # stage 3: trojan test
    # ------------------------------------------------------------------

    def classify(self, fingerprints, boundary: str = "B5") -> np.ndarray:
        """Classify DUTT fingerprints; True = Trojan-free (inside region)."""
        if boundary not in self.boundaries:
            raise KeyError(
                f"boundary {boundary!r} not trained; available: "
                f"{sorted(self.boundaries)}"
            )
        return self.boundaries[boundary].predict_trojan_free(fingerprints)

    def evaluate(self, fingerprints, infested) -> Dict[str, DetectionMetrics]:
        """FP/FN of every trained boundary over a labelled DUTT population."""
        fingerprints = check_2d(fingerprints, "fingerprints")
        results = {}
        with span("pipeline.evaluate", n_devices=int(fingerprints.shape[0])):
            for name in BOUNDARY_NAMES:
                if name in self.boundaries:
                    predictions = self.classify(fingerprints, boundary=name)
                    results[name] = evaluate_detection(predictions, infested)
                    obs_metrics.gauge(f"detect.{name}.fp_count").set(
                        results[name].fp_count
                    )
                    obs_metrics.gauge(f"detect.{name}.fn_count").set(
                        results[name].fn_count
                    )
        return results
