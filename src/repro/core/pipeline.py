"""The golden chip-free detector: the paper's three-stage pipeline.

Stage 1 — **pre-manufacturing** (Section 2.1): Monte Carlo simulate golden
devices with the trusted Spice deck; learn the MARS regressions
``g_j : m_p -> m_j``; train boundary B1 on the raw simulated fingerprints
(S1) and B2 on their KDE tail-enhanced population (S2).

Stage 2 — **silicon measurement** (Section 2.2): measure the PCMs of the
devices under Trojan test; predict golden fingerprints from them (S3 -> B3);
calibrate the simulated PCM population to the silicon operating point with
kernel mean matching and predict from the shifted population (S4 -> B4);
tail-enhance that population with adaptive KDE (S5 -> B5).

Stage 3 — **Trojan test** (Section 2.3): classify each DUTT fingerprint
against a chosen boundary; compute FP/FN.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro import cache as artifact_cache
from repro.cache import digest_array
from repro.core.boundaries import TrustedRegion
from repro.core.config import DetectorConfig
from repro.core.datasets import (
    DatasetBundle,
    build_s1,
    build_s3,
    build_s4,
    tail_enhance,
    train_regressions,
)
from repro.core.metrics import DetectionMetrics, evaluate_detection
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.parallel import parallel_map
from repro.utils.rng import spawn_children
from repro.utils.validation import check_2d

BOUNDARY_NAMES = ("B1", "B2", "B3", "B4", "B5")


def _fit_region(item):
    """Fit one trusted region on its dataset (picklable pool worker)."""
    region, data = item
    return region.fit(data)


class GoldenChipFreeDetector:
    """Learns trusted regions B1..B5 without golden chips.

    Typical use::

        detector = GoldenChipFreeDetector(DetectorConfig())
        detector.fit_premanufacturing(sim_pcms, sim_fingerprints)
        detector.fit_silicon(dutt_pcms)
        verdicts = detector.classify(dutt_fingerprints)          # B5
        table = detector.evaluate(dutt_fingerprints, infested)   # all B's
    """

    def __init__(self, config: Optional[DetectorConfig] = None):
        self.config = config or DetectorConfig()
        self.datasets = DatasetBundle()
        self.boundaries: Dict[str, TrustedRegion] = {}
        self.regressions_ = None
        self._sim_pcms: Optional[np.ndarray] = None
        self.n_pcm_features_: Optional[int] = None
        self.n_fingerprint_features_: Optional[int] = None
        # Independent child generators per stochastic step, all derived from
        # the master seed: [S2 KDE, KMM resample, S5 KDE, B1, B2, B3, B4, B5].
        # SeedSequence spawning is prefix-stable, so the first three streams
        # match the historical 4-child layout; each boundary now owns its own
        # stream (required for order-independent, parallelizable fits).  The
        # same independence lets the artifact cache serve any one stage warm
        # without perturbing what the remaining cold stages compute.
        self._rngs = spawn_children(self.config.seed, 3 + len(BOUNDARY_NAMES))

    # ------------------------------------------------------------------
    # artifact-cache plumbing
    # ------------------------------------------------------------------

    #: DetectorConfig fields each cacheable stage depends on.  ``n_jobs``
    #: never appears (results are bit-identical for any worker count);
    #: ``seed`` is appended automatically for stochastic stages.
    _STAGE_FIELDS = {
        "regressions": ("regression_mode", "mars_max_terms", "mars_max_degree",
                        "mars_penalty"),
        "kde_tail": ("kde_samples", "kde_alpha", "kde_bandwidth",
                     "kde_bandwidth_scale", "floor_ratio"),
        "kmm_shift": ("kmm_B", "kmm_eps", "kmm_gamma", "kmm_resample_size"),
        "boundary": ("svm_nu", "svm_gamma", "floor_ratio", "noise_floor_rel",
                     "svm_max_training_samples", "boundary_method"),
    }

    def _stage_parts(self, stage: str, **extra) -> dict:
        parts = {name: getattr(self.config, name)
                 for name in self._STAGE_FIELDS[stage]}
        parts.update(extra)
        return parts

    def _cached(self, stage, parts, compute, stochastic=True):
        """Route one stage through the artifact cache.

        Stochastic stages consume a child stream of the master seed; with no
        seed their output is not addressable, so they always recompute.
        """
        if stochastic:
            if self.config.seed is None:
                return compute()
            parts = {**parts, "seed": self.config.seed}
        return artifact_cache.stage_cached(stage, parts, compute)

    # ------------------------------------------------------------------
    # stage 1: pre-manufacturing
    # ------------------------------------------------------------------

    def fit_premanufacturing(self, sim_pcms, sim_fingerprints) -> "GoldenChipFreeDetector":
        """Learn regressions and the simulation-only boundaries B1/B2."""
        sim_pcms = check_2d(sim_pcms, "sim_pcms")
        sim_fingerprints = check_2d(sim_fingerprints, "sim_fingerprints")
        with span("pipeline.fit_premanufacturing", n_sim=int(sim_pcms.shape[0])):
            self._sim_pcms = sim_pcms
            self.n_pcm_features_ = int(sim_pcms.shape[1])
            self.n_fingerprint_features_ = int(sim_fingerprints.shape[1])
            with span("regression.train", mode=self.config.regression_mode):
                self.regressions_ = self._cached(
                    "regressions",
                    self._stage_parts(
                        "regressions",
                        pcms=digest_array(sim_pcms),
                        fingerprints=digest_array(sim_fingerprints),
                    ),
                    lambda: train_regressions(sim_pcms, sim_fingerprints, self.config),
                    stochastic=False,
                )

            self.datasets.sets["S1"] = build_s1(sim_fingerprints)
            with span("dataset.build", dataset="S2"):
                self.datasets.sets["S2"] = self._cached(
                    "kde_tail",
                    self._stage_parts(
                        "kde_tail", dataset="S2",
                        population=digest_array(self.datasets["S1"]),
                    ),
                    lambda: tail_enhance(
                        self.datasets["S1"], self.config, rng=self._rngs[0]
                    ),
                )
            self._fit_boundaries({"B1": "S1", "B2": "S2"})
        return self

    # ------------------------------------------------------------------
    # stage 2: silicon measurement
    # ------------------------------------------------------------------

    def fit_silicon(self, dutt_pcms) -> "GoldenChipFreeDetector":
        """Anchor the trusted region in silicon via the DUTTs' PCMs."""
        if self.regressions_ is None:
            raise RuntimeError("fit_premanufacturing must run before fit_silicon")
        if self._sim_pcms is None:
            raise RuntimeError(
                "this detector was restored from exported state and is "
                "inference-only; refit from raw data to run fit_silicon"
            )
        dutt_pcms = check_2d(dutt_pcms, "dutt_pcms")
        if dutt_pcms.shape[1] != self._sim_pcms.shape[1]:
            raise ValueError(
                f"DUTT PCMs have {dutt_pcms.shape[1]} features, "
                f"simulation had {self._sim_pcms.shape[1]}"
            )

        with span("pipeline.fit_silicon", n_dutt=int(dutt_pcms.shape[0])):
            with span("dataset.build", dataset="S3"):
                self.datasets.sets["S3"] = build_s3(self.regressions_, dutt_pcms)
            with span("dataset.build", dataset="S4"):
                # S4 depends on the fitted regressions; their inputs (the
                # simulated PCMs/fingerprints and the regression fields)
                # stand in for them in the key.
                self.datasets.sets["S4"] = self._cached(
                    "kmm_shift",
                    self._stage_parts(
                        "kmm_shift",
                        regression=self._stage_parts(
                            "regressions",
                            fingerprints=digest_array(self.datasets["S1"]),
                        ),
                        sim_pcms=digest_array(self._sim_pcms),
                        dutt_pcms=digest_array(dutt_pcms),
                    ),
                    lambda: build_s4(
                        self.regressions_, self._sim_pcms, dutt_pcms,
                        self.config, rng=self._rngs[1],
                    ),
                )
            with span("dataset.build", dataset="S5"):
                self.datasets.sets["S5"] = self._cached(
                    "kde_tail",
                    self._stage_parts(
                        "kde_tail", dataset="S5",
                        population=digest_array(self.datasets["S4"]),
                    ),
                    lambda: tail_enhance(
                        self.datasets["S4"], self.config, rng=self._rngs[2]
                    ),
                )
            self._fit_boundaries({"B3": "S3", "B4": "S4", "B5": "S5"})
        return self

    def _new_region(self, name: str) -> TrustedRegion:
        return TrustedRegion(
            name=name,
            nu=self.config.svm_nu,
            gamma=self.config.svm_gamma,
            floor_ratio=self.config.floor_ratio,
            noise_floor_rel=self.config.noise_floor_rel,
            max_training_samples=self.config.svm_max_training_samples,
            method=self.config.boundary_method,
            seed=self._rngs[3 + BOUNDARY_NAMES.index(name)],
        )

    def _boundary_key_parts(self, name: str, dataset: str) -> dict:
        # The boundary's subsampling stream is a child of the master seed
        # indexed by the boundary name, so (seed, name) pins it exactly.
        return self._stage_parts(
            "boundary", boundary=name,
            population=digest_array(self.datasets[dataset]),
        )

    def _fit_boundaries(self, mapping: Dict[str, str]) -> None:
        """Fit independent boundaries, optionally across worker processes.

        Each boundary consumes only its own child generator, so fitting in a
        pool yields the same regions as fitting serially, in any order —
        and a cached boundary can be served without touching the streams of
        the ones that still need fitting.
        """
        cache = artifact_cache.get_cache()
        use_cache = cache is not None and self.config.seed is not None
        pending = dict(mapping)
        if use_cache:
            for name, dataset in mapping.items():
                key = artifact_cache.make_key(
                    "boundary", {**self._boundary_key_parts(name, dataset),
                                 "seed": self.config.seed},
                )
                region = cache.load("boundary", key)
                if region is not artifact_cache.MISS:
                    self.boundaries[name] = region
                    del pending[name]
        if not pending:
            return
        pairs = [(self._new_region(name), self.datasets[dataset])
                 for name, dataset in pending.items()]
        with span("pipeline.fit_boundaries", boundaries=",".join(pending),
                  n_jobs=self.config.n_jobs):
            fitted = parallel_map(_fit_region, pairs, n_jobs=self.config.n_jobs)
        for (name, dataset), region in zip(pending.items(), fitted):
            self.boundaries[name] = region
            if use_cache:
                key = artifact_cache.make_key(
                    "boundary", {**self._boundary_key_parts(name, dataset),
                                 "seed": self.config.seed},
                )
                cache.store("boundary", key, region)

    # ------------------------------------------------------------------
    # stage 3: trojan test
    # ------------------------------------------------------------------

    def _validate_fingerprints(self, fingerprints) -> np.ndarray:
        """Shared scoring-entry validator (same contract as the fit entries).

        Raw user arrays reach ``classify``/``evaluate`` directly in the
        serving flow, so they get the identical shape/dtype/finiteness
        coercion the ``fit_*`` entries apply, plus a feature-width check
        against the training population — degenerate inputs fail loudly
        instead of silently mis-classifying.
        """
        fingerprints = check_2d(fingerprints, "fingerprints")
        expected = self.n_fingerprint_features_
        if expected is not None and fingerprints.shape[1] != expected:
            raise ValueError(
                f"fingerprints have {fingerprints.shape[1]} features, "
                f"detector was trained on {expected}"
            )
        return fingerprints

    def _resolve_boundaries(self, boundaries) -> Tuple[str, ...]:
        """Normalize a boundary subset request against the trained set."""
        if boundaries is None:
            names = tuple(n for n in BOUNDARY_NAMES if n in self.boundaries)
            if not names:
                raise RuntimeError("no boundaries trained yet")
            return names
        if isinstance(boundaries, str):
            boundaries = (boundaries,)
        names = tuple(boundaries)
        for name in names:
            if name not in self.boundaries:
                raise KeyError(
                    f"boundary {name!r} not trained; available: "
                    f"{sorted(self.boundaries)}"
                )
        return names

    def classify(self, fingerprints, boundary: str = "B5") -> np.ndarray:
        """Classify DUTT fingerprints; True = Trojan-free (inside region)."""
        (name,) = self._resolve_boundaries(boundary)
        fingerprints = self._validate_fingerprints(fingerprints)
        return self.boundaries[name].decision_scores(
            fingerprints, validate=False
        ) >= 0.0

    def decision_scores_batch(
        self, fingerprints, boundaries: Optional[Iterable[str]] = None
    ) -> Dict[str, np.ndarray]:
        """Decision scores of one device batch against several boundaries.

        The batch is validated **once** and every requested boundary scores
        the same float64 block (each reusing its precomputed support-vector
        norms), so per-boundary overhead amortizes across the subset.
        Scores are bit-identical to per-boundary :meth:`classify` calls.
        """
        names = self._resolve_boundaries(boundaries)
        fingerprints = self._validate_fingerprints(fingerprints)
        return {
            name: self.boundaries[name].decision_scores(fingerprints, validate=False)
            for name in names
        }

    def classify_batch(
        self, fingerprints, boundaries: Optional[Iterable[str]] = None
    ) -> Dict[str, np.ndarray]:
        """Per-boundary Trojan-free verdicts for one validated device batch."""
        scores = self.decision_scores_batch(fingerprints, boundaries=boundaries)
        return {name: values >= 0.0 for name, values in scores.items()}

    def evaluate(self, fingerprints, infested) -> Dict[str, DetectionMetrics]:
        """FP/FN of every trained boundary over a labelled DUTT population."""
        fingerprints = self._validate_fingerprints(fingerprints)
        infested = np.asarray(infested)
        if infested.ndim != 1 or infested.shape[0] != fingerprints.shape[0]:
            raise ValueError(
                f"infested must be 1-D with one label per device, got shape "
                f"{infested.shape} for {fingerprints.shape[0]} devices"
            )
        results = {}
        with span("pipeline.evaluate", n_devices=int(fingerprints.shape[0])):
            verdicts = self.classify_batch(fingerprints)
            for name, predictions in verdicts.items():
                results[name] = evaluate_detection(predictions, infested)
                obs_metrics.gauge(f"detect.{name}.fp_count").set(
                    results[name].fp_count
                )
                obs_metrics.gauge(f"detect.{name}.fn_count").set(
                    results[name].fn_count
                )
        return results

    # ------------------------------------------------------------------
    # export / restore (the serving flow's train-once artifact)
    # ------------------------------------------------------------------

    def to_state(self) -> dict:
        """Codec state of the fitted detector (see :mod:`repro.cache.codec`).

        Captures everything inference needs — config, every trained
        boundary, the PCM regressions and the feature widths — and nothing
        training-only (datasets, RNG streams, the simulated PCM population).
        A restored detector classifies bit-identically but is
        **inference-only**: refitting it would need the dropped streams.
        """
        if not self.boundaries:
            raise RuntimeError("cannot export an unfitted detector")
        return {
            "config": dataclasses.asdict(self.config),
            "boundaries": {name: region
                           for name, region in sorted(self.boundaries.items())},
            "regressions": self.regressions_,
            "n_pcm_features": self.n_pcm_features_,
            "n_fingerprint_features": self.n_fingerprint_features_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "GoldenChipFreeDetector":
        """Rebuild an inference-ready detector from :meth:`to_state` output."""
        detector = cls(DetectorConfig(**state["config"]))
        detector.boundaries = dict(state["boundaries"])
        detector.regressions_ = state.get("regressions")
        width = state.get("n_pcm_features")
        detector.n_pcm_features_ = None if width is None else int(width)
        width = state.get("n_fingerprint_features")
        detector.n_fingerprint_features_ = None if width is None else int(width)
        return detector

    def export_bundle(self, path, **manifest_extra):
        """Export the fitted detector as a ``repro-bundle-v1`` file.

        Convenience hook over :func:`repro.serve.bundle.export_bundle`;
        returns the written :class:`~repro.serve.bundle.BundleInfo`.
        """
        from repro.serve.bundle import export_bundle

        return export_bundle(self, path, **manifest_extra)
