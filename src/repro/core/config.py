"""Configuration of the golden chip-free detector."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.validation import check_in_range, check_positive, check_probability


@dataclass
class DetectorConfig:
    """All tunables of the detection pipeline, with paper defaults.

    Parameters
    ----------
    n_monte_carlo:
        Number of simulated golden devices (paper: 100).
    kde_samples:
        Size of the tail-enhanced synthetic populations S2 and S5
        (paper: 10^5).
    kde_alpha:
        Adaptive-KDE tail sensitivity (Silverman's alpha; 0.5).
    kde_bandwidth:
        Global KDE bandwidth override; ``None`` = Silverman's rule.
    kde_bandwidth_scale:
        Multiplier on the Silverman bandwidth for the tail-enhancement KDE.
    floor_ratio:
        Relative eigenvalue floor (fraction of the top eigenvalue) used by
        both the boundary whitener and the KDE whitener.
    noise_floor_rel:
        Absolute whitener floor, as a fraction of the mean fingerprint
        magnitude of the training population.  This encodes the bench
        measurement-noise level: directions of the golden population with
        less spread than the noise floor are resolved only down to the
        floor, so noisy golden devices stay inside the boundary while
        Trojan-induced off-manifold displacement (several times the noise)
        stays outside.  Default: twice the power meter's 0.15 % gain noise.
    svm_nu:
        One-class SVM ν (outlier budget).
    svm_gamma:
        RBF gamma in whitened coordinates; ``None`` = median heuristic.
    svm_max_training_samples:
        Subsampling cap for the SVM on the 10^5-point KDE sets.
    kmm_B / kmm_eps / kmm_gamma:
        Kernel mean matching tuning parameters (Section 2.4); ``None`` eps
        selects ``(sqrt(n)-1)/sqrt(n)``, ``None`` gamma the median
        heuristic.
    kmm_resample_size:
        Size of the mean-shifted PCM population m''_p drawn by importance
        resampling (paper: 100, same as the Monte Carlo size).
    mars_max_terms / mars_max_degree:
        MARS forward-pass capacity for the PCM -> fingerprint regressions.
    boundary_method:
        One-class learner of the trusted regions: ``"ocsvm"`` (paper) or
        ``"mahalanobis"`` (elliptic envelope; ablation A7).
    regression_mode:
        ``"latent_gain"`` (default) fits one MARS model on the latent device
        gain and predicts all fingerprints consistently (rank-1 reduced-rank
        regression); ``"independent"`` fits one MARS model per fingerprint,
        as a literal reading of the paper.  Independent fits extrapolate
        inconsistently across outputs, which poisons the near-degenerate
        directions of the trusted region (see the regression ablation).
    seed:
        Master seed for every stochastic pipeline step.
    n_jobs:
        Worker processes for the independent boundary fits (clamped to the
        CPU count; negative = joblib convention).  Results are bit-identical
        for every value: each boundary owns a child generator spawned from
        the master seed.
    engine:
        Population evaluation engine used by data-regeneration paths that
        simulate or measure device populations: ``"batched"`` (default,
        array programs) or ``"loop"`` (device-at-a-time reference).  Both
        produce bit-identical measurements.
    """

    n_monte_carlo: int = 100
    kde_samples: int = 100_000
    kde_alpha: float = 0.5
    kde_bandwidth: Optional[float] = None
    kde_bandwidth_scale: float = 0.7
    floor_ratio: float = 2e-3
    noise_floor_rel: float = 0.007
    svm_nu: float = 0.08
    svm_gamma: Optional[float] = None
    svm_max_training_samples: int = 1500
    kmm_B: float = 10.0
    kmm_eps: Optional[float] = None
    kmm_gamma: Optional[float] = None
    kmm_resample_size: int = 100
    mars_max_terms: int = 15
    mars_max_degree: int = 1
    mars_penalty: float = 2.0
    regression_mode: str = "latent_gain"
    boundary_method: str = "ocsvm"
    seed: Optional[int] = 11
    n_jobs: int = 1
    engine: str = "batched"

    def __post_init__(self):
        if self.n_monte_carlo < 10:
            raise ValueError(f"n_monte_carlo must be >= 10, got {self.n_monte_carlo}")
        if self.kde_samples < 1:
            raise ValueError(f"kde_samples must be positive, got {self.kde_samples}")
        check_in_range(self.kde_alpha, 0.0, 1.0, "kde_alpha")
        check_positive(self.kde_bandwidth_scale, "kde_bandwidth_scale")
        check_in_range(self.noise_floor_rel, 0.0, 1.0, "noise_floor_rel")
        if self.kde_bandwidth is not None:
            check_positive(self.kde_bandwidth, "kde_bandwidth")
        check_probability(self.svm_nu, "svm_nu")
        check_in_range(self.floor_ratio, 1e-12, 1.0, "floor_ratio")
        check_positive(self.kmm_B, "kmm_B")
        if self.kmm_resample_size < 1:
            raise ValueError(
                f"kmm_resample_size must be positive, got {self.kmm_resample_size}"
            )
        if self.boundary_method not in ("ocsvm", "mahalanobis"):
            raise ValueError(
                f"boundary_method must be 'ocsvm' or 'mahalanobis', "
                f"got {self.boundary_method!r}"
            )
        if self.regression_mode not in ("latent_gain", "independent"):
            raise ValueError(
                f"regression_mode must be 'latent_gain' or 'independent', "
                f"got {self.regression_mode!r}"
            )
        if self.svm_max_training_samples < 10:
            raise ValueError(
                "svm_max_training_samples must be >= 10, "
                f"got {self.svm_max_training_samples}"
            )
        if not isinstance(self.n_jobs, int) or isinstance(self.n_jobs, bool):
            raise ValueError(f"n_jobs must be an integer, got {self.n_jobs!r}")
        if self.engine not in ("batched", "loop"):
            raise ValueError(
                f"engine must be 'batched' or 'loop', got {self.engine!r}"
            )
