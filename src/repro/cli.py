"""Unified command-line interface: ``python -m repro.cli <command>``.

Commands
--------
table1        reproduce Table 1 (FP/FN of boundaries B1..B5)
figure4       reproduce the Figure 4 geometry summary
audit         screen a device population and print the audit sheet
generate      synthesize an experiment and save it to .npz
ablation      run one of the ablation studies (A1/A2/A5/A7)
report        pretty-print the manifest of a traced run
cache         inspect (``stats``) or empty (``clear``) the artifact cache
export-bundle fit a detector and export it as a ``repro-bundle-v1`` file
serve         serve a detector bundle over the HTTP screening API
score         screen devices against a bundle (local) or a server (--url)

Every experiment command accepts ``--trace`` (record spans + metrics and
write ``<run-dir>/manifest.json`` + ``events.jsonl``), ``--run-dir``
(defaults to ``runs/<run-id>``), ``--log-level``, and ``--cache`` /
``--no-cache`` (enable or disable the content-addressed artifact cache for
this invocation, overriding the ``REPRO_CACHE`` environment variable;
cached and fresh runs are bit-identical).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time
from typing import List, Optional

from repro import obs
from repro import cache as artifact_cache
from repro.core.config import DetectorConfig
from repro.core.io import load_experiment_data, save_experiment_data
from repro.core.pipeline import GoldenChipFreeDetector
from repro.core.report import format_table1
from repro.experiments.ablations import (
    ablate_boundary_method,
    ablate_kde,
    ablate_kmm,
    ablate_kmm_bandwidth,
    ablate_regression_mode,
    format_rows,
)
from repro.experiments.figure4 import run_figure4
from repro.experiments.platformcfg import PlatformConfig, generate_experiment_data
from repro.experiments.table1 import run_table1

ABLATIONS = {
    "kde": (ablate_kde, "A1: KDE tail modeling"),
    "kmm": (ablate_kmm, "A2: PCM population calibration"),
    "kmm-bandwidth": (ablate_kmm_bandwidth, "A2b: KMM kernel bandwidth"),
    "regression": (ablate_regression_mode, "A5: regression mode"),
    "boundary": (ablate_boundary_method, "A7a: one-class classifier"),
}


def _add_obs(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by every experiment command."""
    parser.add_argument(
        "--trace", action="store_true",
        help="record spans + metrics and write a run manifest "
             "(results are bit-identical with tracing on or off)",
    )
    parser.add_argument(
        "--run-dir", type=str, default=None,
        help="directory for manifest.json + events.jsonl "
             "(default: runs/<run-id>; implies nothing without --trace)",
    )
    parser.add_argument(
        "--log-level", type=str, default="warning",
        choices=["debug", "info", "warning", "error"],
        help="logging verbosity of the repro.* loggers",
    )
    cache_switch = parser.add_mutually_exclusive_group()
    cache_switch.add_argument(
        "--cache", action="store_true", dest="cache",
        help="serve expensive stages from the content-addressed artifact "
             "cache (REPRO_CACHE_DIR, default .repro-cache); results are "
             "bit-identical to an uncached run",
    )
    cache_switch.add_argument(
        "--no-cache", action="store_true", dest="no_cache",
        help="force the artifact cache off, overriding REPRO_CACHE=1",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=16, help="experiment seed")
    parser.add_argument("--chips", type=int, default=40, help="fabricated chips")
    parser.add_argument(
        "--kde-samples", type=int, default=30_000, help="tail-enhanced set size M'"
    )
    parser.add_argument(
        "--data", type=str, default=None,
        help="load measurements from a .npz written by the generate command",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for simulation and boundary fits "
             "(results are bit-identical for any value; -1 = all cores)",
    )
    parser.add_argument(
        "--engine", type=str, default="batched", choices=["batched", "loop"],
        help="population evaluation engine: 'batched' vectorizes whole "
             "device populations, 'loop' simulates one die at a time "
             "(bit-identical results)",
    )
    _add_obs(parser)


def _resolve_data(args):
    if args.data:
        return load_experiment_data(args.data)
    return generate_experiment_data(
        PlatformConfig(seed=args.seed, n_chips=args.chips, n_jobs=args.jobs,
                       engine=getattr(args, "engine", "batched"))
    )


def _detector_config(args) -> DetectorConfig:
    return DetectorConfig(kde_samples=args.kde_samples, n_jobs=args.jobs,
                          engine=getattr(args, "engine", "batched"))


def _cmd_table1(args) -> int:
    result = run_table1(detector_config=_detector_config(args), data=_resolve_data(args))
    print(result.format())
    print(f"\nmatches paper shape: {result.matches_paper_shape()}")
    args._results = {
        "boundaries": {
            name: {"fp_count": metric.fp_count, "fn_count": metric.fn_count}
            for name, metric in result.metrics.items()
        },
        "matches_paper_shape": result.matches_paper_shape(),
    }
    return 0


def _cmd_figure4(args) -> int:
    result = run_figure4(detector_config=_detector_config(args), data=_resolve_data(args))
    print(result.format())
    return 0


def _cmd_audit(args) -> int:
    data = _resolve_data(args)
    detector = GoldenChipFreeDetector(_detector_config(args))
    detector.fit_premanufacturing(data.sim_pcms, data.sim_fingerprints)
    detector.fit_silicon(data.dutt_pcms)
    verdicts = detector.classify(data.dutt_fingerprints, boundary=args.boundary)
    flagged = int((~verdicts).sum())
    print(f"boundary {args.boundary}: flagged {flagged} of {data.n_devices} devices")
    args._results = {
        "boundary": args.boundary,
        "flagged": flagged,
        "n_devices": data.n_devices,
    }
    if data.infested is not None:
        print()
        print(format_table1(detector.evaluate(data.dutt_fingerprints, data.infested)))
    return 0


def _cmd_generate(args) -> int:
    data = generate_experiment_data(
        PlatformConfig(seed=args.seed, n_chips=args.chips, n_jobs=args.jobs,
                       engine=args.engine)
    )
    path = save_experiment_data(data, args.output)
    print(f"wrote {data.n_devices} DUTTs + {data.sim_fingerprints.shape[0]} "
          f"simulated devices to {path}")
    args._results = {
        "output": str(path),
        "n_dutts": data.n_devices,
        "n_simulated": int(data.sim_fingerprints.shape[0]),
    }
    return 0


def _cmd_ablation(args) -> int:
    runner, title = ABLATIONS[args.study]
    rows = runner(
        data=_resolve_data(args),
        base_config=_detector_config(args),
    )
    print(format_rows(rows, title))
    return 0


def _fit_detector(args) -> GoldenChipFreeDetector:
    """Fit the full three-stage detector on the resolved experiment data."""
    data = _resolve_data(args)
    detector = GoldenChipFreeDetector(_detector_config(args))
    detector.fit_premanufacturing(data.sim_pcms, data.sim_fingerprints)
    detector.fit_silicon(data.dutt_pcms)
    return detector


def _cmd_export_bundle(args) -> int:
    detector = _fit_detector(args)
    info = detector.export_bundle(args.output)
    print(f"wrote bundle {info.path}")
    print(f"  boundaries:     {', '.join(info.header['detector']['boundaries'])}")
    print(f"  schema version: {info.schema_version}")
    print(f"  digest:         {info.digest}")
    args._serve = {
        "bundle": str(info.path),
        "digest": info.digest,
        "schema_version": info.schema_version,
    }
    args._results = dict(args._serve)
    return 0


def _cmd_serve(args) -> int:
    from repro.serve.server import DetectorServer

    server = DetectorServer(
        args.bundle,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
    )
    summary = server.bundle_summary()
    args._serve = {
        "bundle": summary["path"],
        "digest": summary["digest"],
        "schema_version": summary["schema_version"],
    }
    print(f"serving {summary['path']}")
    print(f"  boundaries: {', '.join(summary['boundaries'])}")
    print(f"  digest:     {summary['digest']}")
    print(f"  url:        {server.url}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        server.batcher.close()
    return 0


def _cmd_score(args) -> int:
    data = load_experiment_data(args.data)
    boundaries = args.boundary or None
    if args.url:
        from repro.serve.client import ScoringClient

        result = ScoringClient(args.url).score(
            data.dutt_fingerprints, boundaries=boundaries
        )
        source = args.url
    else:
        from repro.serve.bundle import load_bundle
        from repro.serve.engine import ScoringEngine

        loaded = load_bundle(args.bundle)
        args._serve = {
            "bundle": loaded.path,
            "digest": loaded.digest,
            "schema_version": int(loaded.header["schema_version"]),
        }
        result = ScoringEngine(loaded.detector).score(
            data.dutt_fingerprints, boundaries=boundaries
        )
        source = args.bundle
    print(f"scored {result.n_devices} devices against {source}")
    flagged = {}
    for name in sorted(result.verdicts):
        count = int((~result.verdicts[name]).sum())
        flagged[name] = count
        print(f"  {name}: flagged {count} of {result.n_devices}")
    args._results = {"n_devices": result.n_devices, "flagged": flagged}
    return 0


def _resolve_run_path(run: str) -> str:
    """Map a run id / run directory / manifest path onto an existing path."""
    if os.path.exists(run):
        return run
    candidate = os.path.join("runs", run)
    if os.path.exists(candidate):
        return candidate
    raise SystemExit(f"no run found at {run!r} (also tried {candidate!r})")


def _cmd_report(args) -> int:
    from repro.obs.manifest import load_manifest
    from repro.obs.report import render_report

    manifest = load_manifest(_resolve_run_path(args.run))
    print(render_report(manifest))
    return 0


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(count)} B"  # pragma: no cover - loop always returns


def _cmd_cache(args) -> int:
    cache = artifact_cache.get_cache() or artifact_cache.ArtifactCache(
        artifact_cache.default_root()
    )
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
        return 0
    stats = cache.disk_stats()
    print(f"cache root: {stats['root']}")
    print(f"size cap:   {_format_bytes(stats['max_bytes'])}")
    print(f"entries:    {stats['entries']} ({_format_bytes(stats['bytes'])})")
    for stage, record in stats["stages"].items():
        print(f"  {stage:12s} {record['entries']:4d} entries  "
              f"{_format_bytes(record['bytes'])}")
    args._results = stats
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    table1 = commands.add_parser("table1", help="reproduce Table 1")
    _add_common(table1)
    table1.set_defaults(handler=_cmd_table1)

    figure4 = commands.add_parser("figure4", help="reproduce Figure 4 geometry")
    _add_common(figure4)
    figure4.set_defaults(handler=_cmd_figure4)

    audit = commands.add_parser("audit", help="screen a device population")
    _add_common(audit)
    audit.add_argument("--boundary", default="B5", choices=["B1", "B2", "B3", "B4", "B5"])
    audit.set_defaults(handler=_cmd_audit)

    generate = commands.add_parser("generate", help="synthesize + save an experiment")
    generate.add_argument("output", help="target .npz path")
    generate.add_argument("--seed", type=int, default=16)
    generate.add_argument("--chips", type=int, default=40)
    generate.add_argument("--jobs", type=int, default=1)
    generate.add_argument(
        "--engine", type=str, default="batched", choices=["batched", "loop"],
        help="population evaluation engine (bit-identical results)",
    )
    _add_obs(generate)
    generate.set_defaults(handler=_cmd_generate)

    ablation = commands.add_parser("ablation", help="run one ablation study")
    ablation.add_argument("study", choices=sorted(ABLATIONS))
    _add_common(ablation)
    ablation.set_defaults(handler=_cmd_ablation)

    report = commands.add_parser("report", help="pretty-print a traced run")
    report.add_argument(
        "run",
        help="run id under runs/, a run directory, or a manifest.json path",
    )
    report.set_defaults(handler=_cmd_report)

    cache = commands.add_parser(
        "cache", help="inspect or clear the content-addressed artifact cache"
    )
    cache.add_argument("action", choices=["stats", "clear"])
    cache.set_defaults(handler=_cmd_cache)

    export_bundle = commands.add_parser(
        "export-bundle",
        help="fit a detector and export it as a repro-bundle-v1 file",
    )
    export_bundle.add_argument("output", help="target bundle .npz path")
    _add_common(export_bundle)
    export_bundle.set_defaults(handler=_cmd_export_bundle)

    serve = commands.add_parser(
        "serve", help="serve a detector bundle over the HTTP screening API"
    )
    serve.add_argument("bundle", help="repro-bundle-v1 file to serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642,
        help="bind port (0 = pick an ephemeral port)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=256,
        help="devices per micro-batch scoring pass",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="micro-batch straggler window in milliseconds",
    )
    serve.add_argument(
        "--max-queue", type=int, default=1024,
        help="queued-request bound; beyond it requests get HTTP 429",
    )
    serve.add_argument(
        "--log-level", type=str, default="warning",
        choices=["debug", "info", "warning", "error"],
        help="logging verbosity of the repro.* loggers",
    )
    serve.set_defaults(handler=_cmd_serve)

    score = commands.add_parser(
        "score", help="screen a measured population against a detector"
    )
    score.add_argument(
        "--data", required=True,
        help=".npz written by the generate command (the DUTT fingerprints)",
    )
    target = score.add_mutually_exclusive_group(required=True)
    target.add_argument("--bundle", help="score in-process against this bundle")
    target.add_argument("--url", help="score against a running serve instance")
    score.add_argument(
        "--boundary", action="append", choices=["B1", "B2", "B3", "B4", "B5"],
        help="boundary subset to score (repeatable; default: all in bundle)",
    )
    _add_obs(score)
    score.set_defaults(handler=_cmd_score)

    return parser


def _apply_cache_flags(args) -> None:
    """Resolve --cache/--no-cache before any handler runs (flags beat env)."""
    if getattr(args, "no_cache", False):
        artifact_cache.configure(enabled=False)
    elif getattr(args, "cache", False):
        artifact_cache.configure(enabled=True)


def _run_config(args) -> dict:
    """The JSON-ready configuration recorded in the manifest."""
    skip = {"handler", "command", "trace", "run_dir", "log_level"}
    config = {
        key: value
        for key, value in sorted(vars(args).items())
        if key not in skip and not key.startswith("_")
    }
    if hasattr(args, "kde_samples"):
        config["detector"] = dataclasses.asdict(_detector_config(args))
    return config


def _run_traced(args, argv: List[str]) -> int:
    """Run one command under tracing and write its run manifest."""
    from repro.obs.manifest import (
        RunManifest,
        collect_environment,
        git_revision,
        new_run_id,
        write_manifest,
    )
    from repro.obs.sink import JsonlSink, write_span_events
    from repro.obs.trace import span

    run_dir = args.run_dir or os.path.join("runs", new_run_id())
    run_id = os.path.basename(os.path.normpath(run_dir))
    created = time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime())
    obs.enable()
    try:
        with span(args.command):
            status = args.handler(args)
    finally:
        spans, snapshot = obs.disable()

    manifest = RunManifest(
        run_id=run_id,
        command=args.command,
        created=created,
        argv=list(argv),
        environment=collect_environment(),
        git=git_revision(),
        config=_run_config(args),
        seeds={"experiment": args.seed} if hasattr(args, "seed") else {},
        metrics=snapshot,
        spans=[entry.to_dict() for entry in spans],
        results=getattr(args, "_results", None),
        cache=artifact_cache.provenance(),
        serve=getattr(args, "_serve", None),
    )
    path = write_manifest(manifest, run_dir)
    with JsonlSink(os.path.join(run_dir, "events.jsonl")) as sink:
        write_span_events(sink, spans, run_id=run_id)
    print(f"run manifest: {path}", file=sys.stderr)
    print(f"inspect with: python -m repro.cli report {run_dir}", file=sys.stderr)
    return status


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = build_parser().parse_args(argv)
    obs.setup_logging(getattr(args, "log_level", "warning"))
    _apply_cache_flags(args)
    try:
        if getattr(args, "trace", False):
            return _run_traced(args, argv)
        return args.handler(args)
    except BrokenPipeError:
        # The stdout consumer (head, less, ...) went away mid-report; point
        # stdout at devnull so the interpreter's shutdown flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
