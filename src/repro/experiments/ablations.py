"""Ablation experiments for the design choices called out in DESIGN.md.

=====  ====================================================================
id     question
=====  ====================================================================
A1     How do the adaptive-KDE tail parameter ``alpha`` and the synthetic
       volume M' affect the final boundary B5?
A2     Does KMM calibration beat naive alternatives (no shift / plain mean
       shift) when building the S4 population?
A3     How do the Monte Carlo size n and the PCM count np affect detection?
A4     How do B1 and B5 respond to the process-drift magnitude?
A5     Does the latent-gain regression matter, or would independent
       per-fingerprint MARS models do (paper-literal reading)?
A7     Does the one-class classifier choice matter (SVM vs Mahalanobis
       envelope), and does the tail-modeling family (adaptive KDE vs a
       generalized-Pareto radial tail)?
=====  ====================================================================

Each runner returns a list of result rows so the benchmark harness can both
time the sweep and print the table it regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from repro.core.boundaries import TrustedRegion
from repro.core.config import DetectorConfig
from repro.core.datasets import build_s3, tail_enhance, train_regressions
from repro.core.metrics import evaluate_detection
from repro.core.pipeline import GoldenChipFreeDetector
from repro.experiments.platformcfg import (
    ExperimentData,
    PlatformConfig,
    generate_experiment_data,
)
from repro.stats.evt import GpdTailEnhancer
from repro.stats.kmm import KernelMeanMatcher, KmmProblem, importance_resample
from repro.core.datasets import build_s4
from repro.utils.rng import as_generator


@dataclass
class AblationRow:
    """One row of an ablation table."""

    label: str
    fp_count: int
    fn_count: int
    n_infested: int
    n_trojan_free: int

    def format(self) -> str:
        return (
            f"{self.label:<38s} FP {self.fp_count:>2d}/{self.n_infested:<3d} "
            f"FN {self.fn_count:>2d}/{self.n_trojan_free:<3d}"
        )


def _evaluate_region(region: TrustedRegion, data: ExperimentData, label: str) -> AblationRow:
    predictions = region.predict_trojan_free(data.dutt_fingerprints)
    metrics = evaluate_detection(predictions, data.infested)
    return AblationRow(
        label=label,
        fp_count=metrics.fp_count,
        fn_count=metrics.fn_count,
        n_infested=metrics.n_infested,
        n_trojan_free=metrics.n_trojan_free,
    )


def _b5_region(data: ExperimentData, config: DetectorConfig) -> TrustedRegion:
    """Train only the final boundary B5 for a given configuration."""
    detector = GoldenChipFreeDetector(config)
    detector.fit_premanufacturing(data.sim_pcms, data.sim_fingerprints)
    detector.fit_silicon(data.dutt_pcms)
    return detector.boundaries["B5"]


def ablate_kde(
    data: Optional[ExperimentData] = None,
    alphas=(0.0, 0.25, 0.5, 1.0),
    sample_sizes=(1_000, 10_000, 100_000),
    base_config: Optional[DetectorConfig] = None,
) -> List[AblationRow]:
    """A1: sweep the adaptive-KDE alpha and synthetic volume M' for B5."""
    data = data or generate_experiment_data(PlatformConfig())
    base = base_config or DetectorConfig(svm_max_training_samples=1000)
    rows = []
    for alpha in alphas:
        config = replace(base, kde_alpha=float(alpha))
        region = _b5_region(data, config)
        rows.append(_evaluate_region(region, data, f"B5 with alpha={alpha}"))
    for size in sample_sizes:
        config = replace(base, kde_samples=int(size))
        region = _b5_region(data, config)
        rows.append(_evaluate_region(region, data, f"B5 with M'={size}"))
    return rows


def ablate_kmm(
    data: Optional[ExperimentData] = None,
    base_config: Optional[DetectorConfig] = None,
) -> List[AblationRow]:
    """A2: KMM vs naive alternatives for the shifted PCM population.

    Variants (all feed the same regression + KDE + boundary machinery):

    * ``no shift`` — use the raw simulated PCMs (S4 == wider S1-like set);
    * ``mean shift`` — translate simulated PCMs by the mean difference;
    * ``KMM`` — the paper's kernel mean matching (the pipeline default).
    """
    data = data or generate_experiment_data(PlatformConfig())
    config = base_config or DetectorConfig(svm_max_training_samples=1000)
    rng = as_generator(config.seed)
    regressions = train_regressions(data.sim_pcms, data.sim_fingerprints, config)

    def region_from_pcms(pcms, label):
        s4 = regressions.predict(pcms)
        s5 = tail_enhance(s4, config, rng=rng)
        region = TrustedRegion(
            name=label,
            nu=config.svm_nu,
            gamma=config.svm_gamma,
            floor_ratio=config.floor_ratio,
            noise_floor_rel=config.noise_floor_rel,
            max_training_samples=config.svm_max_training_samples,
            seed=rng,
        ).fit(s5)
        return _evaluate_region(region, data, label)

    rows = [region_from_pcms(data.sim_pcms, "B5 via no shift")]

    delta = data.dutt_pcms.mean(axis=0) - data.sim_pcms.mean(axis=0)
    rows.append(region_from_pcms(data.sim_pcms + delta, "B5 via plain mean shift"))

    matcher = KernelMeanMatcher(B=config.kmm_B, eps=config.kmm_eps, gamma=config.kmm_gamma)
    matcher.fit(data.sim_pcms, data.dutt_pcms)
    shifted = importance_resample(
        data.sim_pcms, matcher.weights, config.kmm_resample_size, rng=rng
    )
    rows.append(region_from_pcms(shifted, "B5 via KMM (paper)"))
    return rows


def ablate_kmm_bandwidth(
    data: Optional[ExperimentData] = None,
    gamma_scales=(0.25, 0.5, 1.0, 2.0, 4.0),
    base_config: Optional[DetectorConfig] = None,
) -> List[AblationRow]:
    """A2b: sensitivity of the KMM calibration to the kernel bandwidth.

    Sweeps multiples of the median-heuristic gamma.  All candidates share
    one :class:`KmmProblem`, so the pooled pairwise distances are computed
    once for the whole sweep.
    """
    data = data or generate_experiment_data(PlatformConfig())
    config = base_config or DetectorConfig(svm_max_training_samples=1000)
    rng = as_generator(config.seed)
    regressions = train_regressions(data.sim_pcms, data.sim_fingerprints, config)

    problem = KmmProblem(data.sim_pcms, data.dutt_pcms)
    median = problem.median_gamma()
    matchers = problem.sweep(
        [scale * median for scale in gamma_scales],
        B=config.kmm_B, eps=config.kmm_eps,
    )

    rows = []
    for scale, matcher in zip(gamma_scales, matchers):
        shifted = importance_resample(
            data.sim_pcms, matcher.weights, config.kmm_resample_size, rng=rng
        )
        s5 = tail_enhance(regressions.predict(shifted), config, rng=rng)
        region = TrustedRegion(
            name=f"gamma x{scale}",
            nu=config.svm_nu,
            gamma=config.svm_gamma,
            floor_ratio=config.floor_ratio,
            noise_floor_rel=config.noise_floor_rel,
            max_training_samples=config.svm_max_training_samples,
            seed=rng,
        ).fit(s5)
        rows.append(_evaluate_region(
            region, data,
            f"B5 with KMM gamma = {scale} x median "
            f"(ESS {matcher.effective_sample_size():.0f})",
        ))
    return rows


def ablate_design(
    n_monte_carlo=(25, 50, 100, 200),
    pcm_counts=(1, 2, 3),
    base_platform: Optional[PlatformConfig] = None,
    base_config: Optional[DetectorConfig] = None,
) -> List[AblationRow]:
    """A3: Monte Carlo size and PCM count sweeps (new data per point)."""
    platform = base_platform or PlatformConfig()
    config = base_config or DetectorConfig(svm_max_training_samples=1000)
    rows = []
    for n in n_monte_carlo:
        data = generate_experiment_data(replace(platform, n_monte_carlo=int(n)))
        region = _b5_region(data, config)
        rows.append(_evaluate_region(region, data, f"B5 with n_mc={n}"))
    suite_by_count = {1: "paper", 2: "extended", 3: "full"}
    for np_count in pcm_counts:
        if np_count not in suite_by_count:
            raise ValueError(f"pcm_counts must be drawn from {{1, 2, 3}}, got {np_count}")
        data = generate_experiment_data(
            replace(platform, pcm_suite_name=suite_by_count[np_count])
        )
        region = _b5_region(data, config)
        rows.append(_evaluate_region(region, data, f"B5 with np={np_count}"))
    return rows


def ablate_regression_mode(
    data: Optional[ExperimentData] = None,
    base_config: Optional[DetectorConfig] = None,
) -> List[AblationRow]:
    """A5: latent-gain (default) vs independent per-output MARS regression."""
    data = data or generate_experiment_data(PlatformConfig())
    base = base_config or DetectorConfig(svm_max_training_samples=1000)
    rows = []
    for mode in ("latent_gain", "independent"):
        config = replace(base, regression_mode=mode)
        region = _b5_region(data, config)
        rows.append(_evaluate_region(region, data, f"B5 with {mode} regression"))
    return rows


def ablate_drift(
    drift_scales=(0.0, 0.25, 0.45, 0.7, 1.0),
    base_platform: Optional[PlatformConfig] = None,
    base_config: Optional[DetectorConfig] = None,
) -> Dict[str, List[AblationRow]]:
    """A4: process-drift sweep — how B1 and B5 degrade with the shift."""
    platform = base_platform or PlatformConfig()
    config = base_config or DetectorConfig(svm_max_training_samples=1000)
    out: Dict[str, List[AblationRow]] = {"B1": [], "B5": []}
    for scale in drift_scales:
        data = generate_experiment_data(replace(platform, drift_scale=float(scale)))
        detector = GoldenChipFreeDetector(config)
        detector.fit_premanufacturing(data.sim_pcms, data.sim_fingerprints)
        detector.fit_silicon(data.dutt_pcms)
        for name in ("B1", "B5"):
            out[name].append(
                _evaluate_region(
                    detector.boundaries[name], data, f"{name} at drift={scale}"
                )
            )
    return out


def ablate_boundary_method(
    data: Optional[ExperimentData] = None,
    base_config: Optional[DetectorConfig] = None,
) -> List[AblationRow]:
    """A7a: one-class classifier choice for every boundary-B5 variant."""
    data = data or generate_experiment_data(PlatformConfig())
    base = base_config or DetectorConfig(svm_max_training_samples=1000)
    rows = []
    for method in ("ocsvm", "mahalanobis"):
        config = replace(base, boundary_method=method)
        region = _b5_region(data, config)
        rows.append(_evaluate_region(region, data, f"B5 with {method} boundary"))
    return rows


def ablate_tail_enhancer(
    data: Optional[ExperimentData] = None,
    base_config: Optional[DetectorConfig] = None,
) -> List[AblationRow]:
    """A7b: adaptive-KDE vs generalized-Pareto tail enhancement for S5.

    Both enhancers are fed the same S4 population; the resulting synthetic
    sets train identical boundary learners.
    """
    data = data or generate_experiment_data(PlatformConfig())
    config = base_config or DetectorConfig(svm_max_training_samples=1000)
    rng = as_generator(config.seed)
    regressions = train_regressions(data.sim_pcms, data.sim_fingerprints, config)
    s4 = build_s4(regressions, data.sim_pcms, data.dutt_pcms, config, rng=rng)

    def region_from(s5, label):
        region = TrustedRegion(
            name=label,
            nu=config.svm_nu,
            gamma=config.svm_gamma,
            floor_ratio=config.floor_ratio,
            noise_floor_rel=config.noise_floor_rel,
            max_training_samples=config.svm_max_training_samples,
            seed=rng,
        ).fit(s5)
        return _evaluate_region(region, data, label)

    rows = [region_from(tail_enhance(s4, config, rng=rng), "B5 via adaptive KDE (paper)")]
    gpd = GpdTailEnhancer().fit(s4)
    rows.append(region_from(gpd.sample(config.kde_samples, rng=rng), "B5 via GPD radial tail"))
    return rows


def format_rows(rows: List[AblationRow], title: str) -> str:
    """Render an ablation table."""
    lines = [title, "-" * len(title)]
    lines.extend(row.format() for row in rows)
    return "\n".join(lines)
