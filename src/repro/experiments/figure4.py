"""Reproduction of Figure 4: PCA views of the fabricated and S1..S5 sets.

The paper projects each six-dimensional population on the top three
principal components of the fabricated devices and inspects the overlap
between the synthetic golden sets (purple dots) and the measured Trojan-free
(blue squares) / Trojan-infested (green x / black triangle) populations.

Without a display we report the quantitative geometry behind each panel:
explained variance of the top components, centroid distances, and the
fraction of the measured Trojan-free cloud covered by each synthetic set
(nearest-neighbour coverage in whitened space).  These numbers tell the
same story the figure does: S1/S2 sit far from silicon, S3 partially
overlaps, S4 improves, S5 nearly coincides with the Trojan-free cloud while
staying clear of the Trojans.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.pipeline import GoldenChipFreeDetector
from repro.experiments.platformcfg import (
    ExperimentData,
    PlatformConfig,
    generate_experiment_data,
)
from repro.stats.pca import PrincipalComponentAnalysis
from repro.stats.preprocessing import Whitener


@dataclass
class PanelGeometry:
    """Quantitative description of one Figure 4 panel (one dataset)."""

    name: str
    n_points: int
    centroid_distance_tf: float      # dataset centroid -> TF silicon centroid
    centroid_distance_ti: float      # dataset centroid -> TI silicon centroid
    tf_coverage: float               # fraction of TF devices inside dataset reach
    ti_coverage: float               # fraction of TI devices inside dataset reach
    projection: np.ndarray           # (n, 3) top-3 PC scores

    def row(self) -> str:
        """One formatted summary line."""
        return (
            f"{self.name:<3s} n={self.n_points:<7d} "
            f"d(TF)={self.centroid_distance_tf:7.3f}  "
            f"d(TI)={self.centroid_distance_ti:7.3f}  "
            f"cover(TF)={self.tf_coverage:5.1%}  cover(TI)={self.ti_coverage:5.1%}"
        )


@dataclass
class Figure4Result:
    """All panels of the reproduced figure plus the reference projection."""

    panels: Dict[str, PanelGeometry]
    explained_variance_ratio: np.ndarray
    tf_projection: np.ndarray
    t1_projection: np.ndarray
    t2_projection: np.ndarray

    def format(self) -> str:
        """Human-readable summary of every panel."""
        lines = [
            "Figure 4 geometry (distances/coverage in whitened units of the "
            "TF silicon cloud)",
            f"top-3 PC explained variance: "
            f"{np.round(self.explained_variance_ratio, 4).tolist()}",
        ]
        for name in ("S1", "S2", "S3", "S4", "S5"):
            if name in self.panels:
                lines.append(self.panels[name].row())
        return "\n".join(lines)


def _coverage(population: np.ndarray, points: np.ndarray, radius: float) -> float:
    """Fraction of ``points`` within ``radius`` of any population sample."""
    if population.shape[0] == 0 or points.shape[0] == 0:
        return 0.0
    # Memory guard: coverage needs only the nearest neighbour, chunk the
    # population axis for the 10^5-sample KDE sets.
    best = np.full(points.shape[0], np.inf)
    chunk = 4000
    for start in range(0, population.shape[0], chunk):
        block = population[start:start + chunk]
        d2 = (
            np.sum(points**2, axis=1)[:, None]
            + np.sum(block**2, axis=1)[None, :]
            - 2.0 * points @ block.T
        )
        best = np.minimum(best, d2.min(axis=1))
    return float(np.mean(np.sqrt(np.maximum(best, 0.0)) <= radius))


def run_figure4(
    platform: Optional[PlatformConfig] = None,
    detector_config: Optional[DetectorConfig] = None,
    data: Optional[ExperimentData] = None,
    coverage_radius: float = 1.0,
) -> Figure4Result:
    """Build the datasets and compute each panel's geometry."""
    if data is None:
        data = generate_experiment_data(platform or PlatformConfig())
    detector = GoldenChipFreeDetector(detector_config or DetectorConfig())
    detector.fit_premanufacturing(data.sim_pcms, data.sim_fingerprints)
    detector.fit_silicon(data.dutt_pcms)

    names = np.asarray(data.trojan_names)
    tf = data.dutt_fingerprints[~data.infested]
    t1 = data.dutt_fingerprints[names == "trojan-I-amplitude"]
    t2 = data.dutt_fingerprints[names == "trojan-II-frequency"]
    ti = data.dutt_fingerprints[data.infested]

    # Reference frames: PCA of all fabricated devices for the projections
    # (as in the paper's panel (a)); whitened TF cloud for geometry numbers.
    pca = PrincipalComponentAnalysis(n_components=3).fit(data.dutt_fingerprints)
    whitener = Whitener(floor_ratio=detector.config.floor_ratio).fit(tf)

    tf_w = whitener.transform(tf)
    ti_w = whitener.transform(ti)
    tf_centroid = tf_w.mean(axis=0)
    ti_centroid = ti_w.mean(axis=0)

    panels = {}
    for name in detector.datasets.names():
        dataset = detector.datasets[name]
        ds_w = whitener.transform(dataset)
        centroid = ds_w.mean(axis=0)
        panels[name] = PanelGeometry(
            name=name,
            n_points=dataset.shape[0],
            centroid_distance_tf=float(np.linalg.norm(centroid - tf_centroid)),
            centroid_distance_ti=float(np.linalg.norm(centroid - ti_centroid)),
            tf_coverage=_coverage(ds_w, tf_w, coverage_radius),
            ti_coverage=_coverage(ds_w, ti_w, coverage_radius),
            projection=pca.transform(dataset),
        )

    return Figure4Result(
        panels=panels,
        explained_variance_ratio=pca.explained_variance_ratio_,
        tf_projection=pca.transform(tf),
        t1_projection=pca.transform(t1),
        t2_projection=pca.transform(t2),
    )


def main(argv=None) -> int:
    """CLI entry point: print the reproduced Figure 4 geometry."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=16, help="experiment seed")
    parser.add_argument(
        "--kde-samples", type=int, default=100_000, help="tail-enhanced set size (M')"
    )
    args = parser.parse_args(argv)
    result = run_figure4(
        platform=PlatformConfig(seed=args.seed),
        detector_config=DetectorConfig(kde_samples=args.kde_samples),
    )
    print(result.format())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
