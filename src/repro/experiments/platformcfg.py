"""Assembly of the full experimentation platform (paper Section 3.1).

One call to :func:`generate_experiment_data` produces everything the
detector consumes:

* the trusted Spice deck and a noise-free Monte Carlo campaign over it
  (``n`` golden devices, their PCMs and fingerprints);
* a foundry whose operating point has drifted from the deck, fabricating
  40 chips in one lot;
* three design versions per chip — Trojan-free, Trojan I (amplitude leak),
  Trojan II (frequency leak) — measured on a noisy silicon bench with the
  same frozen stimuli as the simulation: 120 DUTTs, 40 TF + 80 TI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import cache as artifact_cache
from repro.circuits.montecarlo import MonteCarloEngine
from repro.circuits.spicemodel import SpiceDeck, default_spice_deck
from repro.obs.trace import span
from repro.process.parameters import OperatingPointShift
from repro.silicon.foundry import Foundry
from repro.silicon.pcm import PCMSuite
from repro.testbed.campaign import FingerprintCampaign
from repro.trojans.amplitude import AmplitudeModulationTrojan
from repro.trojans.frequency import FrequencyModulationTrojan
from repro.utils.rng import spawn_children


@dataclass
class PlatformConfig:
    """Knobs of the synthetic silicon experiment.

    Parameters
    ----------
    nm:
        Number of side-channel fingerprints (transmitted ciphertext blocks).
    n_chips:
        Fabricated chips; each hosts three design versions (TF, T-I, T-II),
        so the DUTT population is ``3 * n_chips`` devices.
    n_monte_carlo:
        Simulated golden devices.
    drift_scale:
        Magnitude of the foundry operating-point drift relative to
        :meth:`OperatingPointShift.typical_drift` (0 = silicon matches the
        deck exactly).
    rf_model_error_scale:
        Magnitude of the systematic RF extraction error of the design kit
        (the Spice model tracks digital structures but misestimates the
        large analog layouts; see
        :class:`~repro.silicon.foundry.FabricatedDie`).  1.0 means the
        silicon PA drives ~5 % more current than any simulation predicts
        and the pulse shaper runs ~4 % heavy on parasitics.
    trojan1_depth / trojan2_depth:
        Modulation depths of the amplitude / frequency Trojans.
    sim_noise:
        Relative jitter of simulated measurements: post-layout Monte Carlo
        outputs carry extraction and numerical-convergence noise comparable
        to bench instrument noise.  Modelled as multiplicative gain noise on
        the simulated fingerprint and PCM readings.
    pcm_noise:
        Relative gain error of the silicon PCM (e-test) measurement.
        Production kerf measurements are single-shot with limited timing
        resolution — considerably noisier than the averaged RF power
        measurements of the fingerprint bench.
    extended_pcms:
        Shorthand for ``pcm_suite_name="extended"`` (kept for convenience).
    pcm_suite_name:
        PCM suite: ``"paper"`` (one path delay), ``"extended"`` (+ ring
        oscillator) or ``"full"`` (+ digital fmax) — ablation A3.
    n_lots:
        Fabrication lots the chips are spread over (paper: 1).
    seed:
        Master seed of the whole experiment.
    n_jobs:
        Worker processes for the Monte Carlo run and the DUTT measurement
        sweep (clamped to the CPU count; negative = joblib convention).
        Results are bit-identical for every value.
    engine:
        Population evaluation engine: ``"batched"`` (default) simulates and
        measures whole populations as array programs; ``"loop"`` is the
        device-at-a-time reference.  The two produce bit-identical data;
        the engine still enters the cache keys so each engine's artifacts
        stay independently addressable (a cached loop run can never mask a
        batched-engine regression).
    """

    nm: int = 6
    n_chips: int = 40
    n_monte_carlo: int = 100
    drift_scale: float = 0.45
    rf_model_error_scale: float = 0.35
    trojan1_depth: float = 0.17
    trojan2_depth: float = 0.17
    sim_noise: float = 0.0015
    pcm_noise: float = 0.05
    extended_pcms: bool = False
    pcm_suite_name: str = "paper"
    n_lots: int = 1
    seed: int = 16
    n_jobs: int = 1
    engine: str = "batched"

    def __post_init__(self):
        if self.nm < 1:
            raise ValueError(f"nm must be positive, got {self.nm}")
        if self.n_chips < 2:
            raise ValueError(f"n_chips must be >= 2, got {self.n_chips}")
        if self.n_monte_carlo < 10:
            raise ValueError(f"n_monte_carlo must be >= 10, got {self.n_monte_carlo}")
        if self.drift_scale < 0:
            raise ValueError(f"drift_scale must be non-negative, got {self.drift_scale}")
        if self.pcm_suite_name not in ("paper", "extended", "full"):
            raise ValueError(
                f"pcm_suite_name must be 'paper', 'extended' or 'full', "
                f"got {self.pcm_suite_name!r}"
            )
        if not isinstance(self.n_jobs, int) or isinstance(self.n_jobs, bool):
            raise ValueError(f"n_jobs must be an integer, got {self.n_jobs!r}")
        if self.engine not in ("batched", "loop"):
            raise ValueError(
                f"engine must be 'batched' or 'loop', got {self.engine!r}"
            )


@dataclass
class ExperimentData:
    """All measurements of one experiment run.

    DUTT arrays are ordered: ``n_chips`` Trojan-free devices, then
    ``n_chips`` Trojan-I devices, then ``n_chips`` Trojan-II devices.
    """

    sim_pcms: np.ndarray
    sim_fingerprints: np.ndarray
    dutt_pcms: np.ndarray
    dutt_fingerprints: np.ndarray
    infested: np.ndarray
    trojan_names: List[str] = field(default_factory=list)
    campaign: Optional[FingerprintCampaign] = None

    @property
    def n_devices(self) -> int:
        """Total number of devices under Trojan test."""
        return int(self.dutt_fingerprints.shape[0])

    def trojan_free_fingerprints(self) -> np.ndarray:
        """Fingerprints of the Trojan-free DUTTs."""
        return self.dutt_fingerprints[~self.infested]

    def infested_fingerprints(self, trojan_name: Optional[str] = None) -> np.ndarray:
        """Fingerprints of infested DUTTs, optionally one Trojan type."""
        mask = self.infested.copy()
        if trojan_name is not None:
            names = np.asarray(self.trojan_names)
            mask &= names == trojan_name
        return self.dutt_fingerprints[mask]


def build_deck(config: PlatformConfig) -> SpiceDeck:
    """The trusted simulation deck used by the experiment."""
    _ = config
    return default_spice_deck()


def rf_model_error(scale: float) -> dict:
    """Structure-specific silicon-vs-model discrepancy of the RF chain."""
    return {
        "uwb_pa": {"mobility_n": +0.05 * scale},
        "uwb_shaper": {"cpar": +0.04 * scale},
    }


def build_foundry(config: PlatformConfig, deck: SpiceDeck, seed) -> Foundry:
    """The drifted foundry that fabricates the DUTT population."""
    return Foundry(
        deck_nominal=deck.nominal,
        variation=deck.variation,
        shift=OperatingPointShift.typical_drift(scale=config.drift_scale),
        analog_model_error=rf_model_error(config.rf_model_error_scale),
        seed=seed,
    )


def generate_experiment_data(config: Optional[PlatformConfig] = None) -> ExperimentData:
    """Run the full synthetic experiment and return all measurements.

    Both expensive halves — the Monte Carlo sweep and the silicon DUTT
    measurement — go through the artifact cache (see :mod:`repro.cache`;
    off by default).  Every random stream below is an independent child of
    the master seed, so serving one half from cache leaves the other half's
    stream — and therefore its output — bit-identical to a cold run.
    ``n_jobs`` never enters a cache key: results match for any worker count.
    """
    config = config or PlatformConfig()

    def stage(name, parts, compute):
        # An unseeded run is not reproducible, hence not addressable: bypass.
        if config.seed is None:
            return compute()
        return artifact_cache.stage_cached(name, parts, compute)

    with span("platform.generate_data", n_chips=config.n_chips,
              n_monte_carlo=config.n_monte_carlo, seed=config.seed,
              engine=config.engine):
        rng_campaign, rng_mc, rng_foundry, rng_bench = spawn_children(config.seed, 4)

        suite_name = config.pcm_suite_name
        if config.extended_pcms and suite_name == "paper":
            suite_name = "extended"
        pcm_suite = {
            "paper": PCMSuite.paper_default,
            "extended": PCMSuite.extended,
            "full": PCMSuite.full,
        }[suite_name]()
        deck = build_deck(config)

        # The campaign is cheap and its stimuli feed both halves, so it is
        # always built live (keeping rng_campaign consumption identical on
        # warm and cold paths).
        sim_campaign = FingerprintCampaign.random_stimuli(
            nm=config.nm, seed=rng_campaign, noisy_bench=False, pcm_suite=pcm_suite
        )

        # ---- pre-manufacturing: Monte Carlo over the deck.  The simulator
        # has no bench instruments, but post-layout MC output carries
        # numerical / extraction jitter; modelled as small multiplicative
        # noise. ----
        def run_monte_carlo() -> dict:
            engine = MonteCarloEngine(
                deck, sim_campaign, numerical_noise=config.sim_noise
            )
            mc = engine.run(config.n_monte_carlo, seed=rng_mc,
                            n_jobs=config.n_jobs, engine=config.engine)
            return {"pcms": mc.pcms, "fingerprints": mc.fingerprints}

        mc_data = stage(
            "mc",
            {
                "nm": config.nm,
                "n_monte_carlo": config.n_monte_carlo,
                "sim_noise": config.sim_noise,
                "pcm_suite": suite_name,
                "seed": config.seed,
                "engine": config.engine,
            },
            run_monte_carlo,
        )

        # ---- silicon: fabrication at the drifted operating point, then the
        # bench sweep with the same frozen stimuli and noisy instruments ----
        bench = sim_campaign.silicon_bench(seed=rng_bench, pcm_noise=config.pcm_noise)

        def run_silicon() -> dict:
            foundry = build_foundry(config, deck, seed=rng_foundry)
            dies = foundry.fabricate(config.n_chips, n_lots=config.n_lots)
            trojans = [
                (None, "TF"),
                (AmplitudeModulationTrojan(depth=config.trojan1_depth), "T1"),
                (FrequencyModulationTrojan(depth=config.trojan2_depth), "T2"),
            ]
            devices = []
            for trojan, version in trojans:
                devices.extend(
                    bench.measure_population(
                        dies, trojan=trojan, version=version,
                        n_jobs=config.n_jobs, engine=config.engine,
                    )
                )
            return {
                "pcms": np.vstack([d.pcms for d in devices]),
                "fingerprints": np.vstack([d.fingerprint for d in devices]),
                "infested": np.array([d.infested for d in devices], dtype=bool),
                "trojan_names": [d.trojan_name for d in devices],
            }

        dutt = stage(
            "dutt",
            {
                "nm": config.nm,
                "n_chips": config.n_chips,
                "drift_scale": config.drift_scale,
                "rf_model_error_scale": config.rf_model_error_scale,
                "trojan1_depth": config.trojan1_depth,
                "trojan2_depth": config.trojan2_depth,
                "pcm_noise": config.pcm_noise,
                "pcm_suite": suite_name,
                "n_lots": config.n_lots,
                "seed": config.seed,
                "engine": config.engine,
            },
            run_silicon,
        )

    return ExperimentData(
        sim_pcms=mc_data["pcms"],
        sim_fingerprints=mc_data["fingerprints"],
        dutt_pcms=dutt["pcms"],
        dutt_fingerprints=dutt["fingerprints"],
        infested=dutt["infested"],
        trojan_names=list(dutt["trojan_names"]),
        campaign=bench,
    )
