"""Operating-curve analysis: the FP/FN trade-off of a trusted boundary.

The paper evaluates each boundary at its natural operating point (decision
score >= 0).  Sweeping the decision threshold instead traces the full
trade-off between Trojan escapes (FP) and false alarms (FN) and yields the
threshold-free separation quality of the fingerprint itself — an extension
experiment for the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.boundaries import TrustedRegion
from repro.utils.validation import check_2d


@dataclass(frozen=True)
class OperatingPoint:
    """One threshold on a boundary's decision scores."""

    threshold: float
    fp_count: int
    fn_count: int
    n_infested: int
    n_trojan_free: int

    @property
    def fp_rate(self) -> float:
        return self.fp_count / self.n_infested if self.n_infested else 0.0

    @property
    def fn_rate(self) -> float:
        return self.fn_count / self.n_trojan_free if self.n_trojan_free else 0.0


@dataclass
class OperatingCurve:
    """The swept trade-off plus summary statistics."""

    points: List[OperatingPoint]
    auc: float
    natural_point: OperatingPoint

    def zero_escape_fn(self) -> int:
        """Smallest FN achievable with zero Trojan escapes."""
        eligible = [p.fn_count for p in self.points if p.fp_count == 0]
        return min(eligible) if eligible else self.points[0].n_trojan_free

    def format(self) -> str:
        lines = [
            f"operating curve: AUC = {self.auc:.4f}",
            f"natural threshold 0: FP {self.natural_point.fp_count}/"
            f"{self.natural_point.n_infested}, FN {self.natural_point.fn_count}/"
            f"{self.natural_point.n_trojan_free}",
            f"best FN at zero escapes: {self.zero_escape_fn()}/"
            f"{self.natural_point.n_trojan_free}",
        ]
        return "\n".join(lines)


def _point(scores, infested, threshold: float) -> OperatingPoint:
    passed = scores >= threshold
    return OperatingPoint(
        threshold=float(threshold),
        fp_count=int(np.sum(passed & infested)),
        fn_count=int(np.sum(~passed & ~infested)),
        n_infested=int(infested.sum()),
        n_trojan_free=int((~infested).sum()),
    )


def operating_curve(region: TrustedRegion, fingerprints, infested) -> OperatingCurve:
    """Sweep the decision threshold of ``region`` over a labelled population.

    The AUC is the probability that a random Trojan-free device scores above
    a random infested one (Mann-Whitney form); 1.0 means the two populations
    are perfectly separated by the boundary's score.
    """
    fingerprints = check_2d(fingerprints, "fingerprints")
    infested = np.asarray(infested, dtype=bool)
    if infested.shape != (fingerprints.shape[0],):
        raise ValueError("infested must label every fingerprint row")
    scores = region.decision_scores(fingerprints)

    thresholds = np.concatenate([[-np.inf], np.unique(scores), [np.inf]])
    points = [_point(scores, infested, t) for t in thresholds]

    clean_scores = scores[~infested]
    trojan_scores = scores[infested]
    if clean_scores.size and trojan_scores.size:
        comparisons = clean_scores[:, None] - trojan_scores[None, :]
        auc = float((comparisons > 0).mean() + 0.5 * (comparisons == 0).mean())
    else:
        auc = float("nan")

    return OperatingCurve(
        points=points,
        auc=auc,
        natural_point=_point(scores, infested, 0.0),
    )
