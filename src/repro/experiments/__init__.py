"""Reproduction experiments: Table 1, Figure 4, and ablations.

:mod:`repro.experiments.platformcfg` assembles the full synthetic
experimentation platform (deck, foundry, Trojans, measurement campaigns)
and generates the paper's data: 100 Monte Carlo golden devices plus 120
fabricated DUTTs (40 Trojan-free, 40 Trojan I, 40 Trojan II).
"""

from repro.experiments.platformcfg import (
    ExperimentData,
    PlatformConfig,
    generate_experiment_data,
)
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.roc import OperatingCurve, operating_curve

__all__ = [
    "PlatformConfig",
    "ExperimentData",
    "generate_experiment_data",
    "run_table1",
    "Table1Result",
    "run_figure4",
    "Figure4Result",
    "operating_curve",
    "OperatingCurve",
]
