"""Reproduction of Table 1: FP/FN of boundaries B1..B5 over 120 DUTTs.

Run as a module (``python -m repro.experiments.table1``) or through the
``repro-table1`` console script.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import DetectorConfig
from repro.core.metrics import DetectionMetrics
from repro.core.pipeline import GoldenChipFreeDetector
from repro.core.report import format_table1
from repro.experiments.platformcfg import (
    ExperimentData,
    PlatformConfig,
    generate_experiment_data,
)


@dataclass
class Table1Result:
    """Everything produced by one Table 1 run."""

    metrics: Dict[str, DetectionMetrics]
    detector: GoldenChipFreeDetector
    data: ExperimentData

    def format(self) -> str:
        """Render the metrics like the paper's Table 1."""
        return format_table1(self.metrics, title="Trojan detection metrics per data set")

    def matches_paper_shape(self) -> bool:
        """Check the qualitative result shape the paper reports.

        * no Trojan escapes any boundary (FP = 0 everywhere);
        * simulation-only boundaries reject (nearly) every Trojan-free
          device: FN(B1) >= 90 %, FN(B2) >= 75 % of the TF population;
        * the un-enhanced silicon-anchored boundaries do not beat the final
          one: FN(B3) >= FN(B4) >= FN(B5), with a strict gap B3 -> B5;
        * the final boundary is near-golden: FN(B5) <= 20 % of the
          Trojan-free population.

        See EXPERIMENTS.md for the deviations from the paper's absolute
        numbers (most notably the depth of the B3/B4 rungs).
        """
        m = self.metrics
        n_free = m["B1"].n_trojan_free
        return (
            all(metric.fp_count == 0 for metric in m.values())
            and m["B1"].fn_count >= 0.9 * n_free
            and m["B2"].fn_count >= 0.75 * n_free
            and m["B3"].fn_count >= m["B4"].fn_count >= m["B5"].fn_count
            and m["B3"].fn_count > m["B5"].fn_count
            and m["B5"].fn_count <= 0.2 * n_free
        )


def run_table1(
    platform: Optional[PlatformConfig] = None,
    detector_config: Optional[DetectorConfig] = None,
    data: Optional[ExperimentData] = None,
) -> Table1Result:
    """Run the full Table 1 experiment.

    Parameters
    ----------
    platform:
        Synthetic platform configuration (ignored when ``data`` is given).
    detector_config:
        Detector tunables.
    data:
        Pre-generated experiment data, to share one silicon population
        across several detector configurations (ablations).
    """
    if data is None:
        data = generate_experiment_data(platform or PlatformConfig())
    detector = GoldenChipFreeDetector(detector_config or DetectorConfig())
    detector.fit_premanufacturing(data.sim_pcms, data.sim_fingerprints)
    detector.fit_silicon(data.dutt_pcms)
    metrics = detector.evaluate(data.dutt_fingerprints, data.infested)
    return Table1Result(metrics=metrics, detector=detector, data=data)


def main(argv=None) -> int:
    """CLI entry point: print the reproduced Table 1."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=16, help="experiment seed")
    parser.add_argument("--chips", type=int, default=40, help="fabricated chips")
    parser.add_argument(
        "--kde-samples", type=int, default=100_000, help="tail-enhanced set size (M')"
    )
    args = parser.parse_args(argv)
    result = run_table1(
        platform=PlatformConfig(seed=args.seed, n_chips=args.chips),
        detector_config=DetectorConfig(kde_samples=args.kde_samples),
    )
    print(result.format())
    print()
    print(f"matches paper shape: {result.matches_paper_shape()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
