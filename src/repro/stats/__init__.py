"""Statistical substrate: kernels, QP, KMM, KDE, PCA and preprocessing.

Everything here is implemented from first principles on numpy/scipy — the
environment has no scikit-learn — and each algorithm corresponds to a method
named in the paper: kernel mean matching (Section 2.4), adaptive
Epanechnikov KDE tail modeling (Section 2.5), PCA (Section 3.2) and the
preprocessing the boundary learner relies on.
"""

from repro.stats.evt import GpdTailEnhancer
from repro.stats.kde import AdaptiveKde, EpanechnikovKde, epanechnikov_bandwidth
from repro.stats.kernels import (
    linear_kernel,
    median_heuristic_gamma,
    polynomial_kernel,
    rbf_kernel,
)
from repro.stats.kmm import KernelMeanMatcher, KmmProblem, importance_resample
from repro.stats.mmd import mmd_permutation_test, mmd_squared
from repro.stats.pca import PrincipalComponentAnalysis
from repro.stats.preprocessing import StandardScaler, Whitener
from repro.stats.qp import solve_qp

__all__ = [
    "rbf_kernel",
    "linear_kernel",
    "polynomial_kernel",
    "median_heuristic_gamma",
    "solve_qp",
    "KernelMeanMatcher",
    "KmmProblem",
    "importance_resample",
    "mmd_squared",
    "mmd_permutation_test",
    "EpanechnikovKde",
    "AdaptiveKde",
    "GpdTailEnhancer",
    "epanechnikov_bandwidth",
    "PrincipalComponentAnalysis",
    "StandardScaler",
    "Whitener",
]
