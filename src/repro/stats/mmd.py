"""Maximum Mean Discrepancy: the distribution-match diagnostic behind KMM.

KMM minimizes the distance between kernel mean embeddings; MMD is that
distance itself.  The library uses it to *verify* calibration quality: the
weighted/resampled simulated PCM population should sit much closer (in MMD)
to the silicon PCMs than the raw simulation does.  Exposed as a public
diagnostic because any golden chip-free deployment should check it before
trusting boundary B4/B5.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.stats.kernels import median_heuristic_gamma, rbf_kernel
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_2d


def mmd_squared(x, y, gamma: Optional[float] = None) -> float:
    """Unbiased estimate of the squared MMD between two samples.

    MMD^2 = E[k(x,x')] + E[k(y,y')] - 2 E[k(x,y)], with the diagonal terms
    excluded from the within-sample means (the U-statistic form, which can
    be slightly negative for close distributions).
    """
    x = check_2d(x, "x")
    y = check_2d(y, "y")
    if x.shape[1] != y.shape[1]:
        raise ValueError(
            f"x and y must share features, got {x.shape[1]} and {y.shape[1]}"
        )
    if x.shape[0] < 2 or y.shape[0] < 2:
        raise ValueError("both samples need at least 2 points")
    if gamma is None:
        gamma = median_heuristic_gamma(np.vstack([x, y]))

    kxx = rbf_kernel(x, gamma=gamma)
    kyy = rbf_kernel(y, gamma=gamma)
    kxy = rbf_kernel(x, y, gamma=gamma)
    n, m = x.shape[0], y.shape[0]
    xx = (kxx.sum() - np.trace(kxx)) / (n * (n - 1))
    yy = (kyy.sum() - np.trace(kyy)) / (m * (m - 1))
    xy = kxy.mean()
    return float(xx + yy - 2.0 * xy)


def mmd_permutation_test(
    x,
    y,
    n_permutations: int = 200,
    gamma: Optional[float] = None,
    rng: SeedLike = None,
) -> tuple:
    """Permutation test of H0: x and y come from the same distribution.

    Returns ``(mmd2, p_value)``.  A small p-value means the two populations
    are distinguishable — e.g. silicon PCMs vs an uncalibrated simulation.
    """
    x = check_2d(x, "x")
    y = check_2d(y, "y")
    if n_permutations < 10:
        raise ValueError(f"n_permutations must be >= 10, got {n_permutations}")
    if gamma is None:
        gamma = median_heuristic_gamma(np.vstack([x, y]))

    observed = mmd_squared(x, y, gamma=gamma)
    pooled = np.vstack([x, y])
    n = x.shape[0]
    gen = as_generator(rng)
    exceed = 0
    for _ in range(n_permutations):
        permutation = gen.permutation(pooled.shape[0])
        shuffled = pooled[permutation]
        statistic = mmd_squared(shuffled[:n], shuffled[n:], gamma=gamma)
        if statistic >= observed:
            exceed += 1
    p_value = (exceed + 1) / (n_permutations + 1)
    return observed, float(p_value)
