"""Feature preprocessing: standardization and (floored) whitening.

Side-channel fingerprints are strongly correlated — all six block powers
scale with the same device gain — so the informative structure (a Trojan's
block-dependent distortion) lives in directions whose variance is orders of
magnitude below the dominant process direction.  The boundary learner and
the KDE tail enhancer therefore operate in *whitened* coordinates.

Whitening a near-degenerate population is ill-posed (tiny eigenvalues blow
up), so :class:`Whitener` floors every eigenvalue — relatively, at
``floor_ratio`` times the largest one, and/or absolutely at ``floor_sigma``
squared.  The floor sets the minimum feature-space scale the trusted region
resolves: directions whose variation is below the floor are treated as "no
broader than the floor", which keeps the boundary tight against
Trojan-induced off-manifold displacement while tolerating bench measurement
noise (the natural choice for ``floor_sigma`` is a small multiple of the
instruments' noise sigma).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d


class StandardScaler:
    """Per-feature standardization: (x - mean) / std.

    Features with zero variance are scaled by 1 (left centred but not
    divided), so constant features do not produce NaNs.
    """

    def __init__(self):
        self.mean_ = None
        self.scale_ = None

    def fit(self, data) -> "StandardScaler":
        """Learn per-feature mean and standard deviation."""
        data = check_2d(data, "data")
        self.mean_ = data.mean(axis=0)
        scale = data.std(axis=0, ddof=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def _check_fitted(self):
        if self.mean_ is None:
            raise RuntimeError("StandardScaler must be fitted before use")

    def transform(self, data) -> np.ndarray:
        """Standardize ``data`` with the learned statistics."""
        self._check_fitted()
        data = check_2d(data, "data")
        if data.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"data has {data.shape[1]} features, scaler was fitted on {self.mean_.shape[0]}"
            )
        return (data - self.mean_) / self.scale_

    def fit_transform(self, data) -> np.ndarray:
        """Fit and transform in one step."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data) -> np.ndarray:
        """Map standardized coordinates back to the original space."""
        self._check_fitted()
        data = check_2d(data, "data")
        return data * self.scale_ + self.mean_


class Whitener:
    """PCA whitening with an eigenvalue floor.

    Transforms data to coordinates where the training covariance is the
    identity, except that eigenvalues are floored at
    ``floor_ratio * max(eigenvalue)`` before inversion.  With
    ``floor_ratio=1`` this degenerates to isotropic scaling by the dominant
    sigma; with ``floor_ratio -> 0`` it approaches exact whitening.

    Parameters
    ----------
    floor_ratio:
        Minimum eigenvalue, as a fraction of the largest eigenvalue.
    floor_sigma:
        Absolute minimum standard deviation per component (same units as the
        data).  Typically a small multiple of the measurement-noise sigma.
    """

    def __init__(self, floor_ratio: float = 1e-4, floor_sigma: float = 0.0):
        if not 0 < floor_ratio <= 1:
            raise ValueError(f"floor_ratio must be in (0, 1], got {floor_ratio}")
        if floor_sigma < 0:
            raise ValueError(f"floor_sigma must be non-negative, got {floor_sigma}")
        self.floor_ratio = float(floor_ratio)
        self.floor_sigma = float(floor_sigma)
        self.mean_ = None
        self.components_ = None          # (d, d) eigenvectors in rows
        self.scales_ = None              # (d,) floored standard deviations per component

    def fit(self, data) -> "Whitener":
        """Learn the whitening transform from ``data``."""
        data = check_2d(data, "data")
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        cov = centered.T @ centered / max(1, data.shape[0] - 1)
        eigvals, eigvecs = np.linalg.eigh(cov)
        order = np.argsort(eigvals)[::-1]
        eigvals = eigvals[order]
        eigvecs = eigvecs[:, order]
        top = max(eigvals[0], 0.0)
        if top <= 0.0 and self.floor_sigma <= 0.0:
            # Degenerate population (single point / constant data): identity.
            self.components_ = np.eye(data.shape[1])
            self.scales_ = np.ones(data.shape[1])
            return self
        floor = max(self.floor_ratio * top, self.floor_sigma**2)
        floored = np.maximum(eigvals, floor)
        self.components_ = eigvecs.T
        self.scales_ = np.sqrt(floored)
        return self

    def _check_fitted(self):
        if self.mean_ is None:
            raise RuntimeError("Whitener must be fitted before use")

    def transform(self, data) -> np.ndarray:
        """Project ``data`` to whitened coordinates."""
        self._check_fitted()
        data = check_2d(data, "data")
        if data.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"data has {data.shape[1]} features, whitener was fitted on "
                f"{self.mean_.shape[0]}"
            )
        return (data - self.mean_) @ self.components_.T / self.scales_

    def fit_transform(self, data) -> np.ndarray:
        """Fit and transform in one step."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data) -> np.ndarray:
        """Map whitened coordinates back to the original space."""
        self._check_fitted()
        data = check_2d(data, "data")
        return (data * self.scales_) @ self.components_ + self.mean_

    def to_state(self) -> dict:
        """Codec state of the fitted transform (see :mod:`repro.cache.codec`)."""
        self._check_fitted()
        return {
            "params": {
                "floor_ratio": self.floor_ratio,
                "floor_sigma": self.floor_sigma,
            },
            "mean": self.mean_,
            "components": self.components_,
            "scales": self.scales_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Whitener":
        """Rebuild a fitted transform from :meth:`to_state` output."""
        model = cls(**state["params"])
        model.mean_ = np.asarray(state["mean"], dtype=float)
        model.components_ = np.asarray(state["components"], dtype=float)
        model.scales_ = np.asarray(state["scales"], dtype=float)
        return model
