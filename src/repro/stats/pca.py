"""Principal Component Analysis via SVD.

Used for the paper's Figure 4: the six-dimensional fingerprint populations
are projected on their top three principal components for visualization and
geometry summaries.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_2d


class PrincipalComponentAnalysis:
    """Exact PCA through the thin SVD of the centred data matrix.

    Parameters
    ----------
    n_components:
        Number of components to keep; ``None`` keeps ``min(n, d)``.
    """

    def __init__(self, n_components: Optional[int] = None):
        if n_components is not None and n_components <= 0:
            raise ValueError(f"n_components must be positive, got {n_components}")
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, data) -> "PrincipalComponentAnalysis":
        """Learn the principal axes of ``data`` (rows = samples)."""
        data = check_2d(data, "data")
        n, d = data.shape
        k = min(n, d) if self.n_components is None else min(self.n_components, min(n, d))
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        _, singular, vt = np.linalg.svd(centered, full_matrices=False)
        variance = singular**2 / max(1, n - 1)
        total = variance.sum()
        self.components_ = vt[:k]
        self.explained_variance_ = variance[:k]
        self.explained_variance_ratio_ = (
            variance[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def _check_fitted(self):
        if self.components_ is None:
            raise RuntimeError("PCA must be fitted before use")

    def transform(self, data) -> np.ndarray:
        """Project ``data`` on the fitted principal axes."""
        self._check_fitted()
        data = check_2d(data, "data")
        if data.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"data has {data.shape[1]} features, PCA was fitted on {self.mean_.shape[0]}"
            )
        return (data - self.mean_) @ self.components_.T

    def fit_transform(self, data) -> np.ndarray:
        """Fit and project in one step."""
        return self.fit(data).transform(data)

    def inverse_transform(self, scores) -> np.ndarray:
        """Reconstruct (an approximation of) the original data from scores."""
        self._check_fitted()
        scores = check_2d(scores, "scores")
        return scores @ self.components_ + self.mean_
