"""Epanechnikov kernel density estimation and tail-enhanced sampling.

Implements the paper's Section 2.5 (following Silverman 1986):

* the fixed-bandwidth multivariate Epanechnikov estimate, Eq. (5)-(6);
* the *adaptive* estimate, Eq. (7)-(9), whose local bandwidths
  ``lambda_i = (f(m_i) / g) ** -alpha`` widen the kernels at the tails;
* sampling of arbitrarily large synthetic populations from the estimate —
  the mechanism that turns 100 Monte Carlo devices into the 10^5-sample
  tail-enhanced datasets S2 and S5.

Fingerprint populations are heavily correlated, so the estimator operates in
whitened coordinates by default (Silverman's pre-whitening advice), using
the floored :class:`~repro.stats.preprocessing.Whitener`.  The eigenvalue
floor bounds how much tail enhancement can inflate near-degenerate
directions — exactly the directions in which a Trojan displaces a device.

Density evaluation is fully vectorized: queries are processed in blocks of
pairwise squared distances (one ``(rows, M)`` float64 scratch matrix per
block, bounded by ``max_block_bytes``), which keeps the adaptive pilot
estimate — an ``O(M^2)`` computation — a handful of BLAS calls instead of
``M`` Python iterations.
"""

from __future__ import annotations

import functools
import math
from typing import Optional

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.stats.preprocessing import Whitener
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_2d, check_positive

#: Default scratch budget for one block of pairwise distances (64 MB).
DEFAULT_BLOCK_BYTES = 64 * 1024 * 1024


@functools.lru_cache(maxsize=None)
def unit_ball_volume(d: int) -> float:
    """Volume c_d of the d-dimensional unit sphere (Silverman's c_d).

    Memoized by dimension: the volume appears in every kernel evaluation and
    bandwidth rule, and ``math.gamma`` is far from free in hot loops.
    """
    if d <= 0:
        raise ValueError(f"dimension must be positive, got {d}")
    return float(2.0 * math.pi ** (d / 2.0) / (d * math.gamma(d / 2.0)))


def epanechnikov_kernel_value(t: np.ndarray) -> np.ndarray:
    """Multivariate Epanechnikov kernel Ke(t), Eq. (6), rows of ``t``.

    Ke(t) = (1/2) c_d^-1 (d + 2)(1 - t't)  for t't < 1, else 0.
    """
    t = np.atleast_2d(np.asarray(t, dtype=float))
    d = t.shape[1]
    sq = np.sum(t**2, axis=1)
    value = 0.5 * (d + 2.0) / unit_ball_volume(d) * (1.0 - sq)
    return np.where(sq < 1.0, value, 0.0)


def epanechnikov_bandwidth(n: int, d: int) -> float:
    """Silverman's optimal global bandwidth for unit-covariance data.

    h_opt = A(K) * n^(-1/(d+4)),  A(K) = [8 c_d^-1 (d+4) (2 sqrt(pi))^d]^(1/(d+4))
    (Silverman 1986, Eq. 4.15, Epanechnikov kernel).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if d <= 0:
        raise ValueError(f"d must be positive, got {d}")
    a_k = (8.0 / unit_ball_volume(d) * (d + 4.0) * (2.0 * math.sqrt(math.pi)) ** d) ** (
        1.0 / (d + 4.0)
    )
    return float(a_k * n ** (-1.0 / (d + 4.0)))


def _sample_unit_epanechnikov(count: int, d: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``count`` points from the d-dim Epanechnikov kernel density.

    Rejection from the uniform distribution on the unit ball: a uniform-ball
    radius has density ∝ r^(d-1); accepting with probability (1 - r^2)
    yields the kernel's radial law ∝ r^(d-1)(1 - r^2).

    The accept/reject decision depends only on the radius, so directions are
    drawn *after* rejection and only for the accepted rows — at the
    acceptance rate of 2/(d+2) this skips ~d/(d+2) of the Gaussian draws.
    The output is preallocated and filled batch by batch; each batch is
    sized to the remaining deficit, so no growing ``vstack`` copies occur.
    """
    out = np.empty((count, d))
    filled = 0
    proposals = 0
    while filled < count:
        remaining = count - filled
        # Expected acceptance 2/(d+2); 1.2x head-room keeps iterations low.
        batch = max(64, int(remaining * (d + 2) / 2 * 1.2))
        proposals += batch
        radii = rng.random(batch) ** (1.0 / d)
        keep = rng.random(batch) < (1.0 - radii**2)
        kept = radii[keep]
        take = min(kept.shape[0], remaining)
        if take == 0:
            continue
        directions = rng.standard_normal((take, d))
        norms = np.sqrt(np.einsum("ij,ij->i", directions, directions))
        norms[norms == 0.0] = 1.0
        directions *= (kept[:take] / norms)[:, None]
        out[filled:filled + take] = directions
        filled += take
    if obs_metrics.enabled() and proposals:
        obs_metrics.counter("kde.sampler.proposals").inc(proposals)
        obs_metrics.counter("kde.sampler.accepted").inc(count)
        obs_metrics.histogram("kde.sampler.acceptance_ratio").observe(count / proposals)
    return out


class EpanechnikovKde:
    """Fixed-bandwidth multivariate Epanechnikov KDE (paper Eq. 5).

    Parameters
    ----------
    bandwidth:
        Global bandwidth ``h`` in whitened coordinates; ``None`` selects
        Silverman's rule (:func:`epanechnikov_bandwidth`).
    bandwidth_scale:
        Multiplier on the Silverman bandwidth (ignored when ``bandwidth``
        is given).  Silverman's rule is optimal for unimodal reference
        densities and tends to oversmooth real populations; values below 1
        trade tail reach for fidelity.
    whiten:
        Operate in whitened coordinates (recommended for correlated data).
    floor_ratio / floor_sigma:
        Eigenvalue floor of the internal whitener (relative / absolute);
        bounds tail inflation of near-degenerate directions.
    max_block_bytes:
        Memory budget for one block of the pairwise-distance matrix used by
        density evaluation; larger budgets mean fewer, bigger BLAS calls.
    """

    def __init__(self, bandwidth: Optional[float] = None, bandwidth_scale: float = 1.0,
                 whiten: bool = True, floor_ratio: float = 1e-4,
                 floor_sigma: float = 0.0, max_block_bytes: int = DEFAULT_BLOCK_BYTES):
        if bandwidth is not None:
            check_positive(bandwidth, "bandwidth")
        check_positive(bandwidth_scale, "bandwidth_scale")
        check_positive(max_block_bytes, "max_block_bytes")
        self.bandwidth = bandwidth
        self.bandwidth_scale = float(bandwidth_scale)
        self.whiten = whiten
        self.floor_ratio = floor_ratio
        self.floor_sigma = float(floor_sigma)
        self.max_block_bytes = int(max_block_bytes)
        self._whitener: Optional[Whitener] = None
        self._points: Optional[np.ndarray] = None  # training data, working coords
        self._points_sq: Optional[np.ndarray] = None  # cached row norms ||p_i||^2
        self._h: Optional[float] = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    def fit(self, data) -> "EpanechnikovKde":
        """Fit the estimate on an ``(M, d)`` sample matrix."""
        data = check_2d(data, "data")
        with span("kde.fit", n=int(data.shape[0]), d=int(data.shape[1])) as fit_span:
            if self.whiten:
                self._whitener = Whitener(
                    floor_ratio=self.floor_ratio, floor_sigma=self.floor_sigma
                ).fit(data)
                self._points = self._whitener.transform(data)
            else:
                self._whitener = None
                self._points = data.copy()
            self._points_sq = np.einsum("ij,ij->i", self._points, self._points)
            n, d = self._points.shape
            if self.bandwidth is not None:
                self._h = self.bandwidth
            else:
                self._h = self.bandwidth_scale * epanechnikov_bandwidth(n, d)
            fit_span.set(bandwidth=self._h)
        obs_metrics.histogram("kde.bandwidth").observe(self._h)
        return self

    def _check_fitted(self):
        if self._points is None:
            raise RuntimeError("KDE must be fitted before use")

    def _to_working(self, points: np.ndarray) -> np.ndarray:
        return self._whitener.transform(points) if self._whitener is not None else points

    def _jacobian(self) -> float:
        """|det d(working)/d(original)| — converts densities between spaces."""
        if self._whitener is None:
            return 1.0
        return float(1.0 / np.prod(self._whitener.scales_))

    @property
    def h(self) -> float:
        """The fitted global bandwidth (whitened coordinates)."""
        self._check_fitted()
        return self._h

    # ------------------------------------------------------------------
    # evaluation & sampling
    # ------------------------------------------------------------------

    def _density_working(self, working: np.ndarray,
                         bandwidths: Optional[np.ndarray] = None) -> np.ndarray:
        """Density in working coordinates; ``bandwidths`` is per-observation.

        f(x) = (1/M) sum_i Ke((x - p_i)/h_i) / h_i^d
             = sum_i max(0, 1 - ||x - p_i||^2 / h_i^2) * w_i,
        with w_i = (d+2) / (2 c_d M h_i^(d+2)) ... folded so the whole block
        reduces to one GEMM for the distances and one GEMV for the weighted
        kernel sum.
        """
        pts = self._points
        m, d = pts.shape
        n = working.shape[0]
        coeff = 0.5 * (d + 2.0) / unit_ball_volume(d)
        if bandwidths is None:
            inv_h_sq = np.full(m, 1.0 / self._h**2)
            weights = np.full(m, coeff / (m * self._h**d))
        else:
            h = np.asarray(bandwidths, dtype=float)
            inv_h_sq = 1.0 / h**2
            weights = coeff / (m * h**d)
        working_sq = np.einsum("ij,ij->i", working, working)
        out = np.empty(n)
        # One (rows, m) float64 scratch block within the memory budget.
        rows = max(1, int(self.max_block_bytes // (8 * m)))
        for start in range(0, n, rows):
            stop = min(start + rows, n)
            block = working[start:stop]
            # Squared distances via the expansion ||x||^2 + ||p||^2 - 2 x.p.
            sq = block @ pts.T
            sq *= -2.0
            sq += working_sq[start:stop, None]
            sq += self._points_sq[None, :]
            np.maximum(sq, 0.0, out=sq)
            sq *= inv_h_sq[None, :]
            np.subtract(1.0, sq, out=sq)
            np.maximum(sq, 0.0, out=sq)
            out[start:stop] = sq @ weights
        return out

    def density(self, points) -> np.ndarray:
        """Estimated density f(m) at each row of ``points`` (original space)."""
        self._check_fitted()
        points = check_2d(points, "points")
        with span("kde.density", n=int(points.shape[0]), m=int(self._points.shape[0])):
            working = self._to_working(points)
            return self._density_working(working) * self._jacobian()

    def sample(self, size: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``size`` synthetic observations from the estimate."""
        self._check_fitted()
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        with span("kde.sample", size=size, d=int(self._points.shape[1])):
            gen = as_generator(rng)
            m, d = self._points.shape
            centers = gen.integers(0, m, size=size)
            offsets = _sample_unit_epanechnikov(size, d, gen)
            offsets *= self._h
            working = self._points[centers]
            working += offsets
            if self._whitener is not None:
                return self._whitener.inverse_transform(working)
            return working


class AdaptiveKde(EpanechnikovKde):
    """Adaptive-bandwidth Epanechnikov KDE (paper Eq. 7-9).

    A pilot fixed-bandwidth estimate assigns each observation a local
    bandwidth factor ``lambda_i = (f(m_i)/g)^-alpha`` (``g`` the geometric
    mean of the pilot densities), widening kernels in low-density regions —
    the distribution tails that matter when drawing a trusted boundary.

    Parameters
    ----------
    alpha:
        Tail sensitivity in [0, 1].  ``alpha = 0`` reduces to the fixed
        estimate; the paper's convention (and Silverman's default) is 0.5.
    """

    def __init__(self, alpha: float = 0.5, bandwidth: Optional[float] = None,
                 bandwidth_scale: float = 1.0, whiten: bool = True,
                 floor_ratio: float = 1e-4, floor_sigma: float = 0.0,
                 max_block_bytes: int = DEFAULT_BLOCK_BYTES):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        super().__init__(
            bandwidth=bandwidth,
            bandwidth_scale=bandwidth_scale,
            whiten=whiten,
            floor_ratio=floor_ratio,
            floor_sigma=floor_sigma,
            max_block_bytes=max_block_bytes,
        )
        self.alpha = float(alpha)
        self._lambdas: Optional[np.ndarray] = None

    def fit(self, data) -> "AdaptiveKde":
        """Fit pilot estimate, then the local bandwidth factors (Eq. 8-9)."""
        with span("kde.fit_adaptive", alpha=self.alpha) as fit_span:
            super().fit(data)
            with span("kde.pilot_density", m=int(self._points.shape[0])):
                pilot = self._density_working(self._points)
            # Guard against zero pilot density (isolated points with tiny h).
            positive = np.clip(pilot, np.finfo(float).tiny, None)
            log_g = float(np.mean(np.log(positive)))
            g = math.exp(log_g)
            self._lambdas = (positive / g) ** (-self.alpha)
            fit_span.set(lambda_min=float(self._lambdas.min()),
                         lambda_max=float(self._lambdas.max()))
        obs_metrics.histogram("kde.lambda_max").observe(float(self._lambdas.max()))
        return self

    @property
    def local_bandwidth_factors(self) -> np.ndarray:
        """The fitted lambda_i factors, one per observation."""
        self._check_fitted()
        return self._lambdas.copy()

    def density(self, points) -> np.ndarray:
        """Adaptive density estimate f_alpha(m) at each row of ``points``."""
        self._check_fitted()
        points = check_2d(points, "points")
        with span("kde.density", n=int(points.shape[0]),
                  m=int(self._points.shape[0]), adaptive=True):
            working = self._to_working(points)
            bandwidths = self._h * self._lambdas
            return (
                self._density_working(working, bandwidths=bandwidths)
                * self._jacobian()
            )

    def sample(self, size: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``size`` synthetic observations, honoring local bandwidths."""
        self._check_fitted()
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        with span("kde.sample", size=size, d=int(self._points.shape[1]),
                  adaptive=True):
            gen = as_generator(rng)
            m, d = self._points.shape
            centers = gen.integers(0, m, size=size)
            scales = (self._h * self._lambdas)[centers]
            offsets = _sample_unit_epanechnikov(size, d, gen)
            offsets *= scales[:, None]
            working = self._points[centers]
            working += offsets
            if self._whitener is not None:
                return self._whitener.inverse_transform(working)
            return working
