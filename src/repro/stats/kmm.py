"""Kernel Mean Matching (paper Section 2.4; Gretton et al. 2009).

When the PCM distribution of the fabricated devices differs from the PCM
distribution the regression functions were trained on (covariate shift),
KMM re-weights the training samples so that the weighted training mean
matches the test mean in a reproducing-kernel Hilbert space:

    minimize   || (1/n_tr) sum_i beta_i Phi(x_i^tr) - (1/n_te) sum_j Phi(x_j^te) ||^2
    subject to beta_i in [0, B],   | (1/n_tr) sum_i beta_i - 1 | <= eps

which expands to the QP of the paper's Eq. (4):

    min_beta  0.5 beta' K beta - kappa' beta,
    K_ij = k(x_i^tr, x_j^tr),   kappa_i = (n_tr / n_te) sum_j k(x_i^tr, x_j^te).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.stats.kernels import (
    median_heuristic_gamma_from_sq,
    pairwise_sq_dists,
    rbf_from_sq_dists,
)
from repro.stats.qp import solve_qp
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_2d


class KmmProblem:
    """Precomputed geometry of one (train, test) matching instance.

    The expensive part of KMM setup is the pooled pairwise squared-distance
    matrix — O((n_tr + n_te)^2 d) — which does not depend on the kernel
    bandwidth.  Building a :class:`KmmProblem` hoists that computation so a
    bandwidth sweep (and the median heuristic) reuses it; each candidate
    gamma then only pays one elementwise ``exp``.  Kernels are materialized
    into fresh buffers with exactly the operations the one-shot path uses,
    so weights computed through a problem are bitwise identical to
    :meth:`KernelMeanMatcher.fit` on the same arrays.
    """

    def __init__(self, train, test):
        train = check_2d(train, "train")
        test = check_2d(test, "test")
        if train.shape[1] != test.shape[1]:
            raise ValueError(
                f"train and test must share features, got {train.shape[1]} "
                f"and {test.shape[1]}"
            )
        self.n_train = int(train.shape[0])
        self.n_test = int(test.shape[0])
        pooled = np.vstack([train, test])
        #: Pooled squared distances; kept pristine (kernels use copies).
        self.sq_dists_ = pairwise_sq_dists(pooled, pooled)

    def median_gamma(self) -> float:
        """The median-heuristic bandwidth of the pooled population."""
        return median_heuristic_gamma_from_sq(self.sq_dists_)

    def kernel(self, gamma: float) -> np.ndarray:
        """The pooled RBF kernel at ``gamma`` (a fresh buffer per call)."""
        return rbf_from_sq_dists(self.sq_dists_.copy(), gamma)

    def sweep(self, gammas: Sequence[float], B: float = 1000.0,
              eps: Optional[float] = None,
              warm_start: bool = True) -> List["KernelMeanMatcher"]:
        """Fit one matcher per candidate bandwidth, reusing the distances.

        Returns the fitted matchers in ``gammas`` order; compare their
        ``rkhs_residual_`` / :meth:`KernelMeanMatcher.effective_sample_size`
        to choose a bandwidth.

        With ``warm_start=True`` (default) each QP after the first starts
        from the previous bandwidth's converged weights rather than from the
        feasible midpoint: neighbouring bandwidths have nearby optima, so
        SLSQP converges in far fewer iterations.  The solver runs to the
        same ``ftol`` either way, so warm and cold sweeps agree to solver
        tolerance (asserted in the test suite); ``warm_start=False`` keeps
        the bit-exact cold-start reference.
        """
        matchers: List[KernelMeanMatcher] = []
        x0 = None
        for g in gammas:
            matcher = KernelMeanMatcher(B=B, eps=eps, gamma=float(g))
            matcher.fit_problem(self, x0=x0)
            matchers.append(matcher)
            if warm_start and matcher.converged_:
                x0 = matcher.weights_
        return matchers


class KernelMeanMatcher:
    """Covariate-shift correction by kernel mean matching.

    Parameters
    ----------
    B:
        Upper bound on individual importance weights (paper's tuning
        parameter ``B``).  Large values let the matcher concentrate mass on
        few samples; the default of 1000 follows Gretton et al.
    eps:
        Slack on the mean of the weights (paper's ``eps``).  ``None``
        selects the common heuristic ``(sqrt(n_tr) - 1) / sqrt(n_tr)``.
    gamma:
        RBF kernel width; ``None`` selects the median heuristic computed on
        the pooled data.
    """

    def __init__(self, B: float = 1000.0, eps: Optional[float] = None,
                 gamma: Optional[float] = None):
        if B <= 0:
            raise ValueError(f"B must be positive, got {B}")
        if eps is not None and eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        self.B = float(B)
        self.eps = eps
        self.gamma = gamma
        self.weights_: Optional[np.ndarray] = None
        self.converged_: bool = False
        self.rkhs_residual_: Optional[float] = None
        self.qp_iterations_: int = 0

    def fit(self, train, test) -> "KernelMeanMatcher":
        """Compute importance weights for ``train`` so it matches ``test``.

        Both arguments are ``(n, d)`` sample matrices over the same features
        (PCM measurements, in the paper's use).  Sweeping several bandwidths
        over the same pair?  Build one :class:`KmmProblem` and use
        :meth:`fit_problem` / :meth:`KmmProblem.sweep` instead — same
        weights, one distance pass.
        """
        return self.fit_problem(KmmProblem(train, test))

    def fit_problem(self, problem: KmmProblem,
                    x0: Optional[np.ndarray] = None) -> "KernelMeanMatcher":
        """Fit on a prebuilt :class:`KmmProblem` (distances already pooled).

        ``x0`` optionally warm-starts the QP (e.g. from a neighbouring
        bandwidth's weights); ``None`` keeps the cold start from the
        feasible midpoint ``beta = 1``.
        """
        n_tr = problem.n_train
        n_te = problem.n_test

        with span("kmm.fit", n_train=n_tr, n_test=n_te) as fit_span:
            # The pooled squared distances serve the median-heuristic gamma,
            # the train Gram matrix and the train-test cross kernel.
            gamma = self.gamma
            if gamma is None:
                gamma = problem.median_gamma()
            pooled_kernel = problem.kernel(gamma)

            K = pooled_kernel[:n_tr, :n_tr]
            test_kernel_sum = float(pooled_kernel[n_tr:, n_tr:].sum())
            # Regularize the Gram diagonal slightly: keeps the QP strictly convex.
            K = K + 1e-8 * np.eye(n_tr)
            kappa = (n_tr / n_te) * pooled_kernel[:n_tr, n_tr:].sum(axis=1)

            eps = self.eps
            if eps is None:
                eps = (np.sqrt(n_tr) - 1.0) / np.sqrt(n_tr)

            # | mean(beta) - 1 | <= eps  as two inequality rows.
            ones = np.ones((1, n_tr)) / n_tr
            G = np.vstack([ones, -ones])
            h = np.array([1.0 + eps, -(1.0 - eps)])

            result = solve_qp(
                P=K,
                q=-kappa,
                lb=0.0,
                ub=self.B,
                G=G,
                h=h,
                x0=np.ones(n_tr) if x0 is None else np.asarray(x0, dtype=float),
                max_iterations=500,
            )
            self.weights_ = np.clip(result.x, 0.0, self.B)
            self.converged_ = result.converged
            self.qp_iterations_ = int(result.iterations)
            self.effective_gamma_ = float(gamma)
            # The achieved RKHS mean discrepancy (the quantity KMM minimizes):
            # ||(1/n_tr) sum beta_i phi(x_i) - (1/n_te) sum phi(x_j)||.  The QP
            # objective is 0.5 b'Kb - kappa'b, so the residual reconstructs as
            # sqrt(2*objective/n_tr^2 + sum K_test / n_te^2) — a model-fit
            # diagnostic the solver's convergence flag alone cannot give.
            residual_sq = (
                2.0 * result.objective / n_tr**2 + test_kernel_sum / n_te**2
            )
            self.rkhs_residual_ = float(np.sqrt(max(0.0, residual_sq)))
            fit_span.set(converged=result.converged, gamma=self.effective_gamma_,
                         residual=self.rkhs_residual_,
                         qp_iterations=self.qp_iterations_)
        obs_metrics.gauge("kmm.converged").set(1.0 if self.converged_ else 0.0)
        obs_metrics.histogram("kmm.rkhs_residual").observe(self.rkhs_residual_)
        obs_metrics.histogram("kmm.effective_sample_size").observe(
            self.effective_sample_size()
        )
        return self

    @property
    def weights(self) -> np.ndarray:
        """The fitted importance weights (one per training sample)."""
        if self.weights_ is None:
            raise RuntimeError("KernelMeanMatcher must be fitted before reading weights")
        return self.weights_

    def effective_sample_size(self) -> float:
        """Kish effective sample size of the weights — degeneracy diagnostic."""
        w = self.weights
        total = w.sum()
        if total <= 0:
            return 0.0
        return float(total**2 / np.sum(w**2))


def importance_resample(samples, weights, size: int, rng: SeedLike = None) -> np.ndarray:
    """Resample ``size`` rows of ``samples`` with probability ∝ ``weights``.

    Used to turn KMM importance weights into an unweighted population (the
    paper's "kernel mean shifted" PCM set ``m''_p``) that downstream code —
    regression prediction, KDE — can treat uniformly.
    """
    samples = check_2d(samples, "samples")
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (samples.shape[0],):
        raise ValueError(
            f"weights shape {weights.shape} must match sample count {samples.shape[0]}"
        )
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights sum to zero; nothing to resample")
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    gen = as_generator(rng)
    idx = gen.choice(samples.shape[0], size=size, replace=True, p=weights / total)
    return samples[idx]
