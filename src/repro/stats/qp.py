"""A small convex quadratic-programming front-end on scipy.

Solves

    minimize    0.5 * x' P x + q' x
    subject to  lb <= x <= ub
                A_eq x  = b_eq      (optional)
                G    x <= h         (optional)

via SLSQP with analytic gradients.  Problem sizes in this library are modest
(KMM over a few hundred Monte Carlo samples), so a dense general-purpose
solver is the right tool; the one-class SVM has its own specialized SMO
solver in :mod:`repro.learn.ocsvm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize

from repro.utils.validation import check_1d, check_2d


@dataclass
class QpResult:
    """Solution of one QP: optimizer output plus the achieved objective."""

    x: np.ndarray
    objective: float
    converged: bool
    message: str
    iterations: int = 0


def solve_qp(
    P,
    q,
    lb=None,
    ub=None,
    A_eq=None,
    b_eq=None,
    G=None,
    h=None,
    x0=None,
    max_iterations: int = 300,
) -> QpResult:
    """Solve the box/linearly-constrained convex QP described above.

    ``P`` must be symmetric positive semi-definite (a tiny asymmetry from
    floating-point Gram matrices is symmetrized away).  Raises
    ``ValueError`` on malformed inputs; a non-converged optimizer is
    reported through :attr:`QpResult.converged` rather than raising, since
    near-optimal KMM weights are still usable.
    """
    P = check_2d(P, "P")
    q = check_1d(q, "q")
    n = q.shape[0]
    if P.shape != (n, n):
        raise ValueError(f"P must be ({n}, {n}) to match q, got {P.shape}")
    P = 0.5 * (P + P.T)

    lb_arr = np.full(n, -np.inf) if lb is None else np.broadcast_to(
        np.asarray(lb, dtype=float), (n,)
    ).copy()
    ub_arr = np.full(n, np.inf) if ub is None else np.broadcast_to(
        np.asarray(ub, dtype=float), (n,)
    ).copy()
    if np.any(lb_arr > ub_arr):
        raise ValueError("lower bounds exceed upper bounds")

    constraints = []
    if A_eq is not None:
        A_eq = check_2d(A_eq, "A_eq")
        b_eq = check_1d(b_eq, "b_eq")
        if A_eq.shape != (b_eq.shape[0], n):
            raise ValueError(f"A_eq shape {A_eq.shape} incompatible with n={n}")
        constraints.append(
            {"type": "eq", "fun": lambda x, A=A_eq, b=b_eq: A @ x - b,
             "jac": lambda x, A=A_eq: A}
        )
    if G is not None:
        G = check_2d(G, "G")
        h = check_1d(h, "h")
        if G.shape != (h.shape[0], n):
            raise ValueError(f"G shape {G.shape} incompatible with n={n}")
        constraints.append(
            {"type": "ineq", "fun": lambda x, G=G, h=h: h - G @ x,
             "jac": lambda x, G=G: -G}
        )

    if x0 is None:
        start = np.clip(np.zeros(n), lb_arr, ub_arr)
    else:
        start = np.clip(check_1d(x0, "x0"), lb_arr, ub_arr)

    def objective(x):
        return 0.5 * x @ P @ x + q @ x

    def gradient(x):
        return P @ x + q

    result = optimize.minimize(
        objective,
        start,
        jac=gradient,
        bounds=list(zip(lb_arr, ub_arr)),
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": max_iterations, "ftol": 1e-10},
    )
    return QpResult(
        x=np.asarray(result.x, dtype=float),
        objective=float(result.fun),
        converged=bool(result.success),
        message=str(result.message),
        iterations=int(getattr(result, "nit", 0)),
    )
