"""Kernel functions and Gram matrices for KMM and the one-class SVM."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d, check_positive


def _pairwise_sq_dists(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between the rows of ``x`` and ``y``."""
    x_norm = np.sum(x**2, axis=1)[:, None]
    y_norm = np.sum(y**2, axis=1)[None, :]
    sq = x_norm + y_norm - 2.0 * (x @ y.T)
    return np.maximum(sq, 0.0)


def rbf_kernel(x, y=None, gamma: float = 1.0) -> np.ndarray:
    """Gaussian RBF Gram matrix ``exp(-gamma * ||xi - yj||^2)``."""
    x = check_2d(x, "x")
    y = x if y is None else check_2d(y, "y")
    check_positive(gamma, "gamma")
    return np.exp(-gamma * _pairwise_sq_dists(x, y))


def linear_kernel(x, y=None) -> np.ndarray:
    """Linear Gram matrix ``xi . yj``."""
    x = check_2d(x, "x")
    y = x if y is None else check_2d(y, "y")
    return x @ y.T


def polynomial_kernel(x, y=None, degree: int = 3, coef0: float = 1.0,
                      gamma: float = 1.0) -> np.ndarray:
    """Polynomial Gram matrix ``(gamma * xi . yj + coef0) ** degree``."""
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    x = check_2d(x, "x")
    y = x if y is None else check_2d(y, "y")
    check_positive(gamma, "gamma")
    return (gamma * (x @ y.T) + coef0) ** degree


def median_heuristic_gamma(x, max_samples: int = 1000, rng=None) -> float:
    """RBF gamma from the median pairwise distance heuristic.

    gamma = 1 / (2 * median(||xi - xj||)^2); a robust default bandwidth for
    both KMM and the one-class SVM.  Subsamples to ``max_samples`` rows for
    large populations.
    """
    x = check_2d(x, "x")
    if x.shape[0] > max_samples:
        gen = np.random.default_rng(rng if not isinstance(rng, np.random.Generator) else None)
        if isinstance(rng, np.random.Generator):
            gen = rng
        idx = gen.choice(x.shape[0], size=max_samples, replace=False)
        x = x[idx]
    sq = _pairwise_sq_dists(x, x)
    upper = sq[np.triu_indices_from(sq, k=1)]
    if upper.size == 0:
        return 1.0
    median_sq = float(np.median(upper))
    if median_sq <= 0.0:
        return 1.0
    return 1.0 / (2.0 * median_sq)
