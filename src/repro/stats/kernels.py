"""Kernel functions and Gram matrices for KMM and the one-class SVM.

:func:`pairwise_sq_dists` is the shared squared-distance building block:
the one-class SVM, kernel mean matching and the KDE all reduce their Gram /
kernel evaluations to one call of it (one GEMM), so a distance matrix is
never computed twice for the same data.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_2d, check_positive


def pairwise_sq_dists(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between the rows of ``x`` and ``y``.

    Evaluated as ``||x||^2 + ||y||^2 - 2 x.y`` (one GEMM) with in-place
    updates; for large Gram matrices the avoided temporaries matter as much
    as the arithmetic.
    """
    x_norm = np.sum(x**2, axis=1)[:, None]
    y_norm = np.sum(y**2, axis=1)[None, :]
    prod = x @ y.T
    prod *= 2.0
    sq = x_norm + y_norm
    np.subtract(sq, prod, out=sq)
    return np.maximum(sq, 0.0, out=sq)


# Backwards-compatible alias (pre-1.1 private name).
_pairwise_sq_dists = pairwise_sq_dists


def rbf_kernel(x, y=None, gamma: float = 1.0) -> np.ndarray:
    """Gaussian RBF Gram matrix ``exp(-gamma * ||xi - yj||^2)``."""
    x = check_2d(x, "x")
    y = x if y is None else check_2d(y, "y")
    check_positive(gamma, "gamma")
    return rbf_from_sq_dists(pairwise_sq_dists(x, y), gamma)


def rbf_from_sq_dists(sq: np.ndarray, gamma: float) -> np.ndarray:
    """RBF Gram matrix from a precomputed squared-distance matrix.

    Consumes ``sq`` in place (the caller hands over the buffer); use this
    when the distances are already in hand to avoid a second GEMM.
    """
    check_positive(gamma, "gamma")
    sq *= -gamma
    return np.exp(sq, out=sq)


def linear_kernel(x, y=None) -> np.ndarray:
    """Linear Gram matrix ``xi . yj``."""
    x = check_2d(x, "x")
    y = x if y is None else check_2d(y, "y")
    return x @ y.T


def polynomial_kernel(x, y=None, degree: int = 3, coef0: float = 1.0,
                      gamma: float = 1.0) -> np.ndarray:
    """Polynomial Gram matrix ``(gamma * xi . yj + coef0) ** degree``."""
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    x = check_2d(x, "x")
    y = x if y is None else check_2d(y, "y")
    check_positive(gamma, "gamma")
    return (gamma * (x @ y.T) + coef0) ** degree


def median_heuristic_gamma_from_sq(sq: np.ndarray, max_samples: int = 1000) -> float:
    """RBF gamma from a precomputed symmetric squared-distance matrix.

    gamma = 1 / (2 * median(||xi - xj||^2)) over the strict upper triangle;
    deterministic — callers that already paid for the full distance matrix
    get the heuristic without another GEMM.  Above ``max_samples`` rows the
    median is taken over an evenly strided row subset (still deterministic;
    the exact median of an O(n^2) triangle buys no extra robustness).
    """
    n = sq.shape[0]
    if n < 2:
        return 1.0
    if n > max_samples:
        idx = np.arange(0, n, -(-n // max_samples))
        sq = sq[np.ix_(idx, idx)]
        n = sq.shape[0]
    # Row-sliced strict upper triangle: same entries as triu_indices_from
    # without materializing two O(n^2) index arrays.
    upper = np.concatenate([sq[i, i + 1:] for i in range(n - 1)])
    median_sq = float(np.median(upper))
    if median_sq <= 0.0:
        return 1.0
    return 1.0 / (2.0 * median_sq)


def median_heuristic_gamma(x, max_samples: int = 1000, rng: SeedLike = 0) -> float:
    """RBF gamma from the median pairwise distance heuristic.

    gamma = 1 / (2 * median(||xi - xj||)^2); a robust default bandwidth for
    both KMM and the one-class SVM.  Subsamples to ``max_samples`` rows for
    large populations; the subsample is drawn from ``rng`` (a fixed default
    seed, so the heuristic is deterministic unless a generator is passed).
    """
    x = check_2d(x, "x")
    if x.shape[0] > max_samples:
        gen = as_generator(rng)
        idx = gen.choice(x.shape[0], size=max_samples, replace=False)
        x = x[idx]
    return median_heuristic_gamma_from_sq(pairwise_sq_dists(x, x))
