"""Extreme-value tail enhancement (generalized Pareto alternative to KDE).

The paper's "advanced statistical tail modeling techniques" are instantiated
with adaptive KDE; extreme-value theory offers the classical parametric
alternative.  :class:`GpdTailEnhancer` models a population in whitened
coordinates as (direction, radius): directions are bootstrapped from the
data, radii follow the empirical distribution below a threshold and a fitted
Generalized Pareto Distribution (GPD) above it — the Pickands-Balkema-de
Haan limit for threshold exceedances.

The A1-style ablation bench compares this enhancer with the paper's KDE for
building boundary B5.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

from repro.stats.preprocessing import Whitener
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_2d, check_in_range


class GpdTailEnhancer:
    """Synthetic population generator with a generalized Pareto radial tail.

    Parameters
    ----------
    threshold_quantile:
        Radius quantile above which exceedances are modelled by the GPD
        (the remaining body is resampled empirically).
    shape_cap:
        Upper clip on the fitted GPD shape parameter xi; heavy-tailed fits
        (xi near or above 1) have infinite mean and would produce absurd
        synthetic devices, so the fit is capped.
    floor_ratio / floor_sigma:
        Whitener floors (as in the KDE enhancer).
    """

    def __init__(self, threshold_quantile: float = 0.7, shape_cap: float = 0.5,
                 floor_ratio: float = 1e-6, floor_sigma: float = 0.0):
        check_in_range(threshold_quantile, 0.5, 0.95, "threshold_quantile")
        if shape_cap <= 0:
            raise ValueError(f"shape_cap must be positive, got {shape_cap}")
        self.threshold_quantile = float(threshold_quantile)
        self.shape_cap = float(shape_cap)
        self.floor_ratio = float(floor_ratio)
        self.floor_sigma = float(floor_sigma)
        self._whitener: Optional[Whitener] = None
        self._radii: Optional[np.ndarray] = None
        self._directions: Optional[np.ndarray] = None
        self.threshold_: Optional[float] = None
        self.gpd_shape_: Optional[float] = None
        self.gpd_scale_: Optional[float] = None

    def fit(self, data) -> "GpdTailEnhancer":
        """Fit the body/tail radial model on an ``(M, d)`` sample matrix."""
        data = check_2d(data, "data")
        self._whitener = Whitener(
            floor_ratio=self.floor_ratio, floor_sigma=self.floor_sigma
        ).fit(data)
        whitened = self._whitener.transform(data)
        radii = np.linalg.norm(whitened, axis=1)
        positive = radii > 0
        directions = np.zeros_like(whitened)
        directions[positive] = whitened[positive] / radii[positive, None]
        self._radii = radii
        self._directions = directions

        self.threshold_ = float(np.quantile(radii, self.threshold_quantile))
        exceedances = radii[radii > self.threshold_] - self.threshold_
        if exceedances.size >= 5 and exceedances.max() > 0:
            shape, _, scale = stats.genpareto.fit(exceedances, floc=0.0)
            self.gpd_shape_ = float(np.clip(shape, -0.9, self.shape_cap))
            self.gpd_scale_ = float(max(scale, 1e-12))
        else:
            # Too few exceedances: exponential fallback (xi = 0).
            self.gpd_shape_ = 0.0
            mean_exc = float(exceedances.mean()) if exceedances.size else 0.1
            self.gpd_scale_ = max(mean_exc, 1e-12)
        return self

    def _check_fitted(self):
        if self._radii is None:
            raise RuntimeError("GpdTailEnhancer must be fitted before use")

    def sample(self, size: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``size`` synthetic observations (original coordinates).

        Each draw bootstraps a direction from the data; with probability
        ``1 - threshold_quantile`` the radius is a fresh GPD exceedance above
        the threshold, otherwise a bootstrap of the empirical body radii.
        """
        self._check_fitted()
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        gen = as_generator(rng)
        m = self._radii.shape[0]

        directions = self._directions[gen.integers(0, m, size=size)]
        body = self._radii[self._radii <= self.threshold_]
        if body.size == 0:
            body = self._radii
        radii = body[gen.integers(0, body.size, size=size)].astype(float)
        tail_mask = gen.random(size) > self.threshold_quantile
        n_tail = int(tail_mask.sum())
        if n_tail:
            exceedances = stats.genpareto.rvs(
                self.gpd_shape_, loc=0.0, scale=self.gpd_scale_,
                size=n_tail, random_state=gen,
            )
            radii[tail_mask] = self.threshold_ + exceedances
        samples = directions * radii[:, None]
        return self._whitener.inverse_transform(samples)

    def tail_quantile(self, probability: float) -> float:
        """Radius (whitened units) exceeded with the given tail probability."""
        self._check_fitted()
        check_in_range(probability, 0.0, 1.0 - self.threshold_quantile, "probability")
        conditional = probability / (1.0 - self.threshold_quantile)
        exceedance = stats.genpareto.ppf(
            1.0 - conditional, self.gpd_shape_, loc=0.0, scale=self.gpd_scale_
        )
        return float(self.threshold_ + exceedance)
