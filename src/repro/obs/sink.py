"""JSONL event sink: one append-only stream per run.

Every record is a single JSON object on its own line with an ``event``
discriminator, so run telemetry (``span`` events from traced experiments)
and bench history (``bench`` events from :mod:`repro.benchreport`) share one
format and one toolchain — ``grep`` + ``json.loads`` is a complete reader.

The sink opens its file lazily (a run that emits nothing creates nothing)
and flushes per record: events are for post-mortems, and a crashed run's
stream must contain everything up to the crash.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from repro.obs.trace import Span

__all__ = ["JsonlSink", "NullSink", "write_span_events", "read_events"]


class JsonlSink:
    """Appends JSON records, one per line, to ``path``."""

    def __init__(self, path: str):
        self.path = path
        self._handle = None

    def emit(self, record: dict) -> None:
        """Append one record (keys sorted for stable diffs)."""
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True, default=str))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class NullSink:
    """Drops every record (stand-in when no run directory is configured)."""

    def emit(self, record: dict) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


def write_span_events(sink, spans: List[Span], run_id: Optional[str] = None) -> None:
    """Emit one ``span`` event per finished span."""
    for finished in spans:
        record = {"event": "span", **finished.to_dict()}
        if run_id is not None:
            record["run_id"] = run_id
        sink.emit(record)


def read_events(path: str, event: Optional[str] = None) -> List[dict]:
    """Load a JSONL stream, optionally filtered to one ``event`` kind."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if event is None or record.get("event") == event:
                records.append(record)
    return records
