"""Metrics registry: counters, gauges and histograms from the hot paths.

Spans say *where* time went; metrics say *what the algorithms did* — the
per-stage parametric signatures an operator needs to trust a verdict:

* how many Monte Carlo devices were simulated and measured,
* the KDE bandwidths and rejection-sampler acceptance ratio,
* SMO iterations and support-vector counts per boundary,
* the KMM solver's RKHS residual and effective sample size,
* MARS basis counts and GCV scores,
* per-boundary FP/FN of the final evaluation.

Same contract as :mod:`repro.obs.trace`: recording is off by default, and a
disabled registry hands out one shared null instrument — instrumented code
writes ``counter("mc.devices").inc()`` unconditionally and pays one global
read when observability is off.

Worker processes record into their own registry (installed by the pool
wrapper in :mod:`repro.obs.trace`); the per-item snapshot is merged back
into the dispatching registry by :func:`merge`, so counts are exact for any
``n_jobs``.  Merge semantics: counters add, histograms combine their
summaries, gauges last-write-wins (they are point-in-time diagnostics).
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "enable",
    "disable",
    "enabled",
    "merge",
    "snapshot",
    "swap_registry",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """A streaming summary (count/total/min/max) of observed values.

    Full per-observation storage is deliberately avoided: the KDE sampler
    observes once per sampling call and the SMO once per boundary, but a
    metric is cheap only if its cost does not grow with the run.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> Optional[float]:
        """Mean of the observations (``None`` before the first)."""
        return self.total / self.count if self.count else None


class _NullInstrument:
    """Shared no-op standing in for every instrument while disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL = _NullInstrument()


class MetricsRegistry:
    """Named instruments for one observability session."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The named counter (created on first use)."""
        try:
            return self.counters[name]
        except KeyError:
            return self.counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """The named gauge (created on first use)."""
        try:
            return self.gauges[name]
        except KeyError:
            return self.gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        """The named histogram (created on first use)."""
        try:
            return self.histograms[name]
        except KeyError:
            return self.histograms.setdefault(name, Histogram())

    def snapshot(self) -> dict:
        """JSON-ready dump of every instrument (manifest format)."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.minimum,
                    "max": h.maximum,
                    "mean": h.mean,
                }
                for name, h in sorted(self.histograms.items())
            },
        }

    def merge(self, other: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a pool worker) into this registry."""
        for name, value in other.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in other.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, summary in other.get("histograms", {}).items():
            hist = self.histogram(name)
            count = int(summary.get("count", 0))
            if count == 0:
                continue
            hist.count += count
            hist.total += float(summary.get("total", 0.0))
            for bound, pick in (("min", min), ("max", max)):
                theirs = summary.get(bound)
                if theirs is None:
                    continue
                attr = "minimum" if bound == "min" else "maximum"
                ours = getattr(hist, attr)
                setattr(hist, attr, theirs if ours is None else pick(ours, theirs))


_registry: Optional[MetricsRegistry] = None


def enable() -> MetricsRegistry:
    """Install a fresh registry (discarding any previous session's values)."""
    global _registry
    _registry = MetricsRegistry()
    return _registry


def disable() -> dict:
    """Stop recording; returns the final snapshot of the ended session."""
    global _registry
    final = _registry.snapshot() if _registry is not None else {}
    _registry = None
    return final


def enabled() -> bool:
    """Whether metrics are currently being recorded."""
    return _registry is not None


def swap_registry(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install ``registry`` (may be ``None``), returning the previous one.

    Used by the pool-task wrapper to give each worker item its own registry
    and restore the inherited state afterwards.
    """
    global _registry
    previous = _registry
    _registry = registry
    return previous


def counter(name: str):
    """The named counter, or the shared null instrument when disabled."""
    registry = _registry
    return _NULL if registry is None else registry.counter(name)


def gauge(name: str):
    """The named gauge, or the shared null instrument when disabled."""
    registry = _registry
    return _NULL if registry is None else registry.gauge(name)


def histogram(name: str):
    """The named histogram, or the shared null instrument when disabled."""
    registry = _registry
    return _NULL if registry is None else registry.histogram(name)


def snapshot() -> dict:
    """Snapshot of the active registry (empty dict when disabled)."""
    return _registry.snapshot() if _registry is not None else {}


def merge(other: dict) -> None:
    """Merge a snapshot into the active registry (no-op when disabled)."""
    if _registry is not None and other:
        _registry.merge(other)
