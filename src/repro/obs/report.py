"""Pretty-printer for run manifests (``repro.cli report <run-id>``).

Renders the stage-time breakdown of a recorded run as an indented tree.
Sibling spans with the same name are aggregated into one line (``x N``) —
a 100-device Monte Carlo run reads as one ``mc.device`` row, not a hundred
— and each line shows summed wall time, the share of the run, summed CPU
time and the number of distinct worker processes involved.  The metric
snapshot follows as counter/gauge/histogram tables.

The *stage coverage* figure is the acceptance gate of the instrumentation:
the fraction of the root span's wall time accounted for by its direct
children.  Low coverage means a pipeline stage is running untraced.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.obs.manifest import RunManifest
from repro.obs.trace import Span

__all__ = ["render_report", "stage_coverage", "build_tree"]


def build_tree(spans: List[Span]) -> Tuple[List[Span], Dict[Optional[int], List[Span]]]:
    """Return (root spans, children-by-parent-id) for a flat span list."""
    by_id = {recorded.span_id: recorded for recorded in spans}
    children: Dict[Optional[int], List[Span]] = defaultdict(list)
    roots: List[Span] = []
    for recorded in spans:
        parent = recorded.parent_id
        if parent is None or parent not in by_id:
            roots.append(recorded)
        else:
            children[parent].append(recorded)
    return roots, children


def stage_coverage(spans: List[Span]) -> Optional[float]:
    """Fraction of root wall time covered by the roots' direct children."""
    roots, children = build_tree(spans)
    total = sum(root.wall for root in roots)
    if total <= 0:
        return None
    covered = sum(child.wall for root in roots for child in children[root.span_id])
    return min(1.0, covered / total)


def _group_by_name(group: List[Span]) -> List[Tuple[str, List[Span]]]:
    """Sibling spans bucketed by name, ordered by first start time."""
    buckets: Dict[str, List[Span]] = defaultdict(list)
    for sibling in group:
        buckets[sibling.name].append(sibling)
    return sorted(buckets.items(), key=lambda item: min(s.start for s in item[1]))


def _render_group(name: str, group: List[Span], children, depth: int,
                  run_wall: float, lines: List[str]) -> None:
    wall = sum(s.wall for s in group)
    cpu = sum(s.cpu for s in group)
    workers = {s.worker for s in group if s.worker is not None}
    label = f"{'  ' * depth}{name}"
    if len(group) > 1:
        label += f" x{len(group)}"
    share = f"{100.0 * wall / run_wall:5.1f}%" if run_wall > 0 else "    -"
    extra = f"  [{len(workers)} workers]" if workers else ""
    lines.append(f"  {label:<44} {wall * 1e3:9.1f} ms {share} {cpu * 1e3:9.1f} ms{extra}")
    nested: List[Span] = []
    for member in group:
        nested.extend(children.get(member.span_id, []))
    for child_name, child_group in _group_by_name(nested):
        _render_group(child_name, child_group, children, depth + 1, run_wall, lines)


def _format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_report(manifest: RunManifest) -> str:
    """Render the full stage-time / metric breakdown of one run."""
    lines: List[str] = []
    lines.append(f"run {manifest.run_id} · command: {manifest.command}")
    lines.append(f"created: {manifest.created}")
    versions = manifest.environment.get("versions", {})
    env_bits = [f"python {versions.get('python', '?')}"]
    for package in ("numpy", "scipy", "repro"):
        if versions.get(package):
            env_bits.append(f"{package} {versions[package]}")
    if manifest.git and manifest.git.get("revision"):
        dirty = "*" if manifest.git.get("dirty") else ""
        env_bits.append(f"git {manifest.git['revision'][:12]}{dirty}")
    lines.append(" · ".join(env_bits))

    spans = manifest.span_objects()
    if spans:
        roots, children = build_tree(spans)
        run_wall = sum(root.wall for root in roots)
        lines.append("")
        lines.append(f"{'stage':<46} {'wall':>12} {'share':>5} {'cpu':>12}")
        for name, group in _group_by_name(roots):
            _render_group(name, group, children, 0, run_wall, lines)
        coverage = stage_coverage(spans)
        if coverage is not None:
            lines.append(f"  stage coverage of run wall time: {coverage * 100.0:.1f}%")
    else:
        lines.append("")
        lines.append("no spans recorded (run without --trace?)")

    metrics = manifest.metrics or {}
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    if counters or gauges or histograms:
        lines.append("")
        lines.append("metrics:")
    if counters:
        lines.append("  counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"    {name:<42} {_format_value(value):>12}")
    if gauges:
        lines.append("  gauges:")
        for name, value in sorted(gauges.items()):
            lines.append(f"    {name:<42} {_format_value(value):>12}")
    if histograms:
        lines.append("  histograms:")
        lines.append(f"    {'name':<42} {'count':>7} {'mean':>12} {'min':>12} {'max':>12}")
        for name, summary in sorted(histograms.items()):
            lines.append(
                f"    {name:<42} {summary.get('count', 0):>7}"
                f" {_format_value(summary.get('mean')):>12}"
                f" {_format_value(summary.get('min')):>12}"
                f" {_format_value(summary.get('max')):>12}"
            )

    if manifest.results:
        lines.append("")
        lines.append("results:")
        for key, value in sorted(manifest.results.items()):
            lines.append(f"  {key}: {value}")
    return "\n".join(lines)
