"""Observability for the detection pipeline: tracing, metrics, manifests.

The subsystem has four parts, all dependency-free and all off by default:

* :mod:`repro.obs.trace` — nestable spans (``with span("kde.fit", n=100)``)
  recording wall time, CPU time and key/value attributes, with transparent
  collection across the :mod:`repro.utils.parallel` process pool;
* :mod:`repro.obs.metrics` — counters / gauges / histograms fed by the hot
  paths (KDE acceptance ratio, SMO iterations, KMM residuals, ...);
* :mod:`repro.obs.manifest` + :mod:`repro.obs.sink` — the per-run artifact:
  ``runs/<run-id>/manifest.json`` (config, seeds, git revision, versions,
  span tree, metrics, results) plus an optional JSONL event stream;
* :mod:`repro.obs.report` — the ``repro.cli report`` pretty-printer.

Enabling and disabling is session-scoped::

    obs.enable()
    ... run the pipeline ...
    spans, metrics_snapshot = obs.disable()

With observability disabled every instrumentation point reduces to one
global read and a shared no-op object, keeping the hot paths at their
benchmarked speed; results are bit-identical either way (tracing never
touches a random stream).
"""

from __future__ import annotations

import logging
import sys
from typing import List, Tuple

from repro.obs import metrics, trace
from repro.obs.trace import Span, span

__all__ = [
    "Span",
    "span",
    "metrics",
    "trace",
    "enable",
    "disable",
    "enabled",
    "setup_logging",
    "get_logger",
]

#: Root logger name; every module logger hangs below it.
LOGGER_NAME = "repro"

_LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def enable() -> None:
    """Start a fresh observability session (tracing + metrics)."""
    trace.enable()
    metrics.enable()


def disable() -> Tuple[List[Span], dict]:
    """End the session; returns its finished spans and metrics snapshot."""
    snapshot = metrics.disable()
    spans = trace.disable()
    return spans, snapshot


def enabled() -> bool:
    """Whether an observability session is active."""
    return trace.enabled()


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``get_logger("parallel")``)."""
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def setup_logging(level: str = "warning", stream=None) -> logging.Logger:
    """Configure the ``repro`` logger once (idempotent; returns it).

    Handlers go on the package root logger only, so libraries embedding the
    package keep control of their own root logger.
    """
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(getattr(logging, level.upper(), logging.WARNING))
    if not logger.handlers:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_LOG_FORMAT))
        logger.addHandler(handler)
        logger.propagate = False
    return logger
