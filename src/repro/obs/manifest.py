"""Run manifests: every experiment reproducible-by-artifact.

A manifest is one JSON file, ``<run-dir>/manifest.json``, recording
everything needed to re-run and to interrogate an experiment: the command
and its arguments, the resolved configuration and seeds, the environment
(interpreter, numpy/scipy/repro versions, git revision), the span tree of
the run and the final metrics snapshot, plus command-specific results
(e.g. the Table-1 FP/FN counts).

The schema ships with the package (``run_manifest.schema.json``) and
:func:`validate` checks a manifest against it with a small built-in
validator covering the JSON-Schema subset the schema uses — ``type``,
``required``, ``properties``, ``items``, ``enum`` — so validation needs no
third-party dependency.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.trace import Span

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "collect_environment",
    "default_schema_path",
    "git_revision",
    "load_manifest",
    "load_schema",
    "new_run_id",
    "validate",
    "write_manifest",
]

MANIFEST_SCHEMA_VERSION = 1

MANIFEST_FILENAME = "manifest.json"


def new_run_id() -> str:
    """A sortable, collision-resistant run identifier."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime())
    return f"{stamp}-{os.getpid():05d}"


def collect_environment() -> dict:
    """Interpreter, platform and package versions of the running process."""
    import platform

    versions = {"python": platform.python_version()}
    for package in ("numpy", "scipy"):
        try:
            module = __import__(package)
            versions[package] = str(getattr(module, "__version__", "unknown"))
        except ImportError:  # pragma: no cover - both are hard dependencies
            versions[package] = None
    try:
        from importlib import metadata

        versions["repro"] = metadata.version("repro")
    except Exception:
        versions["repro"] = None
    return {
        "platform": platform.platform(),
        "argv0": sys.argv[0],
        "versions": versions,
    }


def git_revision(cwd: Optional[str] = None) -> Optional[dict]:
    """The current git revision (``None`` outside a repository)."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        if rev.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return {"revision": rev.stdout.strip(), "dirty": dirty}
    except (OSError, subprocess.TimeoutExpired):
        return None


@dataclass
class RunManifest:
    """Everything recorded about one observed run."""

    run_id: str
    command: str
    created: str
    argv: List[str] = field(default_factory=list)
    environment: dict = field(default_factory=dict)
    git: Optional[dict] = None
    config: dict = field(default_factory=dict)
    seeds: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    spans: List[dict] = field(default_factory=list)
    results: Optional[dict] = None
    cache: Optional[dict] = None
    serve: Optional[dict] = None
    schema_version: int = MANIFEST_SCHEMA_VERSION

    def to_dict(self) -> dict:
        """JSON-ready representation (the on-disk format)."""
        return {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "command": self.command,
            "created": self.created,
            "argv": list(self.argv),
            "environment": self.environment,
            "git": self.git,
            "config": self.config,
            "seeds": self.seeds,
            "metrics": self.metrics,
            "spans": list(self.spans),
            "results": self.results,
            "cache": self.cache,
            "serve": self.serve,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        """Inverse of :meth:`to_dict`."""
        return cls(
            run_id=data["run_id"],
            command=data["command"],
            created=data["created"],
            argv=list(data.get("argv", [])),
            environment=dict(data.get("environment", {})),
            git=data.get("git"),
            config=dict(data.get("config", {})),
            seeds=dict(data.get("seeds", {})),
            metrics=dict(data.get("metrics", {})),
            spans=list(data.get("spans", [])),
            results=data.get("results"),
            cache=data.get("cache"),
            serve=data.get("serve"),
            schema_version=int(data.get("schema_version", MANIFEST_SCHEMA_VERSION)),
        )

    def span_objects(self) -> List[Span]:
        """The recorded spans as :class:`~repro.obs.trace.Span` objects."""
        return [Span.from_dict(entry) for entry in self.spans]


def write_manifest(manifest: RunManifest, run_dir: str) -> str:
    """Write ``<run_dir>/manifest.json`` (creating the directory); returns its path."""
    os.makedirs(run_dir, exist_ok=True)
    path = os.path.join(run_dir, MANIFEST_FILENAME)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest.to_dict(), handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


def load_manifest(path: str) -> RunManifest:
    """Load a manifest from a file path or a run directory."""
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_FILENAME)
    with open(path, "r", encoding="utf-8") as handle:
        return RunManifest.from_dict(json.load(handle))


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------


def default_schema_path() -> str:
    """The packaged manifest schema (checked in next to this module)."""
    return os.path.join(os.path.dirname(__file__), "run_manifest.schema.json")


def load_schema(path: Optional[str] = None) -> dict:
    """Load a JSON schema (the packaged manifest schema by default)."""
    with open(path or default_schema_path(), "r", encoding="utf-8") as handle:
        return json.load(handle)


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _validate_node(value: Any, schema: dict, path: str, errors: List[str]) -> None:
    allowed = schema.get("type")
    if allowed is not None:
        types = allowed if isinstance(allowed, list) else [allowed]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            errors.append(f"{path}: expected type {allowed}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in enum {schema['enum']}")
    if isinstance(value, dict):
        for name in schema.get("required", []):
            if name not in value:
                errors.append(f"{path}: missing required property {name!r}")
        for name, subschema in schema.get("properties", {}).items():
            if name in value:
                _validate_node(value[name], subschema, f"{path}.{name}", errors)
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            _validate_node(item, schema["items"], f"{path}[{index}]", errors)


def validate(data: dict, schema: Optional[dict] = None) -> List[str]:
    """Validate a manifest dict against a schema; returns error strings.

    An empty list means the manifest is valid.  Covers the JSON-Schema
    subset used by ``run_manifest.schema.json``: ``type`` (scalar or list),
    ``required``, ``properties``, ``items`` and ``enum``.
    """
    if schema is None:
        schema = load_schema()
    errors: List[str] = []
    _validate_node(data, schema, "$", errors)
    return errors
