"""Zero-dependency tracing core: nestable spans, off by default.

The detection pipeline is a black box without telemetry — a ``table1`` run
spans Monte Carlo simulation, five dataset builds and five boundary fits,
and the bench gate can only say *that* something got slower, not *where*.
Spans answer the "where":

    with span("boundary.fit", boundary="B5", n=1500) as sp:
        ...
        sp.set(iterations=svm.n_iterations_)

Design constraints, in priority order:

* **Disabled is free.**  Tracing is off unless :func:`enable` was called;
  :func:`span` then returns a shared no-op context manager — one global
  read, no allocation — so the PR-1 hot paths keep their timings.
* **Nestable.**  An enabled tracer keeps a span stack; a span started while
  another is open becomes its child, giving a proper call tree.
* **Pool-transparent.**  Work dispatched through
  :func:`repro.utils.parallel.parallel_map` runs in worker processes with
  their own module state.  :func:`wrap_pool_task` captures the dispatching
  span, the wrapper collects every span (and metrics delta) the worker
  produces for one item, and :func:`unwrap_pool_results` re-parents them
  under the dispatching span with the worker's pid attached — the report
  shows one tree regardless of ``n_jobs``.
* **Never touches randomness.**  Instrumentation reads clocks only, so
  results are bit-identical with tracing on or off (guarded by
  ``tests/test_parallel_determinism.py``).

Wall time is ``time.perf_counter`` (monotonic, high resolution), CPU time is
``time.process_time`` (per process — a worker span's CPU is measured in the
worker), and ``start`` is epoch time so spans from different processes share
one timeline.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "enable",
    "disable",
    "enabled",
    "finished_spans",
    "span",
    "unwrap_pool_results",
    "wrap_pool_task",
]


@dataclass
class Span:
    """One finished (or open) traced operation.

    Attributes
    ----------
    name:
        Dot-separated span name (see the taxonomy in DESIGN.md §8).
    span_id / parent_id:
        Tracer-local integer ids; ``parent_id`` is ``None`` for a root span.
    start:
        Epoch seconds at ``__enter__`` (comparable across processes).
    wall / cpu:
        Elapsed wall-clock and CPU seconds of the span body.
    attributes:
        Key/value payload (sizes, hyper-parameters, fit diagnostics).
    worker:
        Pid of the pool worker that produced the span; ``None`` for spans
        recorded in the dispatching process.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    wall: float = 0.0
    cpu: float = 0.0
    attributes: Dict[str, Any] = field(default_factory=dict)
    worker: Optional[int] = None

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the manifest and the sink)."""
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "wall": self.wall,
            "cpu": self.cpu,
            "attributes": dict(self.attributes),
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            span_id=data["id"],
            parent_id=data.get("parent"),
            start=data.get("start", 0.0),
            wall=data.get("wall", 0.0),
            cpu=data.get("cpu", 0.0),
            attributes=dict(data.get("attributes", {})),
            worker=data.get("worker"),
        )


class Tracer:
    """Collects spans for one enabled tracing session."""

    def __init__(self):
        self._counter = itertools.count(1)
        self._stack: List[Span] = []
        self.finished: List[Span] = []

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span (``None`` outside any span)."""
        return self._stack[-1].span_id if self._stack else None

    def _open(self, name: str, attributes: Dict[str, Any]) -> Span:
        opened = Span(
            name=name,
            span_id=next(self._counter),
            parent_id=self.current_span_id(),
            start=time.time(),
            attributes=attributes,
        )
        self._stack.append(opened)
        return opened

    def _close(self, closed: Span) -> None:
        # ``with`` blocks guarantee well-nested open/close; pop until the
        # closing span so a span leaked by an error path cannot wedge the
        # stack for the rest of the session.
        while self._stack:
            top = self._stack.pop()
            if top is closed:
                break
        self.finished.append(closed)

    def adopt(self, spans: List[Span], parent_id: Optional[int] = None,
              worker: Optional[int] = None) -> None:
        """Graft spans recorded by another tracer (a pool worker) in here.

        Worker tracers number spans from 1, so ids are remapped onto this
        tracer's counter; worker-root spans are re-parented under
        ``parent_id`` (the span that dispatched the work).
        """
        mapping = {recorded.span_id: next(self._counter) for recorded in spans}
        for recorded in spans:
            recorded.span_id = mapping[recorded.span_id]
            recorded.parent_id = mapping.get(recorded.parent_id, parent_id)
            if recorded.worker is None:
                recorded.worker = worker
            self.finished.append(recorded)


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes) -> "_NoopSpan":
        return self


class _LiveSpan:
    """Context manager recording one span on the active tracer."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span", "_t0", "_c0")

    def __init__(self, tracer: Tracer, name: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> "_LiveSpan":
        self._span = self._tracer._open(self._name, self._attributes)
        self._c0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.wall = time.perf_counter() - self._t0
        self._span.cpu = time.process_time() - self._c0
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)
        return False

    def set(self, **attributes) -> "_LiveSpan":
        """Attach attributes to the open span (chainable)."""
        self._span.attributes.update(attributes)
        return self


_NOOP = _NoopSpan()
_tracer: Optional[Tracer] = None


def enable() -> Tracer:
    """Install a fresh tracer (discarding any previous session's spans)."""
    global _tracer
    _tracer = Tracer()
    return _tracer


def disable() -> List[Span]:
    """Stop tracing; returns the finished spans of the ended session."""
    global _tracer
    spans = _tracer.finished if _tracer is not None else []
    _tracer = None
    return spans


def enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _tracer is not None


def finished_spans() -> List[Span]:
    """Spans finished so far in the active session (empty when disabled)."""
    return list(_tracer.finished) if _tracer is not None else []


def span(name: str, **attributes):
    """Open a span context; a shared no-op when tracing is disabled.

    The returned object supports ``set(**attrs)`` in both states, so
    instrumented code never needs an ``if enabled()`` guard.
    """
    tracer = _tracer
    if tracer is None:
        return _NOOP
    return _LiveSpan(tracer, name, attributes)


# ----------------------------------------------------------------------
# process-pool plumbing (used by repro.utils.parallel)
# ----------------------------------------------------------------------


class _PoolResult:
    """A worker's return value bundled with its telemetry."""

    __slots__ = ("value", "spans", "metrics", "pid", "parent_id")

    def __init__(self, value, spans, metrics, pid, parent_id):
        self.value = value
        self.spans = spans
        self.metrics = metrics
        self.pid = pid
        self.parent_id = parent_id


class _PoolTask:
    """Picklable wrapper running one work item under a fresh worker tracer.

    A forked worker inherits the parent's module state (including an enabled
    tracer full of parent spans), so the wrapper installs a clean tracer and
    metrics registry per item and restores the inherited state afterwards —
    every span and metric increment is reported exactly once, through the
    returned :class:`_PoolResult`.
    """

    __slots__ = ("fn", "parent_id")

    def __init__(self, fn, parent_id):
        self.fn = fn
        self.parent_id = parent_id

    def __call__(self, item):
        global _tracer
        from repro.obs import metrics as obs_metrics

        outer_tracer = _tracer
        outer_registry = obs_metrics.swap_registry(obs_metrics.MetricsRegistry())
        _tracer = Tracer()
        try:
            value = self.fn(item)
            return _PoolResult(
                value=value,
                spans=list(_tracer.finished),
                metrics=obs_metrics.snapshot(),
                pid=os.getpid(),
                parent_id=self.parent_id,
            )
        finally:
            _tracer = outer_tracer
            obs_metrics.swap_registry(outer_registry)


def wrap_pool_task(fn):
    """Wrap a pool worker function so its telemetry survives the pool.

    Returns ``fn`` unchanged when tracing is disabled, keeping the pool
    payload identical to the untraced run.
    """
    if _tracer is None:
        return fn
    return _PoolTask(fn, _tracer.current_span_id())


def unwrap_pool_results(results: List) -> List:
    """Extract plain values from pool results, adopting worker telemetry."""
    from repro.obs import metrics as obs_metrics

    values = []
    for result in results:
        if isinstance(result, _PoolResult):
            if _tracer is not None:
                _tracer.adopt(result.spans, parent_id=result.parent_id,
                              worker=result.pid)
            obs_metrics.merge(result.metrics)
            values.append(result.value)
        else:
            values.append(result)
    return values
