"""The UWB transmitter: process-dependent amplitude and centre frequency.

Two analog quantities carry the process signature into the fingerprint:

* **output amplitude** — set by the power-amplifier output stage's drive
  current into the antenna load (alpha-power law on the PA's local
  parameters);
* **pulse centre frequency** — set by the pulse-shaping delay cell, whose
  delay is CV/I on the shaper's local parameters.

Both are evaluated from :class:`~repro.process.parameters.ProcessParameters`
local to the respective structure, so PCMs (a different structure on the same
die) are correlated with, but not identical to, the transmitter behaviour.

Hardware Trojans hook in through a
:class:`~repro.trojans.base.TrojanModel` which may perturb per-pulse
amplitude or frequency as a function of the secret key bit being leaked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.circuits.mosfet import DEFAULT_VDD, AlphaPowerMosfet, MosfetPolarity
from repro.rf.pulse import PulseTrain
from repro.process.parameters import ProcessParameters

#: Antenna/package load the PA output stage drives, in ohms.
ANTENNA_LOAD_OHM = 50.0

#: Shaping-cell capacitance at nominal cpar, in fF.
SHAPER_CAP_FF = 90.0

#: Calibration constant mapping shaper delay to pulse centre frequency.
SHAPER_FREQ_SCALE = 0.25


@dataclass
class UwbTransmitter:
    """UWB transmitter front-end of the wireless cryptographic IC.

    Parameters
    ----------
    pa_params:
        Local process parameters of the power-amplifier output stage.
    shaper_params:
        Local process parameters of the pulse-shaping cell.  Defaults to
        ``pa_params`` when the caller does not model within-die mismatch.
    vdd:
        Supply voltage.
    """

    pa_params: ProcessParameters
    shaper_params: Optional[ProcessParameters] = None
    vdd: float = DEFAULT_VDD

    #: PA output NMOS; large device, sized for the antenna drive.
    _pa_device = AlphaPowerMosfet(MosfetPolarity.NMOS, width_um=150.0)
    #: Shaper drive NMOS.
    _shaper_device = AlphaPowerMosfet(MosfetPolarity.NMOS, width_um=18.0)

    def __post_init__(self):
        if self.shaper_params is None:
            self.shaper_params = self.pa_params
        # Both analog quantities are pure functions of the frozen process
        # parameters, yet every transmitted block re-reads them (nm blocks x
        # 3 versions per device).  Evaluate once per transmitter instead.
        self._amplitude: Optional[float] = None
        self._frequency_ghz: Optional[float] = None

    def output_amplitude(self) -> float:
        """Nominal per-pulse peak amplitude in volts (I_drive * R_antenna)."""
        if self._amplitude is None:
            current = self._pa_device.saturation_current(self.pa_params, self.vdd)
            amplitude = current * ANTENNA_LOAD_OHM
            # The PA clips near the rail; keep amplitudes physical.
            self._amplitude = float(min(amplitude, 0.95 * self.vdd))
        return self._amplitude

    def center_frequency_ghz(self) -> float:
        """Pulse centre frequency in GHz, set by the shaping-cell delay."""
        if self._frequency_ghz is None:
            current = self._shaper_device.saturation_current(self.shaper_params, self.vdd)
            cap_f = SHAPER_CAP_FF * self.shaper_params.cpar * 1e-15
            delay_s = cap_f * self.vdd / current
            self._frequency_ghz = float(SHAPER_FREQ_SCALE / (delay_s * 1e9))
        return self._frequency_ghz

    def transmit(self, bits: np.ndarray, trojan=None, key_bits: Optional[np.ndarray] = None,
                 ) -> PulseTrain:
        """Transmit one 128-bit ciphertext block with on-off keying.

        A pulse is emitted for every '1' ciphertext bit; '0' bits are silent.
        When a ``trojan`` is installed it may perturb each emitted pulse as a
        function of the key bit at the same index (``key_bits``), hiding the
        key in the amplitude/frequency margins.

        Parameters
        ----------
        bits:
            The 128 ciphertext bits, MSB-first.
        trojan:
            Optional :class:`~repro.trojans.base.TrojanModel`.
        key_bits:
            The 128 secret key bits; required when ``trojan`` is given.
        """
        bits = np.asarray(bits, dtype=int)
        if bits.ndim != 1:
            raise ValueError(f"bits must be 1-D, got shape {bits.shape}")
        if not np.all((bits == 0) | (bits == 1)):
            raise ValueError("bits must contain only 0 and 1")

        emitted = np.flatnonzero(bits == 1)
        amplitudes = np.full(emitted.shape, self.output_amplitude())
        frequencies = np.full(emitted.shape, self.center_frequency_ghz())

        if trojan is not None:
            if key_bits is None:
                raise ValueError("key_bits are required when a trojan is installed")
            key_bits = np.asarray(key_bits, dtype=int)
            if key_bits.shape != bits.shape:
                raise ValueError(
                    f"key_bits shape {key_bits.shape} must match bits shape {bits.shape}"
                )
            amplitudes, frequencies = trojan.modulate(
                bit_indices=emitted,
                leaked_bits=key_bits[emitted],
                amplitudes=amplitudes,
                center_frequencies_ghz=frequencies,
            )

        return PulseTrain(
            bit_indices=emitted,
            amplitudes=amplitudes,
            center_frequencies_ghz=frequencies,
        )


def population_output_amplitude(pa_params: ProcessParameters,
                                vdd: float = DEFAULT_VDD) -> np.ndarray:
    """Per-device PA output amplitude for array-valued local parameters.

    Element ``i`` is bitwise identical to
    ``UwbTransmitter(pa_params=<die i>).output_amplitude()`` — the same
    current expression followed by the same rail clip (``np.minimum``
    selects the identical float the scalar ``min`` does).
    """
    current = UwbTransmitter._pa_device.saturation_current(pa_params, vdd)
    amplitude = current * ANTENNA_LOAD_OHM
    return np.minimum(amplitude, 0.95 * vdd)


def population_center_frequency_ghz(shaper_params: ProcessParameters,
                                    vdd: float = DEFAULT_VDD) -> np.ndarray:
    """Per-device pulse centre frequency for array-valued local parameters."""
    current = UwbTransmitter._shaper_device.saturation_current(shaper_params, vdd)
    cap_f = SHAPER_CAP_FF * shaper_params.cpar * 1e-15
    delay_s = cap_f * vdd / current
    return SHAPER_FREQ_SCALE / (delay_s * 1e9)
