"""RF substrate: UWB pulse transmission, channel, and power measurement.

The analog part of the platform chip is an Ultra-Wide-Band transmitter that
sends each ciphertext bit as a Gaussian monocycle pulse.  The side-channel
fingerprint of the paper is the *measured output power* of entire 128-bit
block transmissions, observed through a band-limited receiver.
"""

from repro.rf.channel import AwgnChannel
from repro.rf.pulse import GaussianMonocycle, PulseTrain
from repro.rf.receiver import BandPassReceiver
from repro.rf.spectrum import occupied_bandwidth_ghz, pulse_spectrum, spectral_peak_ghz
from repro.rf.uwb import UwbTransmitter

__all__ = [
    "GaussianMonocycle",
    "PulseTrain",
    "UwbTransmitter",
    "AwgnChannel",
    "BandPassReceiver",
    "pulse_spectrum",
    "spectral_peak_ghz",
    "occupied_bandwidth_ghz",
]
