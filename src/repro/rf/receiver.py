"""Band-limited receiver / power meter front-end.

The side-channel fingerprint of the paper is the measured transmission power
of a 128-bit block.  The bench receiver integrates pulse energy through a
band-pass response centred on the nominal UWB band.  Because the response
rolls off away from the passband centre, a Trojan that detunes pulse
*frequency* also changes the measured *power* — this is how Trojan II shows
up in the same fingerprint as Trojan I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.pulse import PulseTrain


@dataclass(frozen=True)
class BandPassReceiver:
    """Gaussian band-pass energy detector.

    Parameters
    ----------
    center_frequency_ghz:
        Passband centre of the measurement receiver.
    bandwidth_ghz:
        1-sigma width of the (Gaussian-shaped) band response.
    """

    center_frequency_ghz: float = 4.30
    bandwidth_ghz: float = 3.00

    def __post_init__(self):
        if self.center_frequency_ghz <= 0:
            raise ValueError(
                f"center_frequency_ghz must be positive, got {self.center_frequency_ghz}"
            )
        if self.bandwidth_ghz <= 0:
            raise ValueError(f"bandwidth_ghz must be positive, got {self.bandwidth_ghz}")

    def band_response(self, frequencies_ghz: np.ndarray) -> np.ndarray:
        """Fraction of pulse energy captured at each centre frequency."""
        detune = (np.asarray(frequencies_ghz, dtype=float) - self.center_frequency_ghz)
        return np.exp(-0.5 * (detune / self.bandwidth_ghz) ** 2)

    def block_power(self, train: PulseTrain) -> float:
        """Measured power of one block transmission, in V^2*ns (energy units).

        The block duration is fixed by the protocol, so total captured energy
        and average power differ only by a constant; we report energy units.
        """
        if len(train) == 0:
            return 0.0
        captured = train.pulse_energies() * self.band_response(train.center_frequencies_ghz)
        return float(np.sum(captured))

    def block_powers(self, amplitudes: np.ndarray,
                     center_frequencies_ghz: np.ndarray) -> np.ndarray:
        """Block powers of many devices at once.

        ``amplitudes`` and ``center_frequencies_ghz`` are
        ``(n_devices, n_pulses)`` per-pulse arrays (one row per device's
        pulse train).  Row ``i`` of the result is bitwise identical to
        :meth:`block_power` on that row's :class:`PulseTrain`: the energy
        expression matches
        :meth:`~repro.rf.pulse.PulseTrain.pulse_energies` operation for
        operation, and a contiguous 2-D ``np.sum`` over the pulse axis uses
        the same pairwise reduction as the per-row 1-D sum.
        """
        amplitudes = np.asarray(amplitudes, dtype=float)
        frequencies = np.asarray(center_frequencies_ghz, dtype=float)
        if amplitudes.shape != frequencies.shape:
            raise ValueError(
                f"amplitudes shape {amplitudes.shape} != frequencies shape "
                f"{frequencies.shape}"
            )
        if amplitudes.shape[-1] == 0:
            return np.zeros(amplitudes.shape[:-1], dtype=float)
        sigma = 1.0 / (2.0 * np.pi * frequencies)
        energies = amplitudes**2 * sigma * np.e * np.sqrt(np.pi) / 2.0
        captured = energies * self.band_response(frequencies)
        return np.sum(np.ascontiguousarray(captured), axis=-1)
