"""Band-limited receiver / power meter front-end.

The side-channel fingerprint of the paper is the measured transmission power
of a 128-bit block.  The bench receiver integrates pulse energy through a
band-pass response centred on the nominal UWB band.  Because the response
rolls off away from the passband centre, a Trojan that detunes pulse
*frequency* also changes the measured *power* — this is how Trojan II shows
up in the same fingerprint as Trojan I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.pulse import PulseTrain


@dataclass(frozen=True)
class BandPassReceiver:
    """Gaussian band-pass energy detector.

    Parameters
    ----------
    center_frequency_ghz:
        Passband centre of the measurement receiver.
    bandwidth_ghz:
        1-sigma width of the (Gaussian-shaped) band response.
    """

    center_frequency_ghz: float = 4.30
    bandwidth_ghz: float = 3.00

    def __post_init__(self):
        if self.center_frequency_ghz <= 0:
            raise ValueError(
                f"center_frequency_ghz must be positive, got {self.center_frequency_ghz}"
            )
        if self.bandwidth_ghz <= 0:
            raise ValueError(f"bandwidth_ghz must be positive, got {self.bandwidth_ghz}")

    def band_response(self, frequencies_ghz: np.ndarray) -> np.ndarray:
        """Fraction of pulse energy captured at each centre frequency."""
        detune = (np.asarray(frequencies_ghz, dtype=float) - self.center_frequency_ghz)
        return np.exp(-0.5 * (detune / self.bandwidth_ghz) ** 2)

    def block_power(self, train: PulseTrain) -> float:
        """Measured power of one block transmission, in V^2*ns (energy units).

        The block duration is fixed by the protocol, so total captured energy
        and average power differ only by a constant; we report energy units.
        """
        if len(train) == 0:
            return 0.0
        captured = train.pulse_energies() * self.band_response(train.center_frequencies_ghz)
        return float(np.sum(captured))
