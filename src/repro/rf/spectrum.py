"""Waveform-level spectral analysis of UWB pulses.

Validates the frequency-domain behaviour the power fingerprint relies on:
the Gaussian monocycle's spectrum peaks at its centre frequency, and a
frequency-modulating Trojan shifts that peak.  Used by tests and the attack
demo; the detection pipeline itself never needs sampled waveforms (the
receiver works with closed-form pulse energies).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.rf.pulse import GaussianMonocycle


def pulse_spectrum(
    pulse: GaussianMonocycle,
    span_sigmas: float = 250.0,
    n_samples: int = 16384,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample the pulse and return (frequencies_ghz, |spectrum|).

    The time base spans ``span_sigmas`` Gaussian time constants around the
    pulse centre; times are in nanoseconds so frequencies come out in GHz.
    The pulse occupies only a few sigmas — the long, mostly-zero span is
    deliberate zero padding, setting the frequency resolution
    ``df = 1 / (2 * span_sigmas * sigma)``.
    """
    if span_sigmas <= 0:
        raise ValueError(f"span_sigmas must be positive, got {span_sigmas}")
    if n_samples < 16:
        raise ValueError(f"n_samples must be >= 16, got {n_samples}")
    half_span = span_sigmas * pulse.sigma_ns
    t = np.linspace(-half_span, half_span, n_samples, endpoint=False)
    waveform = pulse.waveform(t)
    dt = t[1] - t[0]
    spectrum = np.abs(np.fft.rfft(waveform)) * dt
    freqs = np.fft.rfftfreq(n_samples, d=dt)
    return freqs, spectrum


def spectral_peak_ghz(pulse: GaussianMonocycle, **kwargs) -> float:
    """Frequency at which the sampled pulse spectrum peaks, in GHz."""
    freqs, spectrum = pulse_spectrum(pulse, **kwargs)
    return float(freqs[int(np.argmax(spectrum))])


def occupied_bandwidth_ghz(
    pulse: GaussianMonocycle, fraction: float = 0.99, **kwargs
) -> float:
    """Bandwidth containing ``fraction`` of the pulse energy, in GHz.

    UWB regulatory masks are defined in terms of occupied bandwidth; the
    monocycle's is a sizeable fraction of its centre frequency.
    """
    if not 0 < fraction < 1:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    freqs, spectrum = pulse_spectrum(pulse, **kwargs)
    energy = spectrum**2
    total = energy.sum()
    if total <= 0:
        return 0.0
    order = np.argsort(energy)[::-1]
    cumulative = np.cumsum(energy[order])
    kept = order[: int(np.searchsorted(cumulative, fraction * total)) + 1]
    df = freqs[1] - freqs[0]
    return float(kept.size * df)
