"""The public wireless channel between the chip and the measurement bench.

The channel applies a (calibrated, hence near-unity) path gain plus small
per-pulse multiplicative fading.  Trojan leakage in the paper travels over
exactly this channel: an attacker who knows what to listen for recovers the
key from pulse amplitudes/frequencies, while a legitimate receiver sees a
fully functional transmission.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.pulse import PulseTrain
from repro.utils.rng import SeedLike, as_generator


@dataclass
class AwgnChannel:
    """Multiplicative-gain channel with per-pulse amplitude jitter.

    Parameters
    ----------
    path_gain:
        Mean amplitude gain from antenna to bench (1.0 = calibrated out).
    fading_sigma:
        Relative standard deviation of per-pulse amplitude fading.
    seed:
        Seed or generator for the fading process.
    """

    path_gain: float = 1.0
    fading_sigma: float = 0.0
    seed: SeedLike = None

    def __post_init__(self):
        if self.path_gain <= 0:
            raise ValueError(f"path_gain must be positive, got {self.path_gain}")
        if self.fading_sigma < 0:
            raise ValueError(f"fading_sigma must be non-negative, got {self.fading_sigma}")
        self._rng = as_generator(self.seed)

    def propagate(self, train: PulseTrain) -> PulseTrain:
        """Return the pulse train as observed at the receiving antenna."""
        gains = np.full(len(train), self.path_gain)
        if self.fading_sigma > 0:
            gains = gains * (1.0 + self.fading_sigma * self._rng.standard_normal(len(train)))
            gains = np.clip(gains, 0.0, None)
        return PulseTrain(
            bit_indices=train.bit_indices.copy(),
            amplitudes=train.amplitudes * gains,
            center_frequencies_ghz=train.center_frequencies_ghz.copy(),
        )
