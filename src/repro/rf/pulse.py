"""Gaussian monocycle pulses and vectorized pulse trains.

A UWB transmitter emits very short pulses whose energy concentrates around a
centre frequency set by the pulse-shaping circuit.  For fingerprinting we
only need each pulse's amplitude and centre frequency — the receiver reduces
everything to band-limited energy — so a :class:`PulseTrain` stores those as
flat numpy arrays rather than sampled waveforms.  :class:`GaussianMonocycle`
provides the waveform-level view for tests and the attacker demo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GaussianMonocycle:
    """One Gaussian monocycle pulse: first derivative of a Gaussian.

    Parameters
    ----------
    amplitude:
        Peak amplitude in volts.
    center_frequency_ghz:
        Frequency at which the pulse spectrum peaks.
    """

    amplitude: float
    center_frequency_ghz: float

    def __post_init__(self):
        if self.amplitude < 0:
            raise ValueError(f"amplitude must be non-negative, got {self.amplitude}")
        if self.center_frequency_ghz <= 0:
            raise ValueError(
                f"center_frequency_ghz must be positive, got {self.center_frequency_ghz}"
            )

    @property
    def sigma_ns(self) -> float:
        """Gaussian time constant; the monocycle spectrum peaks at 1/(2*pi*sigma)."""
        return 1.0 / (2.0 * np.pi * self.center_frequency_ghz)

    def waveform(self, t_ns: np.ndarray) -> np.ndarray:
        """Time-domain waveform v(t) = -A * (t/sigma) * exp(0.5 - t^2/(2 sigma^2)).

        Normalized so the peak magnitude equals ``amplitude``.
        """
        t = np.asarray(t_ns, dtype=float)
        s = self.sigma_ns
        return -self.amplitude * (t / s) * np.exp(0.5 - t**2 / (2.0 * s**2))

    def energy(self) -> float:
        """Pulse energy integral of v(t)^2 in V^2*ns (closed form)."""
        # Int (t/s)^2 exp(1 - t^2/s^2) dt = s * e * sqrt(pi)/2 * ... derive:
        # v^2 = A^2 (t/s)^2 exp(1 - t^2/s^2); with u = t/s:
        # E = A^2 s e Int u^2 exp(-u^2) du = A^2 s e sqrt(pi)/2.
        return float(self.amplitude**2 * self.sigma_ns * np.e * np.sqrt(np.pi) / 2.0)

    def spectrum_peak_frequency_ghz(self) -> float:
        """Frequency of the spectral peak (equals the centre frequency)."""
        return self.center_frequency_ghz


@dataclass
class PulseTrain:
    """A block transmission as parallel arrays, one entry per emitted pulse.

    Attributes
    ----------
    bit_indices:
        Position (0..127) of the ciphertext bit each pulse encodes.
    amplitudes:
        Per-pulse peak amplitude in volts.
    center_frequencies_ghz:
        Per-pulse centre frequency.
    """

    bit_indices: np.ndarray
    amplitudes: np.ndarray
    center_frequencies_ghz: np.ndarray

    def __post_init__(self):
        self.bit_indices = np.asarray(self.bit_indices, dtype=int)
        self.amplitudes = np.asarray(self.amplitudes, dtype=float)
        self.center_frequencies_ghz = np.asarray(self.center_frequencies_ghz, dtype=float)
        n = self.bit_indices.shape[0]
        if self.amplitudes.shape != (n,) or self.center_frequencies_ghz.shape != (n,):
            raise ValueError("PulseTrain arrays must be 1-D with equal lengths")
        if np.any(self.amplitudes < 0):
            raise ValueError("pulse amplitudes must be non-negative")
        if np.any(self.center_frequencies_ghz <= 0):
            raise ValueError("pulse centre frequencies must be positive")

    def __len__(self) -> int:
        return int(self.bit_indices.shape[0])

    def pulse_energies(self) -> np.ndarray:
        """Per-pulse energy in V^2*ns (vectorized monocycle energy)."""
        sigma = 1.0 / (2.0 * np.pi * self.center_frequencies_ghz)
        return self.amplitudes**2 * sigma * np.e * np.sqrt(np.pi) / 2.0

    def pulses(self):
        """Iterate waveform-level :class:`GaussianMonocycle` views (slow path)."""
        for amplitude, freq in zip(self.amplitudes, self.center_frequencies_ghz):
            yield GaussianMonocycle(amplitude=float(amplitude), center_frequency_ghz=float(freq))
