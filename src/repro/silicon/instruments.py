"""Bench instruments: every silicon measurement passes through one of these.

Simulated (pre-manufacturing) data is noise-free — Spice does not have a
noisy power meter — while silicon measurements carry gain error and additive
noise.  Keeping instruments explicit lets tests and ablations control the
measurement-noise floor independently of process variation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass
class Instrument:
    """A measurement channel with relative gain noise and additive noise.

    measured = true * (1 + gain_sigma * z1) + offset_sigma * z2

    Parameters
    ----------
    gain_sigma:
        Relative (multiplicative) 1-sigma error per reading.
    offset_sigma:
        Additive 1-sigma error per reading, in the measurand's units.
    seed:
        Seed or shared generator.
    """

    gain_sigma: float = 0.0
    offset_sigma: float = 0.0
    seed: SeedLike = None

    def __post_init__(self):
        if self.gain_sigma < 0 or self.offset_sigma < 0:
            raise ValueError("noise sigmas must be non-negative")
        self._rng = as_generator(self.seed)

    def read(self, true_value: float) -> float:
        """One noisy scalar reading."""
        gain = 1.0 + self.gain_sigma * self._rng.standard_normal()
        return float(true_value * gain + self.offset_sigma * self._rng.standard_normal())

    def read_many(self, true_values) -> np.ndarray:
        """Independent noisy readings of a vector of true values."""
        values = np.asarray(true_values, dtype=float)
        gains = 1.0 + self.gain_sigma * self._rng.standard_normal(values.shape)
        offsets = self.offset_sigma * self._rng.standard_normal(values.shape)
        return values * gains + offsets


class PowerMeter(Instrument):
    """RF power meter used for fingerprint measurements (0.15 % gain noise)."""

    def __init__(self, seed: SeedLike = None, gain_sigma: float = 0.0015):
        super().__init__(gain_sigma=gain_sigma, offset_sigma=0.0, seed=seed)


class DelayAnalyzer(Instrument):
    """Time-interval analyzer used for PCM path delays (0.2 % gain noise)."""

    def __init__(self, seed: SeedLike = None, gain_sigma: float = 0.002):
        super().__init__(gain_sigma=gain_sigma, offset_sigma=0.0, seed=seed)
