"""Silicon substrate: foundry fabrication, PCM structures and instruments.

This package synthesizes what the paper obtains from real TSMC 350 nm
silicon: a population of fabricated dies whose process operating point has
drifted away from the (stale) Spice simulation deck, plus the on-die Process
Control Monitor (PCM) structures that anchor the detection method in silicon.

Base process definitions (parameters, variation, wafers) live in
:mod:`repro.process` and are re-exported here for convenience.
"""

from repro.process.parameters import (
    PARAMETER_NAMES,
    OperatingPointShift,
    ProcessParameters,
    nominal_350nm,
)
from repro.process.variation import VariationModel, default_variation_350nm
from repro.process.wafer import DieSite, Lot, Wafer
from repro.silicon.foundry import FabricatedDie, Foundry
from repro.silicon.instruments import DelayAnalyzer, Instrument, PowerMeter
from repro.silicon.pcm import (
    DigitalFmaxPCM,
    PCMSuite,
    PathDelayPCM,
    RingOscillatorPCM,
)

__all__ = [
    "ProcessParameters",
    "OperatingPointShift",
    "PARAMETER_NAMES",
    "nominal_350nm",
    "VariationModel",
    "default_variation_350nm",
    "Foundry",
    "FabricatedDie",
    "PathDelayPCM",
    "RingOscillatorPCM",
    "DigitalFmaxPCM",
    "PCMSuite",
    "Instrument",
    "PowerMeter",
    "DelayAnalyzer",
    "Lot",
    "Wafer",
    "DieSite",
]
