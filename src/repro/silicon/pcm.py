"""Process Control Monitor (PCM) structures.

PCMs (a.k.a. e-tests) are simple structures on the wafer kerf or the die that
probe the operating point of the fabrication process.  They are functionally
independent of the product circuit and are scrutinized by process engineers
for yield learning — which is why the paper treats them as the root of trust
that replaces golden chips.

The platform chip of the paper carries ``np = 1`` PCM: the delay of a simple
digital path.  We also provide a ring-oscillator PCM for the ``np > 1``
ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.circuits.gates import inverter, nand2, nor2
from repro.circuits.mosfet import DEFAULT_VDD
from repro.circuits.path import CriticalPath
from repro.process.parameters import ProcessParameters


@dataclass(frozen=True)
class PathDelayPCM:
    """Delay of a simple digital path (an inverter chain), in nanoseconds."""

    name: str = "path_delay_ns"
    stage_count: int = 31
    output_load_ff: float = 25.0
    vdd: float = DEFAULT_VDD

    def __post_init__(self):
        if self.stage_count <= 0:
            raise ValueError(f"stage_count must be positive, got {self.stage_count}")
        path = CriticalPath.inverter_chain(
            self.stage_count, inverter, name=self.name, output_load_ff=self.output_load_ff
        )
        object.__setattr__(self, "_path", path)

    def measure(self, params: ProcessParameters) -> float:
        """Noise-free path delay under local parameters ``params``."""
        return self._path.delay_ns(params, vdd=self.vdd)


@dataclass(frozen=True)
class RingOscillatorPCM:
    """Frequency of an odd-stage ring oscillator, in MHz."""

    name: str = "ring_osc_mhz"
    stage_count: int = 51
    vdd: float = DEFAULT_VDD

    def __post_init__(self):
        if self.stage_count < 3 or self.stage_count % 2 == 0:
            raise ValueError(f"stage_count must be an odd integer >= 3, got {self.stage_count}")
        # A ring stage drives exactly one identical stage: no external load.
        path = CriticalPath.inverter_chain(
            self.stage_count, inverter, name=self.name, output_load_ff=0.0
        )
        object.__setattr__(self, "_path", path)

    def measure(self, params: ProcessParameters) -> float:
        """Oscillation frequency f = 1 / (2 * N * t_stage), in MHz."""
        # Total chain delay already sums N stage delays; the ring period is
        # twice that (rising + falling traversal).
        total_ns = self._path.delay_ns(params, vdd=self.vdd)
        period_ns = 2.0 * total_ns
        return 1e3 / period_ns  # ns -> MHz


@dataclass(frozen=True)
class DigitalFmaxPCM:
    """Maximum clock frequency of a registered digital block, in MHz.

    Modelled as the reciprocal of a heterogeneous critical path — a mix of
    NAND/NOR/inverter stages like the longest path through an AES round —
    plus a flop setup overhead.  Product fmax screening data is routinely
    available at production test, making this a realistic additional PCM.
    """

    name: str = "digital_fmax_mhz"
    rounds_of: int = 4
    setup_overhead_ns: float = 0.35
    vdd: float = DEFAULT_VDD

    def __post_init__(self):
        if self.rounds_of <= 0:
            raise ValueError(f"rounds_of must be positive, got {self.rounds_of}")
        if self.setup_overhead_ns < 0:
            raise ValueError(
                f"setup_overhead_ns must be non-negative, got {self.setup_overhead_ns}"
            )
        gates = []
        for _ in range(self.rounds_of):
            gates.extend([nand2(), nor2(), inverter(), nand2(), inverter()])
        path = CriticalPath(gates=gates, output_load_ff=18.0, name=self.name)
        object.__setattr__(self, "_path", path)

    def measure(self, params: ProcessParameters) -> float:
        """fmax = 1 / (t_path + t_setup), in MHz."""
        period_ns = self._path.delay_ns(params, vdd=self.vdd) + self.setup_overhead_ns
        return 1e3 / period_ns


@dataclass
class PCMSuite:
    """The ordered set of PCM structures measured on every device.

    The paper uses a single path-delay PCM (``np = 1``); ablation A3 sweeps
    richer suites.
    """

    monitors: List = field(default_factory=lambda: [PathDelayPCM()])

    def __post_init__(self):
        if not self.monitors:
            raise ValueError("a PCM suite needs at least one monitor")

    @property
    def names(self) -> List[str]:
        """Feature names, in measurement order."""
        return [monitor.name for monitor in self.monitors]

    def __len__(self) -> int:
        return len(self.monitors)

    def measure(self, params: ProcessParameters) -> List[float]:
        """Noise-free measurements of every monitor under ``params``."""
        return [monitor.measure(params) for monitor in self.monitors]

    def measure_population(self, population) -> np.ndarray:
        """Noise-free ``(n_devices, np)`` PCM matrix of a whole population.

        ``population`` is a :class:`~repro.process.population.DiePopulation`;
        each monitor reads its own on-die structure (``pcm.<name>``), the
        same naming the scalar
        :meth:`~repro.testbed.campaign.FingerprintCampaign.pcm_vector` uses,
        so row ``i`` is bitwise identical to the scalar PCM vector of die
        ``i``.  Every monitor's compact model is a chain of elementwise
        ufuncs, so the batched read is one pass over ``(n,)`` arrays per
        monitor.
        """
        columns = [
            np.asarray(
                monitor.measure(population.structure_params(f"pcm.{monitor.name}")),
                dtype=float,
            )
            for monitor in self.monitors
        ]
        return np.stack(columns, axis=1)

    @classmethod
    def paper_default(cls) -> "PCMSuite":
        """The paper's configuration: one path-delay measurement."""
        return cls(monitors=[PathDelayPCM()])

    @classmethod
    def extended(cls) -> "PCMSuite":
        """A richer suite for ablations: path delay + ring oscillator."""
        return cls(monitors=[PathDelayPCM(), RingOscillatorPCM()])

    @classmethod
    def full(cls) -> "PCMSuite":
        """Every monitor: path delay, ring oscillator, digital fmax."""
        return cls(monitors=[PathDelayPCM(), RingOscillatorPCM(), DigitalFmaxPCM()])
