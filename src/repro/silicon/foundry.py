"""The (untrusted) foundry: fabricates die populations at its operating point.

The foundry's operating point is the deck nominal plus an
:class:`~repro.process.parameters.OperatingPointShift` — the drift accumulated
since the Spice model was frozen.  Fabrication applies the full variation
hierarchy (lot → die → within-die), and each fabricated die exposes
deterministic per-structure local parameters so that the PCM path, the PA
and the pulse shaper on one die are correlated but not identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.process.parameters import OperatingPointShift, ProcessParameters
from repro.process.population import sample_structure_params
from repro.process.variation import VariationModel
from repro.process.wafer import DieSite, Lot
from repro.utils.rng import SeedLike, as_generator


@dataclass
class FabricatedDie:
    """One fabricated die: identity, die-level parameters, local mismatch.

    Per-structure local parameters are derived lazily and deterministically
    from the die's mismatch seed, so the same die always yields the same
    local parameters for a given structure name.

    ``analog_model_error`` captures systematic silicon-vs-model discrepancy
    of specific structures: compact models track simple digital structures
    (gates, PCM paths) well, but large RF layouts (power amplifier, pulse
    shaper) suffer extraction error, so their effective silicon parameters
    deviate from *any* simulation at the same process point.  Keys are
    substrings of structure names; values are relative parameter shifts.
    """

    site: DieSite
    die_params: ProcessParameters
    variation: VariationModel
    mismatch_seed: int
    analog_model_error: Dict[str, Dict[str, float]] = field(default_factory=dict)
    _structure_cache: Dict[str, ProcessParameters] = field(default_factory=dict, repr=False)

    def structure_params(self, structure: str) -> ProcessParameters:
        """Local process parameters of the named on-die structure.

        Delegates to :func:`~repro.process.population.sample_structure_params`
        — the single definition of the per-(die, structure) RNG stream
        contract shared with the batched population engine.
        """
        if structure not in self._structure_cache:
            self._structure_cache[structure] = sample_structure_params(
                self.variation,
                self.die_params,
                self.mismatch_seed,
                structure,
                analog_model_error=self.analog_model_error,
            )
        return self._structure_cache[structure]

    def label(self) -> str:
        """Human-readable die identifier."""
        return self.site.label()


@dataclass
class Foundry:
    """Fabricates virtual silicon at a (possibly drifted) operating point.

    Parameters
    ----------
    deck_nominal:
        The process nominal the trusted Spice deck believes in.
    shift:
        Operating-point drift of the actual line relative to the deck.
    variation:
        The variation hierarchy of the line.
    analog_model_error:
        Structure-specific silicon-vs-model discrepancy (see
        :class:`FabricatedDie`); applied identically to every fabricated
        die, because it is a property of the design kit, not of a die.
    seed:
        Seed or generator controlling all fabrication randomness.
    """

    deck_nominal: ProcessParameters
    variation: VariationModel
    shift: OperatingPointShift = field(default_factory=OperatingPointShift.none)
    analog_model_error: Dict[str, Dict[str, float]] = field(default_factory=dict)
    seed: SeedLike = None

    def __post_init__(self):
        self._rng = as_generator(self.seed)
        self._next_lot_id = 0

    @property
    def operating_point(self) -> ProcessParameters:
        """The silicon nominal: deck nominal plus accumulated drift."""
        return self.deck_nominal.shifted(self.shift)

    def fabricate_lot(
        self,
        n_dies: int,
        n_wafers: int = 1,
        lot: Optional[Lot] = None,
    ) -> List[FabricatedDie]:
        """Fabricate ``n_dies`` dies spread over ``n_wafers`` wafers of one lot.

        All dies share one lot-level parameter draw — matching the paper's
        observation that a DUTT population from a single lot covers only a
        narrow slice of the process distribution.
        """
        if n_dies <= 0:
            raise ValueError(f"n_dies must be positive, got {n_dies}")
        if lot is None:
            per_wafer = -(-n_dies // n_wafers)  # ceil division
            cols = max(1, int(np.ceil(np.sqrt(per_wafer))))
            rows = -(-per_wafer // cols)
            lot = Lot.with_wafers(self._next_lot_id, n_wafers, rows=rows, cols=cols)
        self._next_lot_id += 1

        sites = lot.sites()
        if len(sites) < n_dies:
            raise ValueError(
                f"lot provides {len(sites)} sites but {n_dies} dies were requested"
            )

        lot_params = self.variation.sample_lot(self.operating_point, self._rng)
        dies = []
        for site in sites[:n_dies]:
            die_params = self.variation.sample_die(lot_params, self._rng)
            mismatch_seed = int(self._rng.integers(0, 2**63 - 1))
            dies.append(
                FabricatedDie(
                    site=site,
                    die_params=die_params,
                    variation=self.variation,
                    mismatch_seed=mismatch_seed,
                    analog_model_error=self.analog_model_error,
                )
            )
        return dies

    def fabricate(self, n_dies: int, n_lots: int = 1) -> List[FabricatedDie]:
        """Fabricate ``n_dies`` total across ``n_lots`` lots (round-robin)."""
        if n_lots <= 0:
            raise ValueError(f"n_lots must be positive, got {n_lots}")
        per_lot = [n_dies // n_lots] * n_lots
        for i in range(n_dies % n_lots):
            per_lot[i] += 1
        dies: List[FabricatedDie] = []
        for count in per_lot:
            if count > 0:
                dies.extend(self.fabricate_lot(count))
        return dies
