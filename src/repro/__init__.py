"""Golden chip-free statistical side-channel fingerprinting.

A full reproduction of *"Hardware Trojan Detection through Golden Chip-Free
Statistical Side-Channel Fingerprinting"* (Liu, Huang, Makris, DAC 2014),
including every substrate the paper's evaluation depends on:

* :mod:`repro.core` — the detection pipeline (boundaries B1..B5);
* :mod:`repro.crypto` — AES-128 core of the platform chip;
* :mod:`repro.rf` — UWB transmitter / channel / receiver chain;
* :mod:`repro.process`, :mod:`repro.silicon`, :mod:`repro.circuits` — the
  process-variation, foundry and compact-circuit substrates that synthesize
  the paper's silicon measurements;
* :mod:`repro.trojans` — the two key-leaking hardware Trojans and the
  attacker that demonstrates the leak;
* :mod:`repro.stats`, :mod:`repro.learn` — from-scratch KMM, adaptive
  Epanechnikov KDE, PCA, one-class SVM and MARS;
* :mod:`repro.experiments` — the Table 1 / Figure 4 reproductions and
  ablations.

Quickstart::

    from repro import (DetectorConfig, GoldenChipFreeDetector,
                       PlatformConfig, generate_experiment_data)

    data = generate_experiment_data(PlatformConfig())
    detector = GoldenChipFreeDetector(DetectorConfig())
    detector.fit_premanufacturing(data.sim_pcms, data.sim_fingerprints)
    detector.fit_silicon(data.dutt_pcms)
    verdicts = detector.classify(data.dutt_fingerprints)   # True = clean
"""

from repro.core.boundaries import TrustedRegion
from repro.core.config import DetectorConfig
from repro.core.golden import GoldenReferenceDetector
from repro.core.metrics import DetectionMetrics, evaluate_detection
from repro.core.pipeline import GoldenChipFreeDetector
from repro.core.report import format_table1
from repro.experiments.platformcfg import (
    ExperimentData,
    PlatformConfig,
    generate_experiment_data,
)
from repro.experiments.table1 import run_table1
from repro.experiments.figure4 import run_figure4

__version__ = "1.0.0"

__all__ = [
    "GoldenChipFreeDetector",
    "DetectorConfig",
    "GoldenReferenceDetector",
    "TrustedRegion",
    "DetectionMetrics",
    "evaluate_detection",
    "format_table1",
    "PlatformConfig",
    "ExperimentData",
    "generate_experiment_data",
    "run_table1",
    "run_figure4",
    "__version__",
]
