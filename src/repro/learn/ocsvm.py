"""One-class support vector machine (Schölkopf's ν-formulation).

The trusted-region boundaries B1..B5 of the paper are all one-class SVMs
trained on (synthetic) golden fingerprint populations.  The dual problem is

    minimize    0.5 * alpha' K alpha
    subject to  0 <= alpha_i <= 1 / (nu * n),    sum_i alpha_i = 1

and the decision function is  f(x) = sum_i alpha_i k(x_i, x) - rho, with a
device declared *inside* the trusted region when f(x) >= 0.

The dual is solved by sequential minimal optimization with maximal-violating
-pair working-set selection: at optimality (Kα)_i >= rho for alpha_i = 0,
(Kα)_i <= rho for alpha_i = C, and (Kα)_i = rho in between; each iteration
transfers weight between the most violating pair in closed form.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.stats.kernels import (
    median_heuristic_gamma_from_sq,
    pairwise_sq_dists,
    rbf_from_sq_dists,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_2d, check_probability

#: Numerical slack around the decision boundary ``f(x) = 0``.  The dual is
#: only solved to ``tol`` (1e-6), so distinctions at this scale carry no
#: information: dual weights below it are treated as zero when extracting
#: support vectors, and :meth:`OneClassSvm.predict_inside` counts points
#: within it of the boundary as inside.  Referenced everywhere instead of a
#: repeated literal so the two uses cannot drift apart.
BOUNDARY_TOL = 1e-12


class OneClassSvm:
    """ν-one-class SVM with an RBF kernel.

    Parameters
    ----------
    nu:
        Upper bound on the fraction of training outliers and lower bound on
        the fraction of support vectors, in (0, 1].
    gamma:
        RBF kernel coefficient; ``None`` selects the median heuristic.
    tol:
        KKT violation tolerance for the SMO stopping criterion.
    max_iterations:
        SMO iteration cap (each iteration updates one pair).
    max_training_samples:
        Training sets larger than this are subsampled (the 10^5-point KDE
        populations of the paper would otherwise need a 10^10-entry Gram
        matrix).  Subsampling is deterministic given ``seed``.
    """

    def __init__(
        self,
        nu: float = 0.05,
        gamma: Optional[float] = None,
        tol: float = 1e-6,
        max_iterations: int = 200_000,
        max_training_samples: int = 2000,
        seed: SeedLike = None,
    ):
        check_probability(nu, "nu")
        if gamma is not None and gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        if max_training_samples <= 1:
            raise ValueError(
                f"max_training_samples must be > 1, got {max_training_samples}"
            )
        self.nu = float(nu)
        self.gamma = gamma
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.max_training_samples = int(max_training_samples)
        self.seed = seed
        self.support_vectors_: Optional[np.ndarray] = None
        self.dual_coefs_: Optional[np.ndarray] = None
        self.rho_: Optional[float] = None
        self.effective_gamma_: Optional[float] = None
        self.n_iterations_: int = 0
        self._sv_sq_norms: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    def fit(self, data) -> "OneClassSvm":
        """Learn the trusted boundary from an ``(n, d)`` inlier sample."""
        data = check_2d(data, "data")
        with span("ocsvm.fit", n=int(min(data.shape[0], self.max_training_samples)),
                  nu=self.nu) as fit_span:
            self._fit(data)
            fit_span.set(
                iterations=self.n_iterations_,
                support_vectors=int(self.support_vectors_.shape[0]),
                gamma=self.effective_gamma_,
            )
        obs_metrics.histogram("ocsvm.iterations").observe(self.n_iterations_)
        obs_metrics.histogram("ocsvm.support_vectors").observe(
            self.support_vectors_.shape[0]
        )
        return self

    def _fit(self, data) -> None:
        if data.shape[0] > self.max_training_samples:
            rng = as_generator(self.seed)
            idx = rng.choice(data.shape[0], size=self.max_training_samples, replace=False)
            data = data[idx]
        n = data.shape[0]

        # One shared squared-distance pass feeds both the median-heuristic
        # gamma and the Gram matrix (the distances are never computed twice).
        sq = pairwise_sq_dists(data, data)
        gamma = self.gamma if self.gamma is not None else median_heuristic_gamma_from_sq(sq)
        kernel = rbf_from_sq_dists(sq, gamma)  # consumes the sq buffer

        c_bound = 1.0 / (self.nu * n)
        # libsvm's one-class initialization: fill the first floor(nu * n)
        # coordinates to the box bound (plus a fractional remainder), so the
        # start is already feasible *and* as sparse as the optimum.  The
        # uniform 1/n start needs ~n pair updates just to drain the other
        # n - nu*n coordinates; this one converges in O(#SV) updates.  With
        # nu * n < 1 the scheme would dump all mass on one point — for such
        # tiny populations the uniform start is both safer and cheap anyway.
        full = min(n, int(self.nu * n))
        if full == 0:
            alpha = np.full(n, 1.0 / n)
        else:
            alpha = np.zeros(n)
            alpha[:full] = c_bound
            alpha[full:full + 1] = max(0.0, 1.0 - full * c_bound)
        gradient = kernel @ alpha  # (K alpha)_i

        # Incremental working-set bookkeeping: the selection penalties change
        # only at the two updated coordinates per iteration, so the loop does
        # a handful of in-place O(n) vector ops and no index-array
        # allocations.  ``work`` is the scratch used for masked arg-selection:
        # adding +/-inf penalties excludes coordinates pinned at a box edge.
        up_penalty = np.where(alpha >= c_bound - 1e-15, np.inf, 0.0)
        down_penalty = np.where(alpha <= 1e-15, -np.inf, 0.0)
        work = np.empty(n)
        col = np.empty(n)

        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            np.add(gradient, up_penalty, out=work)
            i = int(work.argmin())
            if work[i] == np.inf:  # no coordinate can move up
                break
            np.add(gradient, down_penalty, out=work)
            j = int(work.argmax())
            if work[j] == -np.inf:  # no coordinate can move down
                break
            violation = gradient[j] - gradient[i]
            if violation < self.tol:
                break
            curvature = kernel[i, i] + kernel[j, j] - 2.0 * kernel[i, j]
            if curvature <= 1e-15:
                step = min(c_bound - alpha[i], alpha[j])
            else:
                step = min(violation / curvature, c_bound - alpha[i], alpha[j])
            if step <= 0.0:
                break
            alpha[i] += step
            alpha[j] -= step
            # The Gram matrix is symmetric, so rows stand in for columns
            # (contiguous access) in the gradient update.
            np.subtract(kernel[i], kernel[j], out=col)
            col *= step
            gradient += col
            up_penalty[i] = np.inf if alpha[i] >= c_bound - 1e-15 else 0.0
            down_penalty[i] = -np.inf if alpha[i] <= 1e-15 else 0.0
            up_penalty[j] = np.inf if alpha[j] >= c_bound - 1e-15 else 0.0
            down_penalty[j] = -np.inf if alpha[j] <= 1e-15 else 0.0
        self.n_iterations_ = iterations

        support = alpha > BOUNDARY_TOL
        self.support_vectors_ = data[support]
        self.dual_coefs_ = alpha[support]
        self.effective_gamma_ = float(gamma)
        self._sv_sq_norms = None

        # rho from margin support vectors (0 < alpha < C); fall back to the
        # mean over all support vectors if none sit strictly inside the box.
        margin = support & (alpha < c_bound - 1e-9)
        reference = margin if margin.any() else support
        self.rho_ = float(np.mean(gradient[reference]))

    def _check_fitted(self):
        if self.support_vectors_ is None:
            raise RuntimeError("OneClassSvm must be fitted before use")

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------

    def _kernel_against_support(self, points: np.ndarray) -> np.ndarray:
        """RBF kernel block between ``points`` and the support vectors.

        The support vectors are immutable once fitted, so their squared
        norms are computed once and shared across every scoring call: a
        batch of devices costs one GEMM against the support set instead of
        re-deriving the full distance decomposition per call.  The
        arithmetic mirrors :func:`~repro.stats.kernels.pairwise_sq_dists`
        operation for operation, so scores are bit-identical to the
        uncached path.
        """
        if self._sv_sq_norms is None:
            self._sv_sq_norms = np.sum(self.support_vectors_**2, axis=1)[None, :]
        x_norm = np.sum(points**2, axis=1)[:, None]
        prod = points @ self.support_vectors_.T
        prod *= 2.0
        sq = x_norm + self._sv_sq_norms
        np.subtract(sq, prod, out=sq)
        np.maximum(sq, 0.0, out=sq)
        return rbf_from_sq_dists(sq, self.effective_gamma_)

    def decision_function(self, points) -> np.ndarray:
        """Signed distance-like score; >= 0 means inside the trusted region."""
        self._check_fitted()
        points = check_2d(points, "points")
        if points.shape[1] != self.support_vectors_.shape[1]:
            raise ValueError(
                f"points have {points.shape[1]} features, SVM was fitted on "
                f"{self.support_vectors_.shape[1]}"
            )
        return self._kernel_against_support(points) @ self.dual_coefs_ - self.rho_

    def predict_inside(self, points) -> np.ndarray:
        """Boolean array: True where a point falls inside the trusted region.

        A point exactly on the boundary (f = 0) counts as inside; the
        :data:`BOUNDARY_TOL` slack absorbs summation-order noise between the
        solver's gradient and the kernel evaluation here — the dual is only
        solved to ``tol`` (1e-6), so distinctions at the ``BOUNDARY_TOL``
        scale carry no information.
        """
        return self.decision_function(points) >= -BOUNDARY_TOL

    def training_inlier_fraction(self, data) -> float:
        """Fraction of ``data`` classified inside (diagnostics; ~1 - nu)."""
        return float(np.mean(self.predict_inside(data)))

    # ------------------------------------------------------------------
    # artifact-cache state
    # ------------------------------------------------------------------

    def to_state(self) -> dict:
        """Codec state of the fitted boundary (see :mod:`repro.cache.codec`).

        The seed is deliberately dropped: it only drives training-set
        subsampling, which the stored support vectors already reflect, and
        live seeds may be ``Generator`` objects with no stable encoding.
        """
        self._check_fitted()
        return {
            "params": {
                "nu": self.nu,
                "gamma": self.gamma,
                "tol": self.tol,
                "max_iterations": self.max_iterations,
                "max_training_samples": self.max_training_samples,
            },
            "support_vectors": self.support_vectors_,
            "dual_coefs": self.dual_coefs_,
            "rho": float(self.rho_),
            "effective_gamma": float(self.effective_gamma_),
            "n_iterations": int(self.n_iterations_),
        }

    @classmethod
    def from_state(cls, state: dict) -> "OneClassSvm":
        """Rebuild a fitted boundary from :meth:`to_state` output."""
        model = cls(**state["params"])
        model.support_vectors_ = np.asarray(state["support_vectors"], dtype=float)
        model.dual_coefs_ = np.asarray(state["dual_coefs"], dtype=float)
        model.rho_ = float(state["rho"])
        model.effective_gamma_ = float(state["effective_gamma"])
        model.n_iterations_ = int(state["n_iterations"])
        return model
