"""Multivariate Adaptive Regression Splines (Friedman 1991).

The paper trains one MARS model per side-channel fingerprint to learn the
non-linear map ``g_j : m_p -> m_j`` from PCM measurements to fingerprints on
Monte Carlo simulation data.

The implementation follows the classic two-pass scheme:

* **forward pass** — greedily add mirrored hinge pairs
  ``(max(0, x_v - t), max(0, t - x_v))`` (optionally multiplied into an
  existing basis function for interactions) that most reduce the residual
  sum of squares;
* **backward pass** — prune basis functions one at a time, keeping the
  subset with the best Generalized Cross-Validation score
  ``GCV = (SSE / n) / (1 - C(M)/n)^2`` with effective parameter count
  ``C(M) = M + penalty * (M - 1) / 2``.

Hinge functions extrapolate linearly outside the training range — essential
here, because the regression is applied to silicon PCM values that sit in
the tail (or beyond) of the simulated training distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.validation import check_1d, check_2d, check_matching_rows


@dataclass(frozen=True)
class HingeTerm:
    """One hinge factor: ``max(0, sign * (x[variable] - knot))``."""

    variable: int
    knot: float
    sign: int  # +1 -> max(0, x - t);  -1 -> max(0, t - x)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        value = self.sign * (x[:, self.variable] - self.knot)
        return np.maximum(0.0, value)


@dataclass(frozen=True)
class BasisFunction:
    """A product of hinge factors (the constant basis has no factors)."""

    terms: Tuple[HingeTerm, ...] = ()

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        out = np.ones(x.shape[0])
        for term in self.terms:
            out = out * term.evaluate(x)
        return out

    def degree(self) -> int:
        return len(self.terms)

    def uses_variable(self, variable: int) -> bool:
        return any(term.variable == variable for term in self.terms)


def _gcv(sse: float, n: int, n_basis: int, penalty: float) -> float:
    effective = n_basis + penalty * (n_basis - 1) / 2.0
    denom = 1.0 - effective / n
    if denom <= 0:
        return np.inf
    return (sse / n) / denom**2


class MarsRegression:
    """MARS regressor for one scalar target.

    Parameters
    ----------
    max_terms:
        Cap on basis functions (including the constant) after the forward
        pass.
    max_degree:
        Maximum interaction degree (1 = additive model, the paper's setting
        for its 1-dimensional PCM input).
    penalty:
        GCV penalty per knot (Friedman recommends 2-3; 3 for interactions).
    n_knot_candidates:
        Number of candidate knots per variable (quantiles of the training
        data).
    """

    def __init__(self, max_terms: int = 21, max_degree: int = 1,
                 penalty: float = 3.0, n_knot_candidates: int = 20):
        if max_terms < 1:
            raise ValueError(f"max_terms must be >= 1, got {max_terms}")
        if max_degree < 1:
            raise ValueError(f"max_degree must be >= 1, got {max_degree}")
        if penalty < 0:
            raise ValueError(f"penalty must be non-negative, got {penalty}")
        if n_knot_candidates < 1:
            raise ValueError(f"n_knot_candidates must be >= 1, got {n_knot_candidates}")
        self.max_terms = int(max_terms)
        self.max_degree = int(max_degree)
        self.penalty = float(penalty)
        self.n_knot_candidates = int(n_knot_candidates)
        self.basis_: Optional[List[BasisFunction]] = None
        self.coef_: Optional[np.ndarray] = None
        self.gcv_: Optional[float] = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    def fit(self, x, y) -> "MarsRegression":
        """Fit the spline model on ``(n, d)`` inputs and ``(n,)`` targets."""
        x = check_2d(x, "x")
        y = check_1d(y, "y")
        check_matching_rows(x, y[:, None], "x", "y")
        n, d = x.shape

        with span("mars.fit", n=n, d=d) as fit_span:
            knots = self._candidate_knots(x)
            basis: List[BasisFunction] = [BasisFunction()]
            design = np.ones((n, 1))

            # ---------------- forward pass ----------------
            current_sse = self._fit_sse(design, y)[1]
            while len(basis) + 2 <= self.max_terms:
                best = self._best_forward_pair(x, y, basis, design, knots, current_sse)
                if best is None:
                    break
                pair, columns, sse = best
                basis.extend(pair)
                design = np.hstack([design, columns])
                current_sse = sse

            # ---------------- backward pass ----------------
            best_basis, best_coef, best_gcv = self._prune(design, y, basis)
            self.basis_ = best_basis
            self.coef_ = best_coef
            self.gcv_ = best_gcv
            fit_span.set(forward_terms=len(basis), retained_terms=len(best_basis),
                         gcv=float(best_gcv))
        obs_metrics.histogram("mars.basis_functions").observe(len(self.basis_))
        obs_metrics.histogram("mars.gcv").observe(float(self.gcv_))
        return self

    def _candidate_knots(self, x: np.ndarray) -> List[np.ndarray]:
        knots = []
        for v in range(x.shape[1]):
            values = np.unique(x[:, v])
            if values.size <= self.n_knot_candidates:
                # Interior values only: a knot at the extremes creates a
                # zero/duplicate column.
                candidates = values[1:-1] if values.size > 2 else values
            else:
                quantiles = np.linspace(0.05, 0.95, self.n_knot_candidates)
                candidates = np.quantile(values, quantiles)
            knots.append(np.unique(candidates))
        return knots

    @staticmethod
    def _fit_sse(design: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, float]:
        coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        residual = y - design @ coef
        return coef, float(residual @ residual)

    def _best_forward_pair(self, x, y, basis, design, knots, current_sse):
        """Search (parent basis, variable, knot) for the best hinge pair."""
        n = x.shape[0]
        best = None
        best_sse = current_sse - 1e-12 * max(1.0, abs(current_sse))
        for parent_idx, parent in enumerate(basis):
            if parent.degree() + 1 > self.max_degree:
                continue
            parent_column = design[:, parent_idx]
            for v in range(x.shape[1]):
                if parent.uses_variable(v):
                    continue
                for t in knots[v]:
                    up = np.maximum(0.0, x[:, v] - t) * parent_column
                    down = np.maximum(0.0, t - x[:, v]) * parent_column
                    if not up.any() or not down.any():
                        continue
                    candidate = np.hstack([design, up[:, None], down[:, None]])
                    _, sse = self._fit_sse(candidate, y)
                    if sse < best_sse:
                        best_sse = sse
                        pair = (
                            BasisFunction(parent.terms + (HingeTerm(v, float(t), +1),)),
                            BasisFunction(parent.terms + (HingeTerm(v, float(t), -1),)),
                        )
                        best = (pair, np.column_stack([up, down]), sse)
        _ = n
        return best

    def _prune(self, design, y, basis):
        """Backward deletion keeping the GCV-best subset (constant stays)."""
        n = design.shape[0]
        active = list(range(len(basis)))
        coef, sse = self._fit_sse(design[:, active], y)
        best_gcv = _gcv(sse, n, len(active), self.penalty)
        best_state = (list(active), coef)

        while len(active) > 1:
            trial_best = None
            for position in range(1, len(active)):  # never drop the constant
                trial = active[:position] + active[position + 1:]
                coef_t, sse_t = self._fit_sse(design[:, trial], y)
                gcv_t = _gcv(sse_t, n, len(trial), self.penalty)
                if trial_best is None or gcv_t < trial_best[0]:
                    trial_best = (gcv_t, trial, coef_t)
            gcv_t, trial, coef_t = trial_best
            active = trial
            if gcv_t < best_gcv:
                best_gcv = gcv_t
                best_state = (list(active), coef_t)

        indices, coef = best_state
        return [basis[i] for i in indices], coef, best_gcv

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------

    def _check_fitted(self):
        if self.basis_ is None:
            raise RuntimeError("MarsRegression must be fitted before use")

    def predict(self, x) -> np.ndarray:
        """Predict targets for ``(n, d)`` inputs."""
        self._check_fitted()
        x = check_2d(x, "x")
        design = np.column_stack([b.evaluate(x) for b in self.basis_])
        return design @ self.coef_

    def n_basis_functions(self) -> int:
        """Number of retained basis functions (including the constant)."""
        self._check_fitted()
        return len(self.basis_)


class MultiOutputMars:
    """Convenience wrapper: one independent MARS model per output column.

    Mirrors the paper's ``nm`` regression functions ``g_j``, one per
    side-channel fingerprint.
    """

    def __init__(self, **mars_kwargs):
        self.mars_kwargs = mars_kwargs
        self.models_: Optional[List[MarsRegression]] = None

    def fit(self, x, y) -> "MultiOutputMars":
        """Fit on ``(n, d)`` inputs and ``(n, m)`` targets."""
        x = check_2d(x, "x")
        y = check_2d(y, "y")
        check_matching_rows(x, y, "x", "y")
        self.models_ = []
        for j in range(y.shape[1]):
            model = MarsRegression(**self.mars_kwargs)
            model.fit(x, y[:, j])
            self.models_.append(model)
        return self

    def predict(self, x) -> np.ndarray:
        """Predict an ``(n, m)`` target matrix."""
        if self.models_ is None:
            raise RuntimeError("MultiOutputMars must be fitted before use")
        x = check_2d(x, "x")
        return np.column_stack([model.predict(x) for model in self.models_])
