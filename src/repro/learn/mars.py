"""Multivariate Adaptive Regression Splines (Friedman 1991).

The paper trains one MARS model per side-channel fingerprint to learn the
non-linear map ``g_j : m_p -> m_j`` from PCM measurements to fingerprints on
Monte Carlo simulation data.

The implementation follows the classic two-pass scheme:

* **forward pass** — greedily add mirrored hinge pairs
  ``(max(0, x_v - t), max(0, t - x_v))`` (optionally multiplied into an
  existing basis function for interactions) that most reduce the residual
  sum of squares;
* **backward pass** — prune basis functions one at a time, keeping the
  subset with the best Generalized Cross-Validation score
  ``GCV = (SSE / n) / (1 - C(M)/n)^2`` with effective parameter count
  ``C(M) = M + penalty * (M - 1) / 2``.

Hinge functions extrapolate linearly outside the training range — essential
here, because the regression is applied to silicon PCM values that sit in
the tail (or beyond) of the simulated training distribution.

Candidate scoring in the forward pass has two interchangeable engines:

* ``forward="lstsq"`` — the reference implementation: one full
  ``np.linalg.lstsq`` per candidate knot (an SVD each — O(n m^2) with a
  large constant);
* ``forward="fast"`` (default) — incremental normal equations: the current
  design's Gram matrix is eigendecomposed once per forward step (its range
  space stands in for the rank-deficient design — revisiting a variable
  makes the mirrored pair linearly dependent on the earlier one), every
  candidate hinge pair's cross products are obtained from prefix/suffix
  sums over knot-sorted data in O(n m) per (parent, variable), and each
  knot is scored through a rank-adaptive 2x2 Schur complement.  The
  mirrored hinges have disjoint supports, so their exact inner product is
  zero by construction.
  The winning candidate is re-scored with the reference ``lstsq`` before
  acceptance, so the accepted SSE — and everything downstream of it —
  matches the reference path bit-for-bit whenever both engines select the
  same knot (they rank candidates identically up to last-ulp ties; see the
  cross-engine reference tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.validation import check_1d, check_2d, check_matching_rows

FORWARD_MODES = ("fast", "lstsq")

#: Relative rank cutoff of the fast engine: Gram eigenvalues and Schur
#: complements below this fraction of their natural scale are treated as
#: exact zeros (directions already inside the current column span).  Sits
#: far above accumulated rounding (~1e-13) and far below any genuinely
#: informative direction.
_SCHUR_RTOL = 1e-10


@dataclass(frozen=True)
class HingeTerm:
    """One hinge factor: ``max(0, sign * (x[variable] - knot))``."""

    variable: int
    knot: float
    sign: int  # +1 -> max(0, x - t);  -1 -> max(0, t - x)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        value = self.sign * (x[:, self.variable] - self.knot)
        return np.maximum(0.0, value)


@dataclass(frozen=True)
class BasisFunction:
    """A product of hinge factors (the constant basis has no factors)."""

    terms: Tuple[HingeTerm, ...] = ()

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        out = np.ones(x.shape[0])
        for term in self.terms:
            out = out * term.evaluate(x)
        return out

    def degree(self) -> int:
        return len(self.terms)

    def uses_variable(self, variable: int) -> bool:
        return any(term.variable == variable for term in self.terms)


def _gcv(sse: float, n: int, n_basis: int, penalty: float) -> float:
    effective = n_basis + penalty * (n_basis - 1) / 2.0
    denom = 1.0 - effective / n
    if denom <= 0:
        return np.inf
    return (sse / n) / denom**2


def _prefix_sums(values: np.ndarray) -> np.ndarray:
    """``P`` with ``P[k] = sum(values[:k])`` (leading zero row included)."""
    out = np.zeros((values.shape[0] + 1,) + values.shape[1:])
    np.cumsum(values, axis=0, out=out[1:])
    return out


class MarsRegression:
    """MARS regressor for one scalar target.

    Parameters
    ----------
    max_terms:
        Cap on basis functions (including the constant) after the forward
        pass.
    max_degree:
        Maximum interaction degree (1 = additive model, the paper's setting
        for its 1-dimensional PCM input).
    penalty:
        GCV penalty per knot (Friedman recommends 2-3; 3 for interactions).
    n_knot_candidates:
        Number of candidate knots per variable (quantiles of the training
        data).
    forward:
        Candidate-scoring engine of the forward pass: ``"fast"``
        (incremental normal equations, the default) or ``"lstsq"`` (the
        per-candidate reference solver; kept for cross-checking).
    """

    def __init__(self, max_terms: int = 21, max_degree: int = 1,
                 penalty: float = 3.0, n_knot_candidates: int = 20,
                 forward: str = "fast"):
        if max_terms < 1:
            raise ValueError(f"max_terms must be >= 1, got {max_terms}")
        if max_degree < 1:
            raise ValueError(f"max_degree must be >= 1, got {max_degree}")
        if penalty < 0:
            raise ValueError(f"penalty must be non-negative, got {penalty}")
        if n_knot_candidates < 1:
            raise ValueError(f"n_knot_candidates must be >= 1, got {n_knot_candidates}")
        if forward not in FORWARD_MODES:
            raise ValueError(f"forward must be one of {FORWARD_MODES}, got {forward!r}")
        self.max_terms = int(max_terms)
        self.max_degree = int(max_degree)
        self.penalty = float(penalty)
        self.n_knot_candidates = int(n_knot_candidates)
        self.forward = str(forward)
        self.basis_: Optional[List[BasisFunction]] = None
        self.coef_: Optional[np.ndarray] = None
        self.gcv_: Optional[float] = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    def fit(self, x, y) -> "MarsRegression":
        """Fit the spline model on ``(n, d)`` inputs and ``(n,)`` targets."""
        x = check_2d(x, "x")
        y = check_1d(y, "y")
        check_matching_rows(x, y[:, None], "x", "y")
        n, d = x.shape

        with span("mars.fit", n=n, d=d, forward=self.forward) as fit_span:
            basis, design, _ = self._forward_pass(x, y)

            # ---------------- backward pass ----------------
            best_basis, best_coef, best_gcv = self._prune(design, y, basis)
            self.basis_ = best_basis
            self.coef_ = best_coef
            self.gcv_ = best_gcv
            fit_span.set(forward_terms=len(basis), retained_terms=len(best_basis),
                         gcv=float(best_gcv))
        obs_metrics.histogram("mars.basis_functions").observe(len(self.basis_))
        obs_metrics.histogram("mars.gcv").observe(float(self.gcv_))
        return self

    def _forward_pass(self, x, y) -> Tuple[List[BasisFunction], np.ndarray, float]:
        """Greedy hinge-pair growth; returns (basis, design, final SSE)."""
        n = x.shape[0]
        knots = self._candidate_knots(x)
        orders = [np.argsort(x[:, v], kind="stable") for v in range(x.shape[1])]
        basis: List[BasisFunction] = [BasisFunction()]
        design = np.ones((n, 1))

        current_sse = self._fit_sse(design, y)[1]
        while len(basis) + 2 <= self.max_terms:
            best = self._best_forward_pair(x, y, basis, design, knots,
                                           current_sse, orders)
            if best is None:
                break
            pair, columns, sse = best
            basis.extend(pair)
            design = np.hstack([design, columns])
            current_sse = sse
        return basis, design, current_sse

    def _candidate_knots(self, x: np.ndarray) -> List[np.ndarray]:
        knots = []
        for v in range(x.shape[1]):
            values = np.unique(x[:, v])
            if values.size <= self.n_knot_candidates:
                # Interior values only: a knot at the extremes creates a
                # zero/duplicate column.
                candidates = values[1:-1] if values.size > 2 else values
            else:
                quantiles = np.linspace(0.05, 0.95, self.n_knot_candidates)
                candidates = np.quantile(values, quantiles)
            knots.append(np.unique(candidates))
        return knots

    @staticmethod
    def _fit_sse(design: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, float]:
        coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        residual = y - design @ coef
        return coef, float(residual @ residual)

    def _best_forward_pair(self, x, y, basis, design, knots, current_sse,
                           orders=None):
        """Search (parent basis, variable, knot) for the best hinge pair."""
        if self.forward == "fast":
            if orders is None:
                orders = [np.argsort(x[:, v], kind="stable")
                          for v in range(x.shape[1])]
            return self._best_forward_pair_fast(x, y, basis, design, knots,
                                                current_sse, orders)
        return self._best_forward_pair_lstsq(x, y, basis, design, knots,
                                             current_sse)

    def _best_forward_pair_lstsq(self, x, y, basis, design, knots, current_sse):
        """Reference engine: one full least-squares solve per candidate."""
        best = None
        best_sse = current_sse - 1e-12 * max(1.0, abs(current_sse))
        for parent_idx, parent in enumerate(basis):
            if parent.degree() + 1 > self.max_degree:
                continue
            parent_column = design[:, parent_idx]
            for v in range(x.shape[1]):
                if parent.uses_variable(v):
                    continue
                for t in knots[v]:
                    up = np.maximum(0.0, x[:, v] - t) * parent_column
                    down = np.maximum(0.0, t - x[:, v]) * parent_column
                    if not up.any() or not down.any():
                        continue
                    candidate = np.hstack([design, up[:, None], down[:, None]])
                    _, sse = self._fit_sse(candidate, y)
                    if sse < best_sse:
                        best_sse = sse
                        pair = (
                            BasisFunction(parent.terms + (HingeTerm(v, float(t), +1),)),
                            BasisFunction(parent.terms + (HingeTerm(v, float(t), -1),)),
                        )
                        best = (pair, np.column_stack([up, down]), sse)
        return best

    def _best_forward_pair_fast(self, x, y, basis, design, knots, current_sse,
                                orders):
        """Fast engine: one Gram eigendecomposition + per-knot Schur scores.

        For a fixed (parent ``z``, variable ``v``), every candidate knot's
        cross products with the design, the target and itself are affine in
        ``t`` with coefficients given by prefix/suffix sums over the data
        sorted by ``x_v`` — e.g. ``design' u_t = S_dzx(t) - t S_dz(t)`` with
        ``S(t)`` a suffix sum over ``x_i > t``.  One pass of cumulative sums
        therefore scores all knots of the pair at once; each knot then costs
        two small matrix-vector products and a 2x2 system instead of a
        fresh SVD.
        """
        threshold = current_sse - 1e-12 * max(1.0, abs(current_sse))
        # The design is rank-deficient by construction once a variable is
        # revisited: for mirrored pairs ``u_t - d_t = z * (x_v - t)``, which
        # an earlier pair on the same (parent, variable) already spans.  The
        # reference engine's lstsq absorbs that through SVD truncation; here
        # the Gram matrix is eigendecomposed once per forward step and the
        # projection uses its numerical range space (a pseudo-inverse).
        eigvals, eigvecs = np.linalg.eigh(design.T @ design)
        top = max(float(eigvals[-1]), 0.0)
        keep = eigvals > _SCHUR_RTOL * max(top, 1e-300)
        if not keep.any():
            return self._best_forward_pair_lstsq(x, y, basis, design, knots,
                                                 current_sse)
        whiten = eigvecs[:, keep] / np.sqrt(eigvals[keep])  # (m, r)
        p = whiten.T @ (design.T @ y)
        q0 = float(y @ y) - float(p @ p)

        best = None
        best_sse = threshold
        for parent_idx, parent in enumerate(basis):
            if parent.degree() + 1 > self.max_degree:
                continue
            z = design[:, parent_idx]
            for v in range(x.shape[1]):
                if parent.uses_variable(v):
                    continue
                tvals = knots[v]
                if tvals.size == 0:
                    continue
                idx = orders[v]
                xs = x[idx, v]
                zs = z[idx]
                ds = design[idx]
                ys = y[idx]

                weighted = ds * zs[:, None]
                zz = zs * zs
                zy = zs * ys
                p_dz = _prefix_sums(weighted)
                p_dzx = _prefix_sums(weighted * xs[:, None])
                p_zz = _prefix_sums(zz)
                p_zzx = _prefix_sums(zz * xs)
                p_zzxx = _prefix_sums(zz * xs * xs)
                p_zy = _prefix_sums(zy)
                p_zyx = _prefix_sums(zy * xs)
                p_nz = _prefix_sums((zs != 0.0).astype(float))

                # Strict supports: up lives on x > t, down on x < t.
                hi = np.searchsorted(xs, tvals, side="right")
                lo = np.searchsorted(xs, tvals, side="left")

                a_all = (p_dzx[-1] - p_dzx[hi]) - tvals[:, None] * (p_dz[-1] - p_dz[hi])
                uu = ((p_zzxx[-1] - p_zzxx[hi])
                      - 2.0 * tvals * (p_zzx[-1] - p_zzx[hi])
                      + tvals**2 * (p_zz[-1] - p_zz[hi]))
                uy = (p_zyx[-1] - p_zyx[hi]) - tvals * (p_zy[-1] - p_zy[hi])

                b_all = tvals[:, None] * p_dz[lo] - p_dzx[lo]
                dd = (tvals**2 * p_zz[lo]
                      - 2.0 * tvals * p_zzx[lo]
                      + p_zzxx[lo])
                dy = tvals * p_zy[lo] - p_zyx[lo]

                valid = ((p_nz[-1] - p_nz[hi]) > 0) & (p_nz[lo] > 0)
                if not valid.any():
                    continue

                au = whiten.T @ a_all.T  # (r, K)
                ad = whiten.T @ b_all.T
                s00 = uu - np.einsum("ij,ij->j", au, au)
                s11 = dd - np.einsum("ij,ij->j", ad, ad)
                s01 = -np.einsum("ij,ij->j", au, ad)  # u'd = 0 exactly
                r0 = uy - au.T @ p
                r1 = dy - ad.T @ p

                # How many dimensions does the pair truly add?  A revisited
                # variable contributes exactly one (the second hinge is a
                # linear combination of the first plus existing columns);
                # duplicated knots contribute none.  Score each candidate by
                # the rank its Schur complement actually supports.
                u_new = s00 > _SCHUR_RTOL * np.maximum(uu, 1e-300)
                d_new = s11 > _SCHUR_RTOL * np.maximum(dd, 1e-300)
                improvement = np.zeros_like(tvals)
                only_u = valid & u_new & ~d_new
                only_d = valid & d_new & ~u_new
                both = valid & u_new & d_new
                improvement[only_u] = r0[only_u] ** 2 / s00[only_u]
                improvement[only_d] = r1[only_d] ** 2 / s11[only_d]
                if both.any():
                    ratio = s01[both] / s00[both]
                    schur2 = s11[both] - s01[both] * ratio
                    rank1_u = r0[both] ** 2 / s00[both]
                    rank2 = rank1_u + (r1[both] - ratio * r0[both]) ** 2 \
                        / np.maximum(schur2, 1e-300)
                    deep = schur2 > _SCHUR_RTOL * np.maximum(dd[both], 1e-300)
                    rank1_d = r1[both] ** 2 / s11[both]
                    improvement[both] = np.where(
                        deep, rank2, np.maximum(rank1_u, rank1_d)
                    )
                sse = np.where(valid, q0 - improvement, np.inf)

                k = int(np.argmin(sse))
                if sse[k] < best_sse:
                    best_sse = float(sse[k])
                    best = (parent_idx, parent, v, float(tvals[k]), z)

        if best is None:
            return None
        parent_idx, parent, v, t, z = best
        up = np.maximum(0.0, x[:, v] - t) * z
        down = np.maximum(0.0, t - x[:, v]) * z
        candidate = np.hstack([design, up[:, None], down[:, None]])
        # Re-score the winner with the reference solver: the accepted SSE
        # (and every quantity derived from it) is then identical to the
        # reference engine's, not merely close.
        _, sse = self._fit_sse(candidate, y)
        if sse >= threshold:
            return None
        pair = (
            BasisFunction(parent.terms + (HingeTerm(v, t, +1),)),
            BasisFunction(parent.terms + (HingeTerm(v, t, -1),)),
        )
        return pair, np.column_stack([up, down]), sse

    def _prune(self, design, y, basis):
        """Backward deletion keeping the GCV-best subset (constant stays)."""
        n = design.shape[0]
        active = list(range(len(basis)))
        coef, sse = self._fit_sse(design[:, active], y)
        best_gcv = _gcv(sse, n, len(active), self.penalty)
        best_state = (list(active), coef)

        while len(active) > 1:
            trial_best = None
            for position in range(1, len(active)):  # never drop the constant
                trial = active[:position] + active[position + 1:]
                coef_t, sse_t = self._fit_sse(design[:, trial], y)
                gcv_t = _gcv(sse_t, n, len(trial), self.penalty)
                if trial_best is None or gcv_t < trial_best[0]:
                    trial_best = (gcv_t, trial, coef_t)
            gcv_t, trial, coef_t = trial_best
            active = trial
            if gcv_t < best_gcv:
                best_gcv = gcv_t
                best_state = (list(active), coef_t)

        indices, coef = best_state
        return [basis[i] for i in indices], coef, best_gcv

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------

    def _check_fitted(self):
        if self.basis_ is None:
            raise RuntimeError("MarsRegression must be fitted before use")

    def predict(self, x) -> np.ndarray:
        """Predict targets for ``(n, d)`` inputs."""
        self._check_fitted()
        x = check_2d(x, "x")
        design = np.column_stack([b.evaluate(x) for b in self.basis_])
        return design @ self.coef_

    def n_basis_functions(self) -> int:
        """Number of retained basis functions (including the constant)."""
        self._check_fitted()
        return len(self.basis_)

    # ------------------------------------------------------------------
    # artifact-cache state
    # ------------------------------------------------------------------

    def to_state(self) -> dict:
        """Codec state of a fitted model (see :mod:`repro.cache.codec`)."""
        self._check_fitted()
        return {
            "params": {
                "max_terms": self.max_terms,
                "max_degree": self.max_degree,
                "penalty": self.penalty,
                "n_knot_candidates": self.n_knot_candidates,
                "forward": self.forward,
            },
            "basis": [
                [(term.variable, term.knot, term.sign) for term in b.terms]
                for b in self.basis_
            ],
            "coef": self.coef_,
            "gcv": float(self.gcv_),
        }

    @classmethod
    def from_state(cls, state: dict) -> "MarsRegression":
        """Rebuild a fitted model from :meth:`to_state` output."""
        model = cls(**state["params"])
        model.basis_ = [
            BasisFunction(tuple(
                HingeTerm(int(v), float(knot), int(sign))
                for v, knot, sign in terms
            ))
            for terms in state["basis"]
        ]
        model.coef_ = np.asarray(state["coef"], dtype=float)
        model.gcv_ = float(state["gcv"])
        return model


class MultiOutputMars:
    """Convenience wrapper: one independent MARS model per output column.

    Mirrors the paper's ``nm`` regression functions ``g_j``, one per
    side-channel fingerprint.
    """

    def __init__(self, **mars_kwargs):
        self.mars_kwargs = mars_kwargs
        self.models_: Optional[List[MarsRegression]] = None

    def fit(self, x, y) -> "MultiOutputMars":
        """Fit on ``(n, d)`` inputs and ``(n, m)`` targets."""
        x = check_2d(x, "x")
        y = check_2d(y, "y")
        check_matching_rows(x, y, "x", "y")
        self.models_ = []
        for j in range(y.shape[1]):
            model = MarsRegression(**self.mars_kwargs)
            model.fit(x, y[:, j])
            self.models_.append(model)
        return self

    def predict(self, x) -> np.ndarray:
        """Predict an ``(n, m)`` target matrix."""
        if self.models_ is None:
            raise RuntimeError("MultiOutputMars must be fitted before use")
        x = check_2d(x, "x")
        return np.column_stack([model.predict(x) for model in self.models_])

    def to_state(self) -> dict:
        """Codec state of the fitted per-output models."""
        if self.models_ is None:
            raise RuntimeError("MultiOutputMars must be fitted before use")
        return {"mars_kwargs": dict(self.mars_kwargs), "models": list(self.models_)}

    @classmethod
    def from_state(cls, state: dict) -> "MultiOutputMars":
        """Rebuild a fitted wrapper from :meth:`to_state` output."""
        wrapper = cls(**state["mars_kwargs"])
        wrapper.models_ = list(state["models"])
        return wrapper
