"""Learning substrate: one-class SVM, MARS regression, linear baselines.

The environment provides no scikit-learn, so the classifiers and regressors
the paper names are implemented here from first principles:

* :class:`OneClassSvm` — Schölkopf's ν-formulation, solved by a
  maximal-violating-pair SMO on the dense Gram matrix;
* :class:`MarsRegression` — Multivariate Adaptive Regression Splines
  (forward hinge-basis growth + GCV backward pruning), the model the paper
  uses to map PCM measurements to side-channel fingerprints;
* ordinary/ridge least squares as baselines and building blocks.
"""

from repro.learn.elliptic import EllipticEnvelope
from repro.learn.latent import LatentGainMars
from repro.learn.linear import LinearRegression, RidgeRegression
from repro.learn.mars import MarsRegression
from repro.learn.model_selection import GridSearchResult, grid_search_regression, kfold_indices
from repro.learn.ocsvm import OneClassSvm

__all__ = [
    "OneClassSvm",
    "MarsRegression",
    "LatentGainMars",
    "EllipticEnvelope",
    "LinearRegression",
    "RidgeRegression",
    "kfold_indices",
    "grid_search_regression",
    "GridSearchResult",
]
