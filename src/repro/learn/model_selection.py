"""Cross-validation utilities for the regression and boundary models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_1d, check_2d


def kfold_indices(n: int, k: int, shuffle: bool = True,
                  rng: SeedLike = None) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Return ``k`` (train_idx, test_idx) splits over ``n`` samples."""
    if n < 2:
        raise ValueError(f"need at least 2 samples, got {n}")
    if not 2 <= k <= n:
        raise ValueError(f"k must be in [2, {n}], got {k}")
    order = np.arange(n)
    if shuffle:
        as_generator(rng).shuffle(order)
    folds = np.array_split(order, k)
    splits = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        splits.append((train, test))
    return splits


@dataclass
class GridSearchResult:
    """Outcome of a regression grid search."""

    best_params: Dict
    best_score: float
    all_scores: List[Tuple[Dict, float]]


def grid_search_regression(
    model_factory: Callable[..., object],
    param_grid: Dict[str, Iterable],
    x,
    y,
    k: int = 5,
    rng: SeedLike = None,
) -> GridSearchResult:
    """K-fold CV grid search minimizing mean squared error.

    ``model_factory(**params)`` must return an object with ``fit(x, y)`` and
    ``predict(x)``.
    """
    x = check_2d(x, "x")
    y = check_1d(y, "y")
    names = list(param_grid)
    grids = [list(param_grid[name]) for name in names]

    def combinations(level=0, current=None):
        current = current or {}
        if level == len(names):
            yield dict(current)
            return
        for value in grids[level]:
            current[names[level]] = value
            yield from combinations(level + 1, current)

    splits = kfold_indices(x.shape[0], k, rng=rng)
    scores: List[Tuple[Dict, float]] = []
    for params in combinations():
        errors = []
        for train, test in splits:
            model = model_factory(**params)
            model.fit(x[train], y[train])
            predictions = model.predict(x[test])
            errors.append(float(np.mean((predictions - y[test]) ** 2)))
        scores.append((params, float(np.mean(errors))))

    best_params, best_score = min(scores, key=lambda item: item[1])
    return GridSearchResult(best_params=best_params, best_score=best_score, all_scores=scores)
