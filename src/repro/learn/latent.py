"""Reduced-rank regression through a latent device gain.

The six side-channel fingerprints of the platform chip are six block powers
of one transmitter: across process variation they move together through a
single device gain.  Fitting six *independent* regressions (as a literal
reading of the paper suggests) leaves each output free to extrapolate
slightly differently, and those per-output inconsistencies land exactly in
the near-degenerate directions the trusted boundary uses to catch Trojans.

:class:`LatentGainMars` avoids this: it summarizes each device's
fingerprint by a scalar gain (the mean ratio to the per-feature population
means), fits **one** MARS model PCM -> gain, and predicts fingerprints as
``mean_j * gain(pcm)``.  Predictions are consistent across features by
construction.  This is rank-1 reduced-rank regression with a spline link —
the standard remedy for strongly-correlated multi-output regression.

Use :class:`~repro.learn.mars.MultiOutputMars` for the paper-literal
independent mode (kept for the ablation benchmarks).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.learn.mars import MarsRegression
from repro.utils.validation import check_2d, check_matching_rows


class LatentGainMars:
    """Rank-1 multi-output regression: fp_j = mean_j * gain(pcm).

    Parameters are forwarded to the underlying
    :class:`~repro.learn.mars.MarsRegression` on the latent gain.
    """

    def __init__(self, **mars_kwargs):
        self.mars_kwargs = mars_kwargs
        self.feature_means_: Optional[np.ndarray] = None
        self.gain_model_: Optional[MarsRegression] = None

    def fit(self, x, y) -> "LatentGainMars":
        """Fit on ``(n, d)`` PCM inputs and ``(n, m)`` fingerprint targets."""
        x = check_2d(x, "x")
        y = check_2d(y, "y")
        check_matching_rows(x, y, "x", "y")
        means = y.mean(axis=0)
        if np.any(means == 0):
            raise ValueError("fingerprint features with zero mean cannot carry a gain")
        self.feature_means_ = means
        gains = (y / means).mean(axis=1)
        self.gain_model_ = MarsRegression(**self.mars_kwargs).fit(x, gains)
        return self

    def predict(self, x) -> np.ndarray:
        """Predict an ``(n, m)`` fingerprint matrix from PCM inputs."""
        if self.gain_model_ is None:
            raise RuntimeError("LatentGainMars must be fitted before use")
        x = check_2d(x, "x")
        gains = self.gain_model_.predict(x)
        return gains[:, None] * self.feature_means_[None, :]

    def predict_gain(self, x) -> np.ndarray:
        """Predict the latent gain alone (diagnostics)."""
        if self.gain_model_ is None:
            raise RuntimeError("LatentGainMars must be fitted before use")
        return self.gain_model_.predict(check_2d(x, "x"))

    def to_state(self) -> dict:
        """Codec state of the fitted model (see :mod:`repro.cache.codec`)."""
        if self.gain_model_ is None:
            raise RuntimeError("LatentGainMars must be fitted before use")
        return {
            "mars_kwargs": dict(self.mars_kwargs),
            "feature_means": self.feature_means_,
            "gain_model": self.gain_model_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "LatentGainMars":
        """Rebuild a fitted model from :meth:`to_state` output."""
        model = cls(**state["mars_kwargs"])
        model.feature_means_ = np.asarray(state["feature_means"], dtype=float)
        model.gain_model_ = state["gain_model"]
        return model
