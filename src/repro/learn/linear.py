"""Ordinary and ridge least-squares regression.

Baselines for the MARS regressor and the workhorse inside MARS itself
(every forward/backward step refits a least-squares model on the current
basis).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_1d, check_2d, check_matching_rows


class LinearRegression:
    """Ordinary least squares with an intercept."""

    def __init__(self):
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None

    def fit(self, x, y) -> "LinearRegression":
        """Fit on ``(n, d)`` inputs and ``(n,)`` targets."""
        x = check_2d(x, "x")
        y = check_1d(y, "y")
        check_matching_rows(x, y[:, None], "x", "y")
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.intercept_ = float(solution[0])
        self.coef_ = solution[1:]
        return self

    def predict(self, x) -> np.ndarray:
        """Predict targets for ``(n, d)`` inputs."""
        if self.coef_ is None:
            raise RuntimeError("LinearRegression must be fitted before use")
        x = check_2d(x, "x")
        return x @ self.coef_ + self.intercept_


class RidgeRegression:
    """L2-regularized least squares with an (unpenalized) intercept.

    Parameters
    ----------
    alpha:
        Regularization strength; 0 reduces to ordinary least squares.
    """

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None

    def fit(self, x, y) -> "RidgeRegression":
        """Fit on ``(n, d)`` inputs and ``(n,)`` targets."""
        x = check_2d(x, "x")
        y = check_1d(y, "y")
        check_matching_rows(x, y[:, None], "x", "y")
        x_mean = x.mean(axis=0)
        y_mean = float(y.mean())
        xc = x - x_mean
        yc = y - y_mean
        d = x.shape[1]
        gram = xc.T @ xc + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, x) -> np.ndarray:
        """Predict targets for ``(n, d)`` inputs."""
        if self.coef_ is None:
            raise RuntimeError("RidgeRegression must be fitted before use")
        x = check_2d(x, "x")
        return x @ self.coef_ + self.intercept_
