"""Mahalanobis-distance one-class classifier (elliptic envelope).

A parametric alternative to the one-class SVM for learning the trusted
region: fit mean and covariance of the golden population (with the same
eigenvalue-floor regularization the whitener uses) and threshold the squared
Mahalanobis distance at a chi-square quantile.  The paper notes the
classifier choice is open ("e.g. neural network, support vector machine");
ablation A7 compares this envelope against the SVM.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

from repro.utils.validation import check_2d, check_probability


class EllipticEnvelope:
    """Gaussian trusted region via a floored Mahalanobis distance.

    Parameters
    ----------
    contamination:
        Expected fraction of training outliers; sets the chi-square quantile
        of the decision threshold (analogous to the SVM's ν).
    floor_ratio:
        Relative eigenvalue floor on the covariance.
    floor_sigma:
        Absolute per-direction floor (same units as the data).
    """

    def __init__(self, contamination: float = 0.05, floor_ratio: float = 1e-6,
                 floor_sigma: float = 0.0):
        check_probability(contamination, "contamination")
        if not 0 < floor_ratio <= 1:
            raise ValueError(f"floor_ratio must be in (0, 1], got {floor_ratio}")
        if floor_sigma < 0:
            raise ValueError(f"floor_sigma must be non-negative, got {floor_sigma}")
        self.contamination = float(contamination)
        self.floor_ratio = float(floor_ratio)
        self.floor_sigma = float(floor_sigma)
        self.mean_: Optional[np.ndarray] = None
        self._inv_scales: Optional[np.ndarray] = None
        self._components: Optional[np.ndarray] = None
        self.threshold_: Optional[float] = None

    def fit(self, data) -> "EllipticEnvelope":
        """Estimate the envelope from an inlier sample."""
        data = check_2d(data, "data")
        n, d = data.shape
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        cov = centered.T @ centered / max(1, n - 1)
        eigvals, eigvecs = np.linalg.eigh(cov)
        top = max(float(eigvals.max()), 0.0)
        floor = max(self.floor_ratio * top, self.floor_sigma**2, 1e-300)
        eigvals = np.maximum(eigvals, floor)
        self._components = eigvecs.T
        self._inv_scales = 1.0 / np.sqrt(eigvals)
        self.threshold_ = float(stats.chi2.ppf(1.0 - self.contamination, df=d))
        return self

    def _check_fitted(self):
        if self.mean_ is None:
            raise RuntimeError("EllipticEnvelope must be fitted before use")

    def mahalanobis_squared(self, points) -> np.ndarray:
        """Squared (floored) Mahalanobis distance of each row."""
        self._check_fitted()
        points = check_2d(points, "points")
        whitened = (points - self.mean_) @ self._components.T * self._inv_scales
        return np.sum(whitened**2, axis=1)

    def decision_function(self, points) -> np.ndarray:
        """Positive inside the envelope, negative outside."""
        return self.threshold_ - self.mahalanobis_squared(points)

    def predict_inside(self, points) -> np.ndarray:
        """Boolean array: True where a point lies inside the envelope."""
        return self.decision_function(points) >= 0.0

    def to_state(self) -> dict:
        """Codec state of the fitted envelope (see :mod:`repro.cache.codec`)."""
        self._check_fitted()
        return {
            "params": {
                "contamination": self.contamination,
                "floor_ratio": self.floor_ratio,
                "floor_sigma": self.floor_sigma,
            },
            "mean": self.mean_,
            "inv_scales": self._inv_scales,
            "components": self._components,
            "threshold": float(self.threshold_),
        }

    @classmethod
    def from_state(cls, state: dict) -> "EllipticEnvelope":
        """Rebuild a fitted envelope from :meth:`to_state` output."""
        model = cls(**state["params"])
        model.mean_ = np.asarray(state["mean"], dtype=float)
        model._inv_scales = np.asarray(state["inv_scales"], dtype=float)
        model._components = np.asarray(state["components"], dtype=float)
        model.threshold_ = float(state["threshold"])
        return model
