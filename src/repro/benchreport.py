"""Benchmark-regression harness: component timings with a committed baseline.

``python benchmarks/bench_report.py`` (or the ``repro-bench`` console script)
times the pipeline's performance-critical components at the sizes the Table-1
run uses and writes them to a JSON report:

* ``kde_density`` — adaptive Epanechnikov KDE fit + density evaluation;
* ``kde_sample`` — drawing 10^5 tail-enhanced samples;
* ``ocsvm_fit`` — one-class SVM fit on a 1500-point population;
* ``mars_fit`` — the PCM -> fingerprint regressions;
* ``mars_forward`` — the MARS forward pass alone (400 x 6 problem);
* ``kmm_weights`` — kernel mean matching (100 train x 120 test);
* ``mc_run`` — the 100-device Monte Carlo simulation (loop reference
  engine, one die at a time);
* ``mc_run_batched`` — the same simulation through the batched population
  engine (bit-identical output, array programs over the device axis);
* ``aes_batch`` — vectorized AES-128 over a (2048 devices x 6 blocks)
  uint8 batch;
* ``table1`` — the end-to-end three-stage pipeline on pre-generated data;
* ``serve_batch`` — scoring 2048 devices against all five boundaries
  through the serving engine (the screening service's hot path).

``--compare BASELINE.json`` exits non-zero when any component is more than
``--threshold`` (default 20 %) slower than the committed baseline.  Timings
are machine-dependent: regenerate the baseline (``--output``) when moving to
different hardware, and treat cross-machine comparisons as indicative only.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional

import numpy as np

SCHEMA_VERSION = 1

#: Per-component (repeats, warmup) overrides; default is (5, 1).
#: The two slowest rows used best-of-3 to keep the harness quick, but this
#: machine's timing noise is heavy-tailed (whole-VM stalls that outlast a
#: 3-repeat window), so they take the default 5 repeats like everything
#: else; best-of-5 keeps the gate from tripping on a stall.
_TIMING_PLAN = {}


def time_case(fn: Callable[[], object], repeats: int = 5, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn`` in seconds.

    The minimum over repeats is the standard noise-robust point estimate for
    a deterministic workload: every source of interference only ever adds
    time.
    """
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def build_cases(n_jobs: int = 1) -> Dict[str, Callable[[], object]]:
    """The component workloads, keyed by report name (insertion-ordered)."""
    from repro.circuits.montecarlo import MonteCarloEngine
    from repro.circuits.spicemodel import default_spice_deck
    from repro.crypto.aes import aes128_encrypt_blocks
    from repro.core.config import DetectorConfig
    from repro.core.datasets import train_regressions
    from repro.experiments.platformcfg import PlatformConfig, generate_experiment_data
    from repro.core.pipeline import GoldenChipFreeDetector
    from repro.experiments.table1 import run_table1
    from repro.learn.mars import MarsRegression
    from repro.learn.ocsvm import OneClassSvm
    from repro.serve.engine import ScoringEngine
    from repro.stats.kde import AdaptiveKde
    from repro.stats.kmm import KernelMeanMatcher
    from repro.testbed.campaign import FingerprintCampaign

    data = generate_experiment_data(PlatformConfig())
    rng = np.random.default_rng(0)
    kde_train = rng.standard_normal((1500, 6))
    kde_eval = rng.standard_normal((2000, 6))
    svm_train = np.random.default_rng(0).standard_normal((1500, 6))
    bench_detector = DetectorConfig(kde_samples=30_000, n_jobs=n_jobs)
    sample_kde = AdaptiveKde(alpha=0.5).fit(data.sim_fingerprints)
    deck = default_spice_deck()
    sim_campaign = FingerprintCampaign.random_stimuli(nm=6, seed=0, noisy_bench=False)
    engine = MonteCarloEngine(deck, sim_campaign, numerical_noise=0.0015)
    # A forward-pass-only workload larger than one Table-1 regression, so
    # the incremental engine's candidate scoring dominates the timing.
    mars_x = rng.uniform(-2.0, 2.0, size=(400, 6))
    mars_y = (
        np.abs(mars_x[:, 0])
        + np.maximum(0.0, mars_x[:, 1])
        - 0.5 * mars_x[:, 2]
        + 0.1 * rng.standard_normal(400)
    )
    forward_model = MarsRegression(max_terms=21)
    # The serve case times scoring only, so the fit (identical stages to the
    # table1 case, served warm by the artifact cache when enabled) is setup.
    serve_detector = GoldenChipFreeDetector(bench_detector)
    serve_detector.fit_premanufacturing(data.sim_pcms, data.sim_fingerprints)
    serve_detector.fit_silicon(data.dutt_pcms)
    serve_engine = ScoringEngine(serve_detector)
    reps = -(-2048 // data.dutt_fingerprints.shape[0])
    serve_batch = np.tile(data.dutt_fingerprints, (reps, 1))[:2048]
    aes_key = rng.bytes(16)
    aes_blocks = rng.integers(0, 256, size=(2048, 6, 16), dtype=np.uint8)

    return {
        "kde_density": lambda: AdaptiveKde(alpha=0.5).fit(kde_train).density(kde_eval),
        "kde_sample": lambda: sample_kde.sample(100_000, rng=0),
        "ocsvm_fit": lambda: OneClassSvm(nu=0.08, seed=0).fit(svm_train),
        "mars_fit": lambda: train_regressions(
            data.sim_pcms, data.sim_fingerprints, bench_detector
        ),
        "mars_forward": lambda: forward_model._forward_pass(mars_x, mars_y),
        "kmm_weights": lambda: KernelMeanMatcher(B=10.0).fit(
            data.sim_pcms, data.dutt_pcms
        ),
        "mc_run": lambda: engine.run(100, seed=0, n_jobs=n_jobs, engine="loop"),
        "mc_run_batched": lambda: engine.run(100, seed=0, engine="batched"),
        "aes_batch": lambda: aes128_encrypt_blocks(aes_key, aes_blocks),
        "table1": lambda: run_table1(detector_config=bench_detector, data=data),
        "serve_batch": lambda: serve_engine.score(serve_batch),
    }


def run_report(n_jobs: int = 1, verbose: bool = True) -> dict:
    """Time every component and return the report dictionary."""
    results: Dict[str, float] = {}
    for name, fn in build_cases(n_jobs=n_jobs).items():
        repeats, warmup = _TIMING_PLAN.get(name, (5, 1))
        results[name] = time_case(fn, repeats=repeats, warmup=warmup)
        if verbose:
            print(f"{name:>12}: {results[name] * 1e3:9.2f} ms")
    return {"schema": SCHEMA_VERSION, "units": "seconds", "n_jobs": n_jobs,
            "results": results}


def compare_reports(current: dict, baseline: dict, threshold: float = 0.20) -> List[str]:
    """Regression messages for components slower than ``baseline`` by > threshold.

    Components present in only one report are ignored (they have no
    reference); a missing overlap entirely is itself an error.
    """
    cur = current.get("results", {})
    base = baseline.get("results", {})
    shared = [name for name in base if name in cur]
    if not shared:
        return ["no shared components between report and baseline"]
    failures = []
    for name in shared:
        if base[name] <= 0:
            continue
        ratio = cur[name] / base[name]
        if ratio > 1.0 + threshold:
            failures.append(
                f"{name}: {cur[name] * 1e3:.2f} ms vs baseline "
                f"{base[name] * 1e3:.2f} ms ({ratio:.2f}x, limit "
                f"{1.0 + threshold:.2f}x)"
            )
    return failures


def write_run_artifacts(report: dict, run_dir: str, argv: List[str]) -> str:
    """Persist a bench run through the observability sink + manifest.

    Emits one ``{"event": "bench", "component": ..., "seconds": ...}`` JSONL
    record per component to ``<run_dir>/events.jsonl`` — the same stream
    format traced pipeline runs use for their spans — and a run manifest
    whose ``results`` block holds the timing report.  Returns the manifest
    path.
    """
    from repro.obs.manifest import (
        RunManifest,
        collect_environment,
        git_revision,
        new_run_id,
        write_manifest,
    )
    from repro.obs.sink import JsonlSink

    run_id = os.path.basename(os.path.normpath(run_dir)) or new_run_id()
    os.makedirs(run_dir, exist_ok=True)
    with JsonlSink(os.path.join(run_dir, "events.jsonl")) as sink:
        for component, seconds in report["results"].items():
            sink.emit({
                "event": "bench",
                "run_id": run_id,
                "component": component,
                "seconds": seconds,
                "n_jobs": report["n_jobs"],
            })
    manifest = RunManifest(
        run_id=run_id,
        command="bench",
        created=time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        argv=list(argv),
        environment=collect_environment(),
        git=git_revision(),
        config={"n_jobs": report["n_jobs"], "schema": report["schema"]},
        results=report["results"],
    )
    return write_manifest(manifest, run_dir)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point for the benchmark report / regression gate."""
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--output", type=str, default=None,
        help="write the timing report to this JSON file",
    )
    parser.add_argument(
        "--compare", type=str, default=None,
        help="baseline JSON to compare against; exit 1 on regression",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="allowed slowdown vs baseline (0.20 = 20%%)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the parallel-capable components",
    )
    parser.add_argument(
        "--run-dir", type=str, default=None,
        help="also write events.jsonl + manifest.json for this bench run "
             "(same sink format as traced pipeline runs)",
    )
    args = parser.parse_args(argv)
    argv_record = list(sys.argv[1:]) if argv is None else list(argv)

    report = run_report(n_jobs=args.jobs)

    if args.run_dir:
        manifest_path = write_run_artifacts(report, args.run_dir, argv_record)
        print(f"wrote {manifest_path}")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = compare_reports(report, baseline, threshold=args.threshold)
        if failures:
            print("\nbenchmark regressions:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nno regressions vs {args.compare} "
              f"(threshold {args.threshold * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
