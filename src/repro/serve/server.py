"""Zero-dependency threaded HTTP JSON API over the scoring engine.

Endpoints
---------
``POST /v1/score``
    Body: ``{"fingerprints": [[...], ...], "boundaries": ["B5", ...]}``
    (a single flat vector is accepted as a one-device batch; ``boundaries``
    is optional and defaults to every boundary the bundle carries).
    Response: ``{"n_devices": n, "boundaries": {"B5": {"trojan_free":
    [...], "scores": [...]}}}``.  Validation failures return **400** with a
    structured body ``{"error": {"code": ..., "message": ...}}``; a full
    queue returns **429** — the server never crashes on a bad payload.
``GET /healthz``
    Liveness: always ``200 {"status": "ok"}`` while the process serves.
``GET /readyz``
    Readiness: ``200`` once the bundle is loaded and the engine can score,
    ``503`` otherwise.
``GET /metricz``
    JSON snapshot of the engine's metrics registry (``serve.requests``,
    ``serve.devices_scored``, ``serve.batch_size`` / ``serve.latency_ms``
    histograms, ``serve.queue_depth`` gauge, per-boundary verdict
    counters) plus bundle identity (digest, schema version, boundaries).

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection feeding the shared :class:`~repro.serve.engine.BatchingEngine`,
which is where concurrent requests coalesce into vectorized batches.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterable, Optional

from repro.serve.bundle import LoadedBundle, load_bundle
from repro.serve.engine import (
    BatchingEngine,
    QueueFullError,
    RequestValidationError,
    ScoringEngine,
)

#: Reject request bodies beyond this size before reading them fully.
MAX_BODY_BYTES = 64 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Request handler; the server instance carries the shared engine."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the metrics registry's job

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        self._send_json(status, {"error": {"code": code, "message": message}})

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/readyz":
            if self.server.ready():
                self._send_json(200, {"status": "ready",
                                      "bundle": self.server.bundle_summary()})
            else:
                self._send_error_json(503, "not_ready", "no bundle loaded")
        elif self.path == "/metricz":
            self._send_json(200, self.server.metrics())
        else:
            self._send_error_json(404, "not_found", f"no route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/v1/score":
            self._send_error_json(404, "not_found", f"no route {self.path!r}")
            return
        if not self.server.ready():
            self._send_error_json(503, "not_ready", "no bundle loaded")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length <= 0:
            self._send_error_json(400, "empty_body", "request body required")
            return
        if length > MAX_BODY_BYTES:
            self._send_error_json(
                413, "too_large", f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_error_json(400, "bad_json", f"unparseable body: {error}")
            return
        if not isinstance(payload, dict) or "fingerprints" not in payload:
            self._send_error_json(
                400, "bad_request", 'body must be {"fingerprints": [...]}'
            )
            return
        boundaries = payload.get("boundaries")
        if boundaries is not None and (
            not isinstance(boundaries, list)
            or not all(isinstance(b, str) for b in boundaries)
        ):
            self._send_error_json(
                400, "bad_request", '"boundaries" must be a list of names'
            )
            return
        try:
            result = self.server.batcher.submit(
                payload["fingerprints"], boundaries=boundaries
            )
        except RequestValidationError as error:
            self._send_error_json(400, error.code, error.message)
            return
        except QueueFullError as error:
            self._send_error_json(429, "queue_full", str(error))
            return
        except TimeoutError:
            self._send_error_json(504, "timeout", "scoring timed out")
            return
        self._send_json(200, result.to_json())


class DetectorServer(ThreadingHTTPServer):
    """The screening service: a loaded bundle behind the HTTP JSON API.

    Parameters
    ----------
    bundle:
        Path to a ``repro-bundle-v1`` file, or an already-loaded
        :class:`~repro.serve.bundle.LoadedBundle`.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (see ``.port``).
    max_batch / max_wait_ms / max_queue:
        Micro-batching knobs, passed to the :class:`BatchingEngine`.
    max_request_devices:
        Per-request device cap of the underlying :class:`ScoringEngine`.
    """

    daemon_threads = True

    def __init__(
        self,
        bundle,
        host: str = "127.0.0.1",
        port: int = 0,
        default_boundaries: Optional[Iterable[str]] = None,
        max_batch: int = 256,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
        max_request_devices: Optional[int] = None,
    ):
        if not isinstance(bundle, LoadedBundle):
            bundle = load_bundle(bundle)
        self.bundle = bundle
        engine_kwargs = {}
        if max_request_devices is not None:
            engine_kwargs["max_request_devices"] = max_request_devices
        self.engine = ScoringEngine(
            bundle.detector, default_boundaries=default_boundaries,
            **engine_kwargs,
        )
        self.batcher = BatchingEngine(
            self.engine, max_batch=max_batch, max_wait_ms=max_wait_ms,
            max_queue=max_queue,
        )
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), _Handler)

    # ------------------------------------------------------------------
    # handler-facing state
    # ------------------------------------------------------------------

    def ready(self) -> bool:
        """Whether a bundle is loaded and the engine can score."""
        return self.bundle is not None and bool(self.engine.available)

    def bundle_summary(self) -> dict:
        """Identity of the served bundle (also embedded in ``/metricz``)."""
        return {
            "digest": self.bundle.digest,
            "schema_version": int(self.bundle.header["schema_version"]),
            "boundaries": list(self.engine.available),
            "path": self.bundle.path,
        }

    def metrics(self) -> dict:
        """The ``/metricz`` payload."""
        snapshot = self.engine.metrics_snapshot()
        snapshot["gauges"].setdefault("serve.queue_depth", None)
        snapshot["gauges"]["serve.queue_depth"] = float(
            self.batcher.queue_depth
        )
        snapshot["bundle"] = self.bundle_summary()
        return snapshot

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "DetectorServer":
        """Serve in a background thread (tests, examples, bench)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the listener and the batching worker."""
        self.shutdown()
        self.server_close()
        self.batcher.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "DetectorServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
