"""``repro-bundle-v1``: the exportable, self-describing detector artifact.

A bundle is one ``.npz`` file holding a fitted
:class:`~repro.core.pipeline.GoldenChipFreeDetector` — whiteners, every
trained boundary B1..B5, the PCM regressions, the detector config and seed —
plus a JSON header with schema version and provenance (creation time, git
revision, interpreter/numpy versions).  The payload reuses the
:mod:`repro.cache.codec` ``to_state``/``from_state`` machinery, so a bundle
is exactly the stage cache's entry format with a provenance header on top:

* ``__bundle__`` — the JSON header (format name, schema version, payload
  digest, provenance, a summary of what is inside);
* ``__meta__`` — the codec's JSON skeleton of the detector state;
* ``a0 .. aN`` — the numpy arrays of that state.

Loading is paranoid by construction: a file that does not carry the
``repro-bundle-v1`` format name or an understood schema version raises
:class:`BundleFormatError`, and a payload whose recomputed SHA-256 digest
does not match the header raises :class:`BundleIntegrityError` — a
truncated or bit-flipped bundle can never produce verdicts.  A verified
bundle reloads **bit-identically**: decision scores and verdicts of the
restored detector equal the in-process detector's exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cache import codec

#: On-disk format name; the first header field every reader checks.
BUNDLE_FORMAT = "repro-bundle-v1"

#: Bundle schema version; readers reject anything they do not understand.
BUNDLE_SCHEMA_VERSION = 1

#: npz entry names of the header and the codec skeleton.
HEADER_ENTRY = "__bundle__"
META_ENTRY = codec.META_ENTRY


class BundleError(Exception):
    """Base class for bundle export/load failures."""


class BundleFormatError(BundleError):
    """The file is not a bundle, or uses an unsupported schema version."""


class BundleIntegrityError(BundleError):
    """The payload does not match the digest recorded in the header."""


@dataclass(frozen=True)
class BundleInfo:
    """What :func:`export_bundle` wrote: path + parsed header."""

    path: str
    header: dict

    @property
    def digest(self) -> str:
        """SHA-256 digest of the payload (hex)."""
        return self.header["digest"]

    @property
    def schema_version(self) -> int:
        """Bundle schema version recorded in the header."""
        return int(self.header["schema_version"])


@dataclass(frozen=True)
class LoadedBundle:
    """A verified bundle: the restored detector + its header."""

    detector: "GoldenChipFreeDetector"
    header: dict
    path: str

    @property
    def digest(self) -> str:
        """SHA-256 digest of the payload (hex)."""
        return self.header["digest"]

    @property
    def boundaries(self) -> list:
        """Names of the boundaries the bundle carries."""
        return sorted(self.detector.boundaries)


def payload_digest(meta: bytes, arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over the codec payload: meta bytes + every named array.

    Arrays are folded in sorted-name order as (name, dtype, shape, C-order
    bytes), so the digest is independent of dict ordering and of how numpy
    chooses to lay the arrays out in memory.
    """
    hasher = hashlib.sha256()
    hasher.update(meta)
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        hasher.update(name.encode("utf-8"))
        hasher.update(array.dtype.str.encode("ascii"))
        hasher.update(repr(array.shape).encode("ascii"))
        hasher.update(array.tobytes())
    return hasher.hexdigest()


def _provenance() -> dict:
    """Creation-time provenance block (git + versions; best effort)."""
    from repro.obs.manifest import collect_environment, git_revision

    environment = collect_environment()
    return {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        "git": git_revision(),
        "versions": environment.get("versions", {}),
        "platform": environment.get("platform"),
    }


def export_bundle(detector, path, **manifest_extra) -> BundleInfo:
    """Export a fitted detector as one atomic ``repro-bundle-v1`` file.

    Parameters
    ----------
    detector:
        A fitted :class:`~repro.core.pipeline.GoldenChipFreeDetector`
        (at least one trained boundary).
    path:
        Target ``.npz`` path; written via temp file + ``os.replace`` so a
        crashed export never leaves a truncated bundle behind.
    manifest_extra:
        Extra JSON-serializable header fields (recorded under ``"extra"``).
    """
    if not getattr(detector, "boundaries", None):
        raise BundleError("cannot export an unfitted detector (no boundaries)")
    meta, arrays = codec.encode(detector)
    header = {
        "format": BUNDLE_FORMAT,
        "schema_version": BUNDLE_SCHEMA_VERSION,
        "digest": payload_digest(meta, arrays),
        "detector": {
            "boundaries": sorted(detector.boundaries),
            "n_features": detector.n_fingerprint_features_,
            "seed": detector.config.seed,
            "boundary_method": detector.config.boundary_method,
        },
        "provenance": _provenance(),
    }
    if manifest_extra:
        header["extra"] = manifest_extra
    header_bytes = json.dumps(header, sort_keys=True, default=str).encode("utf-8")

    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-bundle-",
                                     suffix=".npz")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(
                handle,
                **{
                    HEADER_ENTRY: np.frombuffer(header_bytes, dtype=np.uint8),
                    META_ENTRY: np.frombuffer(meta, dtype=np.uint8),
                    **arrays,
                },
            )
        os.replace(temp_path, path)
    except Exception:
        try:
            os.remove(temp_path)
        except OSError:
            pass
        raise
    return BundleInfo(path=path, header=header)


def _parse_header(raw: bytes, path: str) -> dict:
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise BundleFormatError(f"{path}: unreadable bundle header: {error}")
    if not isinstance(header, dict) or header.get("format") != BUNDLE_FORMAT:
        raise BundleFormatError(
            f"{path}: not a {BUNDLE_FORMAT} file "
            f"(format={header.get('format')!r})"
            if isinstance(header, dict)
            else f"{path}: not a {BUNDLE_FORMAT} file"
        )
    version = header.get("schema_version")
    if version != BUNDLE_SCHEMA_VERSION:
        raise BundleFormatError(
            f"{path}: bundle schema version {version!r} not supported "
            f"(this reader understands {BUNDLE_SCHEMA_VERSION})"
        )
    if not isinstance(header.get("digest"), str):
        raise BundleFormatError(f"{path}: bundle header carries no digest")
    return header


def read_bundle_header(path) -> dict:
    """Parse and version-check a bundle's header without decoding the payload."""
    path = os.fspath(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            if HEADER_ENTRY not in archive.files:
                raise BundleFormatError(f"{path}: no {HEADER_ENTRY} record")
            return _parse_header(archive[HEADER_ENTRY].tobytes(), path)
    except BundleError:
        raise
    except Exception as error:  # zipfile/numpy errors on truncated files
        raise BundleFormatError(f"{path}: unreadable bundle: {error}")


def load_bundle(path) -> LoadedBundle:
    """Load, verify and restore a bundle written by :func:`export_bundle`.

    Raises :class:`BundleFormatError` for non-bundles and unsupported
    schema versions, :class:`BundleIntegrityError` when the payload digest
    does not match the header.
    """
    path = os.fspath(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            if HEADER_ENTRY not in archive.files:
                raise BundleFormatError(f"{path}: no {HEADER_ENTRY} record")
            header = _parse_header(archive[HEADER_ENTRY].tobytes(), path)
            if META_ENTRY not in archive.files:
                raise BundleFormatError(f"{path}: no {META_ENTRY} record")
            meta = archive[META_ENTRY].tobytes()
            arrays = {
                name: archive[name]
                for name in archive.files
                if name not in (HEADER_ENTRY, META_ENTRY)
            }
    except BundleError:
        raise
    except Exception as error:
        raise BundleFormatError(f"{path}: unreadable bundle: {error}")

    digest = payload_digest(meta, arrays)
    if digest != header["digest"]:
        raise BundleIntegrityError(
            f"{path}: payload digest mismatch (header {header['digest'][:12]}..., "
            f"recomputed {digest[:12]}...); the bundle is corrupt or tampered"
        )
    try:
        detector = codec.decode(meta, arrays)
    except codec.CacheCodecError as error:
        raise BundleFormatError(f"{path}: undecodable bundle payload: {error}")
    from repro.core.pipeline import GoldenChipFreeDetector

    if not isinstance(detector, GoldenChipFreeDetector):
        raise BundleFormatError(
            f"{path}: bundle payload is a {type(detector).__name__}, "
            "expected a GoldenChipFreeDetector"
        )
    return LoadedBundle(detector=detector, header=header, path=path)
