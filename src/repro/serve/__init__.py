"""``repro.serve`` — exportable detector bundles + a Trojan-screening service.

The paper's deployment story is production test: the boundaries B1..B5 are
trained **once** from simulation + PCMs (stages 1-2), then every fabricated
device is screened against them (stage 3).  This package is that
offline-train / online-inference split made real:

* :mod:`repro.serve.bundle` — the versioned ``repro-bundle-v1`` artifact: a
  fitted :class:`~repro.core.pipeline.GoldenChipFreeDetector` exported to a
  single self-describing ``.npz`` (whiteners, all trained boundaries,
  regressions, config, provenance) that reloads **bit-identically** in a
  fresh process; loading rejects unknown schema versions and
  digest-mismatched payloads.
* :mod:`repro.serve.engine` — :class:`~repro.serve.engine.ScoringEngine`
  (validate loudly, score any B1..B5 subset in one vectorized pass) and
  :class:`~repro.serve.engine.BatchingEngine` (micro-batching with a
  bounded arrival-ordered queue and explicit 429-style backpressure).
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — a zero-dependency
  threaded HTTP JSON API (``POST /v1/score``, ``GET /healthz`` /
  ``/readyz`` / ``/metricz``) plus the typed Python client the tests and
  the load generator drive it with.

Everything is stdlib + numpy; the CLI front ends are
``python -m repro.cli export-bundle | serve | score``.
"""

from __future__ import annotations

from repro.serve.bundle import (
    BUNDLE_FORMAT,
    BUNDLE_SCHEMA_VERSION,
    BundleError,
    BundleFormatError,
    BundleInfo,
    BundleIntegrityError,
    export_bundle,
    load_bundle,
    read_bundle_header,
)
from repro.serve.engine import (
    BatchingEngine,
    QueueFullError,
    RequestValidationError,
    ScoreResult,
    ScoringEngine,
)
from repro.serve.client import ScoringClient, ServerError
from repro.serve.server import DetectorServer

__all__ = [
    "BUNDLE_FORMAT",
    "BUNDLE_SCHEMA_VERSION",
    "BatchingEngine",
    "BundleError",
    "BundleFormatError",
    "BundleInfo",
    "BundleIntegrityError",
    "DetectorServer",
    "QueueFullError",
    "RequestValidationError",
    "ScoreResult",
    "ScoringClient",
    "ScoringEngine",
    "ServerError",
    "export_bundle",
    "load_bundle",
    "read_bundle_header",
]
