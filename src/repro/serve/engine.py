"""Scoring engine: validated, vectorized, micro-batched Trojan screening.

Two layers, both thread-safe:

* :class:`ScoringEngine` — the synchronous core.  Every request is
  validated loudly (2-D shape, float-coercible dtype, finiteness, feature
  width, batch-size cap) before a single boundary sees it; a structured
  :class:`RequestValidationError` names exactly what was wrong, and nothing
  degenerate can silently mis-classify.  Valid batches are scored against
  any subset of B1..B5 in one vectorized pass
  (:meth:`~repro.core.pipeline.GoldenChipFreeDetector.decision_scores_batch`:
  the batch is validated once and every boundary reuses its precomputed
  support-vector norms).

* :class:`BatchingEngine` — the asynchronous front.  Requests queue into a
  bounded, arrival-ordered (FIFO — no request can starve) queue; a worker
  thread drains up to ``max_batch`` devices per wake-up, waiting at most
  ``max_wait_ms`` for stragglers, stacks them into one array and scores
  them in a single engine pass, so per-device overhead amortizes across
  concurrent clients.  When the queue is full, ``submit`` fails immediately
  with :class:`QueueFullError` — explicit 429-style backpressure instead of
  unbounded buffering.

The engine owns a private :class:`repro.obs.metrics.MetricsRegistry`
(``serve.requests``, ``serve.devices_scored``, the ``serve.batch_size`` and
``serve.latency_ms`` histograms, the ``serve.queue_depth`` gauge and
per-boundary verdict counters); the server's ``GET /metricz`` endpoint
snapshots it without touching the process-global observability session.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry

#: Hard cap on devices per request; a screening service should reject a
#: runaway payload rather than attempt a multi-gigabyte kernel block.
DEFAULT_MAX_REQUEST_DEVICES = 10_000


class RequestValidationError(ValueError):
    """A request failed input validation; ``code`` is machine-readable."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


class QueueFullError(RuntimeError):
    """The batching queue is at capacity (429-style backpressure)."""

    def __init__(self, depth: int):
        super().__init__(
            f"scoring queue is full ({depth} queued requests); retry later"
        )
        self.depth = depth


@dataclass(frozen=True)
class ScoreResult:
    """One scored request: per-boundary scores + verdicts."""

    scores: Dict[str, np.ndarray]
    verdicts: Dict[str, np.ndarray]
    n_devices: int

    def to_json(self) -> dict:
        """JSON-ready representation (the HTTP response body)."""
        return {
            "n_devices": self.n_devices,
            "boundaries": {
                name: {
                    "trojan_free": [bool(v) for v in self.verdicts[name]],
                    "scores": [float(s) for s in self.scores[name]],
                }
                for name in self.scores
            },
        }


class ScoringEngine:
    """Validated, vectorized scoring of device batches against B1..B5.

    Parameters
    ----------
    detector:
        A fitted (or bundle-restored) ``GoldenChipFreeDetector``.
    default_boundaries:
        Boundary subset scored when a request names none (default: every
        trained boundary, pipeline order).
    max_request_devices:
        Reject requests with more devices than this (structured error, not
        an out-of-memory crash).
    registry:
        Metrics registry to record into (a private one by default).
    """

    def __init__(
        self,
        detector,
        default_boundaries: Optional[Iterable[str]] = None,
        max_request_devices: int = DEFAULT_MAX_REQUEST_DEVICES,
        registry: Optional[MetricsRegistry] = None,
    ):
        if not getattr(detector, "boundaries", None):
            raise ValueError("detector has no trained boundaries to serve")
        if max_request_devices < 1:
            raise ValueError(
                f"max_request_devices must be positive, got {max_request_devices}"
            )
        self.detector = detector
        self.available = tuple(
            name for name in ("B1", "B2", "B3", "B4", "B5")
            if name in detector.boundaries
        )
        self.default_boundaries = (
            tuple(default_boundaries) if default_boundaries else self.available
        )
        for name in self.default_boundaries:
            if name not in self.available:
                raise ValueError(
                    f"default boundary {name!r} not in bundle "
                    f"(available: {list(self.available)})"
                )
        self.max_request_devices = int(max_request_devices)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()

    @property
    def n_features(self) -> Optional[int]:
        """Fingerprint width the detector expects (None = first boundary's)."""
        width = self.detector.n_fingerprint_features_
        if width is not None:
            return width
        return self.detector.boundaries[self.available[0]].n_features

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate_request(
        self, fingerprints, boundaries: Optional[Iterable[str]] = None
    ) -> Tuple[np.ndarray, Tuple[str, ...]]:
        """Coerce and check one request; raise :class:`RequestValidationError`.

        Accepts an ``(n, d)`` batch or a single ``(d,)`` device (promoted to
        a one-row batch).  Checks run in cheapest-first order so malformed
        payloads are rejected before any O(n*d) work.
        """
        if boundaries is None:
            names: Tuple[str, ...] = self.default_boundaries
        else:
            if isinstance(boundaries, str):
                boundaries = (boundaries,)
            names = tuple(boundaries)
            if not names:
                raise RequestValidationError(
                    "empty_boundaries", "request names an empty boundary list"
                )
            for name in names:
                if name not in self.available:
                    raise RequestValidationError(
                        "unknown_boundary",
                        f"boundary {name!r} not available "
                        f"(bundle carries {list(self.available)})",
                    )
        try:
            array = np.asarray(fingerprints, dtype=float)
        except (TypeError, ValueError):
            raise RequestValidationError(
                "bad_dtype", "fingerprints are not numeric"
            )
        if array.ndim == 1:
            array = array[None, :]
        if array.ndim != 2:
            raise RequestValidationError(
                "bad_shape",
                f"fingerprints must be (devices x features), got shape "
                f"{array.shape}",
            )
        if array.shape[0] == 0:
            raise RequestValidationError(
                "empty_batch", "request contains no devices"
            )
        if array.shape[0] > self.max_request_devices:
            raise RequestValidationError(
                "too_large",
                f"request has {array.shape[0]} devices, cap is "
                f"{self.max_request_devices}",
            )
        expected = self.n_features
        if expected is not None and array.shape[1] != expected:
            raise RequestValidationError(
                "bad_width",
                f"fingerprints have {array.shape[1]} features, detector "
                f"expects {expected}",
            )
        if not np.all(np.isfinite(array)):
            raise RequestValidationError(
                "non_finite", "fingerprints contain NaN or infinite values"
            )
        return array, names

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def score(
        self, fingerprints, boundaries: Optional[Iterable[str]] = None
    ) -> ScoreResult:
        """Validate and score one request (thread-safe)."""
        start = time.perf_counter()
        array, names = self.validate_request(fingerprints, boundaries)
        with self._lock:
            scores = self.detector.decision_scores_batch(array, boundaries=names)
        verdicts = {name: values >= 0.0 for name, values in scores.items()}
        self._record(array.shape[0], verdicts, time.perf_counter() - start)
        return ScoreResult(
            scores=scores, verdicts=verdicts, n_devices=int(array.shape[0])
        )

    def _record(self, n_devices: int, verdicts: Dict[str, np.ndarray],
                seconds: float) -> None:
        registry = self.registry
        registry.counter("serve.requests").inc()
        registry.counter("serve.devices_scored").inc(n_devices)
        registry.histogram("serve.batch_size").observe(n_devices)
        registry.histogram("serve.latency_ms").observe(seconds * 1e3)
        for name, flags in verdicts.items():
            passed = int(np.sum(flags))
            registry.counter(f"serve.verdicts.{name}.trojan_free").inc(passed)
            registry.counter(f"serve.verdicts.{name}.flagged").inc(
                len(flags) - passed
            )

    def metrics_snapshot(self) -> dict:
        """JSON-ready snapshot of the engine's metrics registry."""
        return self.registry.snapshot()


class _PendingRequest:
    """One queued request: inputs + a completion event."""

    __slots__ = ("fingerprints", "names", "event", "result", "error")

    def __init__(self, fingerprints: np.ndarray, names: Tuple[str, ...]):
        self.fingerprints = fingerprints
        self.names = names
        self.event = threading.Event()
        self.result: Optional[ScoreResult] = None
        self.error: Optional[BaseException] = None


class BatchingEngine:
    """Micro-batching front over a :class:`ScoringEngine`.

    ``submit`` validates immediately (a malformed request must never poison
    a batch), enqueues, and blocks until the worker thread has scored the
    request as part of a micro-batch.  Requests sharing a boundary subset
    are stacked into one array and scored in a single vectorized pass.

    Parameters
    ----------
    engine:
        The synchronous scoring engine.
    max_batch:
        Maximum devices drained into one scoring pass.
    max_wait_ms:
        How long the worker waits for stragglers after the first queued
        request before closing the batch.
    max_queue:
        Bound on queued requests; beyond it ``submit`` raises
        :class:`QueueFullError` immediately.
    """

    def __init__(
        self,
        engine: ScoringEngine,
        max_batch: int = 256,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue = int(max_queue)
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------

    def submit(
        self, fingerprints, boundaries: Optional[Iterable[str]] = None,
        timeout: Optional[float] = 30.0,
    ) -> ScoreResult:
        """Queue one request and block until its batch was scored."""
        array, names = self.engine.validate_request(fingerprints, boundaries)
        request = _PendingRequest(array, names)
        with self._lock:
            if self._closed:
                raise RuntimeError("BatchingEngine is closed")
            if len(self._queue) >= self.max_queue:
                self.engine.registry.counter("serve.rejected").inc()
                raise QueueFullError(len(self._queue))
            self._queue.append(request)
            self.engine.registry.gauge("serve.queue_depth").set(len(self._queue))
            self._wakeup.notify()
        if not request.event.wait(timeout):
            raise TimeoutError("scoring request timed out")
        if request.error is not None:
            raise request.error
        return request.result

    def close(self) -> None:
        """Stop the worker after it drains and scores what is already queued."""
        with self._lock:
            self._closed = True
            self._wakeup.notify_all()
        self._worker.join(timeout=5.0)

    def __enter__(self) -> "BatchingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def queue_depth(self) -> int:
        """Number of requests currently queued."""
        with self._lock:
            return len(self._queue)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------

    def _drain_batch(self) -> List[_PendingRequest]:
        """Collect up to ``max_batch`` devices, FIFO, waiting for stragglers."""
        with self._lock:
            while not self._queue and not self._closed:
                self._wakeup.wait()
            if self._closed and not self._queue:
                return []
        # Straggler window: let concurrent submitters land in this batch.
        if self.max_wait_ms > 0:
            deadline = time.monotonic() + self.max_wait_ms / 1e3
            while time.monotonic() < deadline:
                with self._lock:
                    devices = sum(r.fingerprints.shape[0] for r in self._queue)
                    if devices >= self.max_batch or self._closed:
                        break
                time.sleep(min(0.0005, self.max_wait_ms / 1e3))
        batch: List[_PendingRequest] = []
        devices = 0
        with self._lock:
            while self._queue:
                request = self._queue[0]
                size = request.fingerprints.shape[0]
                if batch and devices + size > self.max_batch:
                    break
                batch.append(self._queue.popleft())
                devices += size
            self.engine.registry.gauge("serve.queue_depth").set(len(self._queue))
        return batch

    def _run(self) -> None:
        while True:
            batch = self._drain_batch()
            if not batch:
                with self._lock:
                    if self._closed and not self._queue:
                        return
                continue
            self._score_batch(batch)

    def _score_batch(self, batch: List[_PendingRequest]) -> None:
        # Group by requested boundary subset: each group becomes one
        # stacked array and one vectorized scoring pass.
        groups: Dict[Tuple[str, ...], List[_PendingRequest]] = {}
        for request in batch:
            groups.setdefault(request.names, []).append(request)
        for names, members in groups.items():
            try:
                stacked = (
                    members[0].fingerprints
                    if len(members) == 1
                    else np.concatenate([m.fingerprints for m in members], axis=0)
                )
                result = self.engine.score(stacked, boundaries=names)
                offset = 0
                for member in members:
                    n = member.fingerprints.shape[0]
                    member.result = ScoreResult(
                        scores={k: v[offset:offset + n]
                                for k, v in result.scores.items()},
                        verdicts={k: v[offset:offset + n]
                                  for k, v in result.verdicts.items()},
                        n_devices=n,
                    )
                    offset += n
            except BaseException as error:  # surface to every waiter
                for member in members:
                    member.error = error
            finally:
                for member in members:
                    member.event.set()
