"""Typed Python client for the screening service (stdlib ``urllib`` only).

Used by the test suite, the load generator and the ``repro.cli score``
command; doubles as executable documentation of the wire format::

    client = ScoringClient("http://127.0.0.1:8642")
    client.wait_ready()
    result = client.score(fingerprints, boundaries=["B5"])
    result.verdicts["B5"]        # boolean array, True = Trojan-free
    client.metrics()["counters"]["serve.devices_scored"]

Errors come back as :class:`ServerError` carrying the HTTP status and the
server's structured ``{"code", "message"}`` error body.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterable, Optional

import numpy as np

from repro.serve.engine import ScoreResult


class ServerError(RuntimeError):
    """The server answered with an error status."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message


class ScoringClient:
    """Minimal JSON-over-HTTP client for a :class:`DetectorServer`.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``"http://127.0.0.1:8642"``.
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raise self._to_server_error(error)

    @staticmethod
    def _to_server_error(error: urllib.error.HTTPError) -> ServerError:
        code, message = "unknown", error.reason
        try:
            parsed = json.loads(error.read().decode("utf-8"))
            code = parsed["error"]["code"]
            message = parsed["error"]["message"]
        except Exception:
            pass
        return ServerError(error.code, code, message)

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def ready(self) -> bool:
        """``GET /readyz``; False on 503 instead of raising."""
        try:
            return self._request("GET", "/readyz").get("status") == "ready"
        except ServerError as error:
            if error.status == 503:
                return False
            raise

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> None:
        """Poll ``/readyz`` until ready or ``timeout`` seconds elapsed."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if self.ready():
                    return
            except (urllib.error.URLError, ConnectionError, OSError):
                pass
            time.sleep(interval)
        raise TimeoutError(f"server at {self.base_url} not ready "
                           f"after {timeout}s")

    def metrics(self) -> dict:
        """``GET /metricz``: the serving metrics snapshot."""
        return self._request("GET", "/metricz")

    def score(
        self, fingerprints, boundaries: Optional[Iterable[str]] = None
    ) -> ScoreResult:
        """``POST /v1/score``: screen one device or one batch.

        Returns the same :class:`~repro.serve.engine.ScoreResult` shape the
        in-process engine produces (scores/verdicts as numpy arrays).
        """
        array = np.asarray(fingerprints, dtype=float)
        payload: dict = {"fingerprints": array.tolist()}
        if boundaries is not None:
            payload["boundaries"] = list(boundaries)
        reply = self._request("POST", "/v1/score", payload)
        scores = {
            name: np.asarray(block["scores"], dtype=float)
            for name, block in reply["boundaries"].items()
        }
        verdicts = {
            name: np.asarray(block["trojan_free"], dtype=bool)
            for name, block in reply["boundaries"].items()
        }
        return ScoreResult(
            scores=scores, verdicts=verdicts, n_devices=int(reply["n_devices"])
        )
