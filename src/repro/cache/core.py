"""Disk-backed artifact store: atomic writes, LRU size cap, crash safety.

Layout: one directory per cache root, one file per entry::

    <root>/
        <stage>/<key>.npz      # key = content hash from repro.cache.keys

Concurrency model: entries are immutable once written (same key => same
bytes), so parallel writers at worst duplicate work — each writes to a
private temp file in the entry's directory and publishes it with
``os.replace``, which is atomic on POSIX.  Readers that lose a race with
eviction simply miss and recompute.  Corrupt entries (truncated writes,
version mismatches, unknown codec tags) are deleted on first read and
reported as misses: the cache can only ever cost a recompute, never an
incorrect result.

Recency for the LRU cap is tracked through file mtimes — a hit re-touches
its entry — so eviction needs no index file that could itself be corrupted.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.cache import codec
from repro.cache.keys import make_key
from repro.obs import metrics as obs_metrics

#: Default size cap: generous for experiment artifacts, bounded for CI.
DEFAULT_MAX_BYTES = 2 * 1024**3

ENTRY_SUFFIX = ".npz"

#: Sentinel distinguishing "miss" from a cached ``None``.
MISS = object()


@dataclass
class StageCounts:
    """Session counters for one stage."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


@dataclass
class CacheSession:
    """In-memory counters of one process's cache usage (for manifests)."""

    per_stage: Dict[str, StageCounts] = field(default_factory=dict)
    bytes_read: int = 0
    bytes_written: int = 0
    evictions: int = 0
    corrupt_entries: int = 0

    def stage(self, name: str) -> StageCounts:
        return self.per_stage.setdefault(name, StageCounts())

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.per_stage.values())

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self.per_stage.values())

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "evictions": self.evictions,
            "corrupt_entries": self.corrupt_entries,
            "stages": {
                name: counts.as_dict()
                for name, counts in sorted(self.per_stage.items())
            },
        }


class ArtifactCache:
    """Content-addressed artifact cache over one root directory.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first store).
    max_bytes:
        LRU size cap; a store that pushes the total above it evicts the
        least-recently-used entries until the cache fits again.
    enabled:
        Master switch: a disabled cache answers every lookup with a miss
        and drops every store, so call sites need no conditionals.
    """

    def __init__(self, root: str, max_bytes: int = DEFAULT_MAX_BYTES,
                 enabled: bool = True):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = os.path.abspath(root)
        self.max_bytes = int(max_bytes)
        self.enabled = bool(enabled)
        self.session = CacheSession()

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    def _entry_path(self, stage: str, key: str) -> str:
        return os.path.join(self.root, stage, key + ENTRY_SUFFIX)

    def _iter_entries(self):
        """Yield ``(path, stage, size, mtime)`` for every entry on disk."""
        if not os.path.isdir(self.root):
            return
        for stage in sorted(os.listdir(self.root)):
            stage_dir = os.path.join(self.root, stage)
            if not os.path.isdir(stage_dir):
                continue
            for name in sorted(os.listdir(stage_dir)):
                if not name.endswith(ENTRY_SUFFIX):
                    continue
                path = os.path.join(stage_dir, name)
                try:
                    info = os.stat(path)
                except OSError:
                    continue  # lost a race with eviction
                yield path, stage, info.st_size, info.st_mtime

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------

    def load(self, stage: str, key: str) -> Any:
        """The cached value, or :data:`MISS`.

        Any read failure — truncated file, bad payload, unknown tag —
        deletes the entry and misses; the caller recomputes.
        """
        if not self.enabled:
            return MISS
        path = self._entry_path(stage, key)
        try:
            size = os.path.getsize(path)
            value, _ = codec.load_npz(path)
        except FileNotFoundError:
            self._count_miss(stage)
            return MISS
        except Exception:
            # Corrupt or unreadable entry: drop it, fall back to recompute.
            self.session.corrupt_entries += 1
            obs_metrics.counter("cache.corrupt_entries").inc()
            self._remove(path)
            self._count_miss(stage)
            return MISS
        try:
            os.utime(path)  # LRU recency bump
        except OSError:
            pass
        counts = self.session.stage(stage)
        counts.hits += 1
        self.session.bytes_read += size
        obs_metrics.counter("cache.hits").inc()
        obs_metrics.counter(f"cache.{stage}.hits").inc()
        obs_metrics.counter("cache.bytes_read").inc(size)
        return value

    def store(self, stage: str, key: str, value: Any) -> bool:
        """Write one entry atomically; returns False when disabled/uncodable."""
        if not self.enabled:
            return False
        path = self._entry_path(stage, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=ENTRY_SUFFIX
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                size = codec.dump_npz(handle, value, stage)
            os.replace(temp_path, path)
        except Exception:
            self._remove(temp_path)
            raise
        counts = self.session.stage(stage)
        counts.stores += 1
        self.session.bytes_written += size
        obs_metrics.counter("cache.stores").inc()
        obs_metrics.counter("cache.bytes_written").inc(size)
        self._evict_over_cap()
        return True

    def get_or_compute(self, stage: str, parts: Any,
                       compute: Callable[[], Any], version: int = 1) -> Any:
        """The cached value for ``(stage, parts)``, computing + storing on miss."""
        if not self.enabled:
            return compute()
        key = make_key(stage, parts, version=version)
        value = self.load(stage, key)
        if value is not MISS:
            return value
        value = compute()
        self.store(stage, key, value)
        return value

    def _count_miss(self, stage: str) -> None:
        self.session.stage(stage).misses += 1
        obs_metrics.counter("cache.misses").inc()
        obs_metrics.counter(f"cache.{stage}.misses").inc()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def _remove(self, path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def _evict_over_cap(self) -> None:
        entries = list(self._iter_entries())
        total = sum(size for _, _, size, _ in entries)
        if total <= self.max_bytes:
            return
        for path, _, size, _ in sorted(entries, key=lambda e: e[3]):
            self._remove(path)
            self.session.evictions += 1
            obs_metrics.counter("cache.evictions").inc()
            total -= size
            if total <= self.max_bytes:
                break

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path, *_ in list(self._iter_entries()):
            self._remove(path)
            removed += 1
        return removed

    def disk_stats(self) -> dict:
        """On-disk inventory: entry counts and bytes, total and per stage."""
        stages: Dict[str, dict] = {}
        total_entries = 0
        total_bytes = 0
        for _, stage, size, _ in self._iter_entries():
            record = stages.setdefault(stage, {"entries": 0, "bytes": 0})
            record["entries"] += 1
            record["bytes"] += size
            total_entries += 1
            total_bytes += size
        return {
            "root": self.root,
            "max_bytes": self.max_bytes,
            "entries": total_entries,
            "bytes": total_bytes,
            "stages": dict(sorted(stages.items())),
        }

    def provenance(self) -> dict:
        """JSON-ready session record for run manifests."""
        return {
            "enabled": self.enabled,
            "root": self.root,
            "max_bytes": self.max_bytes,
            "session": self.session.as_dict(),
        }
