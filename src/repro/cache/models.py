"""Codec registrations for the library's cacheable model classes.

Imported lazily by :mod:`repro.cache.codec` the first time a non-primitive
value is (de)serialized, so the cache package itself never drags in the
learn stack.  Tags are part of the on-disk entry format — renaming one
orphans existing entries (they decode as corrupt and get recomputed).
"""

from __future__ import annotations

from repro.cache.codec import register
from repro.core.boundaries import TrustedRegion
from repro.core.pipeline import GoldenChipFreeDetector
from repro.learn.elliptic import EllipticEnvelope
from repro.learn.latent import LatentGainMars
from repro.learn.mars import MarsRegression, MultiOutputMars
from repro.learn.ocsvm import OneClassSvm
from repro.stats.preprocessing import Whitener

register("mars", MarsRegression)
register("mars_multi", MultiOutputMars)
register("latent_gain_mars", LatentGainMars)
register("ocsvm", OneClassSvm)
register("elliptic", EllipticEnvelope)
register("whitener", Whitener)
register("trusted_region", TrustedRegion)
# The whole fitted detector is itself codec-encodable: detector bundles
# (repro.serve.bundle) serialize it as one value through the same machinery
# the stage cache uses for its parts.
register("detector", GoldenChipFreeDetector)
