"""Value codec: Python object trees <-> one versioned npz payload.

A cache entry is a single ``.npz`` file holding every array of the cached
value under ``a0, a1, ...`` plus one ``__meta__`` byte array: the JSON
skeleton of the value with arrays replaced by ``{"__nd__": i}`` markers.
One file per entry keeps writes atomic (write-temp + ``os.replace``) and
eviction trivial.

Supported values: ``None``, ``bool``, ``int``, ``float``, ``str``, lists,
tuples, string-keyed dicts, numpy arrays/scalars, and **registered model
classes** — any class exposing ``to_state() -> dict`` and a
``from_state(state)`` classmethod can be registered under a stable tag and
then cached like a plain value (the fitted MARS regressions and trusted
regions use this).  Registration of the library's models is deferred to
:mod:`repro.cache.models` so importing the codec never drags in the learn
stack.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Tuple, Type

import numpy as np

#: Payload format version, stored in every entry; readers reject mismatches.
PAYLOAD_VERSION = 1

META_ENTRY = "__meta__"


class CacheCodecError(TypeError):
    """Raised when a value cannot be encoded to / decoded from a payload."""


_BY_CLASS: Dict[Type, str] = {}
_BY_TAG: Dict[str, Type] = {}
_models_registered = False


def register(tag: str, cls: Type) -> None:
    """Register a model class under a stable tag.

    The class must provide ``to_state()`` returning a codec-encodable dict
    and a ``from_state(state)`` classmethod inverting it.  Tags are part of
    the on-disk format: renaming one invalidates existing entries (they
    fail to decode and are treated as corrupt, i.e. recomputed).
    """
    if not hasattr(cls, "to_state") or not hasattr(cls, "from_state"):
        raise CacheCodecError(f"{cls.__name__} lacks to_state/from_state")
    _BY_CLASS[cls] = tag
    _BY_TAG[tag] = cls


def _ensure_models_registered() -> None:
    """Import the library's model registrations exactly once, lazily."""
    global _models_registered
    if not _models_registered:
        _models_registered = True
        from repro.cache import models  # noqa: F401  (registers on import)


def _encode_node(value: Any, arrays: List[np.ndarray]) -> Any:
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        return _encode_node(value.item(), arrays)
    if isinstance(value, np.ndarray):
        arrays.append(value)
        return {"__nd__": len(arrays) - 1}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_node(item, arrays) for item in value]}
    if isinstance(value, list):
        return [_encode_node(item, arrays) for item in value]
    if isinstance(value, dict):
        out = {}
        for key in value:
            if not isinstance(key, str) or key.startswith("__"):
                raise CacheCodecError(f"unsupported dict key {key!r}")
            out[key] = _encode_node(value[key], arrays)
        return out
    _ensure_models_registered()
    tag = _BY_CLASS.get(type(value))
    if tag is not None:
        return {"__obj__": tag, "state": _encode_node(value.to_state(), arrays)}
    raise CacheCodecError(
        f"cannot cache values of type {type(value).__name__!r}; register a "
        "to_state/from_state codec for it in repro.cache.models"
    )


def _decode_node(node: Any, arrays: Dict[str, np.ndarray]) -> Any:
    if isinstance(node, list):
        return [_decode_node(item, arrays) for item in node]
    if isinstance(node, dict):
        if "__nd__" in node:
            return arrays[f"a{node['__nd__']}"]
        if "__tuple__" in node:
            return tuple(_decode_node(item, arrays) for item in node["__tuple__"])
        if "__obj__" in node:
            _ensure_models_registered()
            cls = _BY_TAG.get(node["__obj__"])
            if cls is None:
                raise CacheCodecError(f"unknown codec tag {node['__obj__']!r}")
            return cls.from_state(_decode_node(node["state"], arrays))
        return {key: _decode_node(value, arrays) for key, value in node.items()}
    return node


def encode(value: Any) -> Tuple[bytes, Dict[str, np.ndarray]]:
    """Encode ``value`` into (meta JSON bytes, named array dict)."""
    arrays: List[np.ndarray] = []
    tree = _encode_node(value, arrays)
    meta = json.dumps({"payload_version": PAYLOAD_VERSION, "value": tree},
                      sort_keys=True).encode("utf-8")
    return meta, {f"a{i}": array for i, array in enumerate(arrays)}


def decode(meta: bytes, arrays: Dict[str, np.ndarray]) -> Any:
    """Invert :func:`encode` (raises ``CacheCodecError`` on bad payloads)."""
    try:
        parsed = json.loads(meta.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CacheCodecError(f"corrupt payload metadata: {error}") from error
    if parsed.get("payload_version") != PAYLOAD_VERSION:
        raise CacheCodecError(
            f"payload version {parsed.get('payload_version')!r} not supported"
        )
    return _decode_node(parsed["value"], arrays)


def dump_npz(handle, value: Any, stage: str) -> int:
    """Serialize ``value`` into an open binary file as npz; returns byte size.

    The stage name rides along in the metadata so ``cache stats`` can
    attribute disk usage without a separate index file.
    """
    meta, arrays = encode(value)
    header = json.dumps({"stage": stage}).encode("utf-8")
    np.savez(
        handle,
        **{
            META_ENTRY: np.frombuffer(meta, dtype=np.uint8),
            "__stage__": np.frombuffer(header, dtype=np.uint8),
            **arrays,
        },
    )
    return handle.tell()


def load_npz(path) -> Tuple[Any, str]:
    """Load one entry file; returns (value, stage).

    Raises ``CacheCodecError`` (or numpy/zipfile errors) on corruption —
    the store maps any failure to a cache miss plus entry removal.
    """
    with np.load(path, allow_pickle=False) as archive:
        if META_ENTRY not in archive.files:
            raise CacheCodecError("entry has no metadata record")
        meta = archive[META_ENTRY].tobytes()
        stage = "unknown"
        if "__stage__" in archive.files:
            try:
                stage = json.loads(archive["__stage__"].tobytes()).get("stage", stage)
            except (UnicodeDecodeError, json.JSONDecodeError):
                pass
        arrays = {
            name: archive[name] for name in archive.files
            if name not in (META_ENTRY, "__stage__")
        }
        return decode(meta, arrays), stage


def read_stage(path) -> str:
    """The stage recorded in an entry file (``"unknown"`` when absent)."""
    with np.load(path, allow_pickle=False) as archive:
        if "__stage__" not in archive.files:
            return "unknown"
        try:
            return json.loads(archive["__stage__"].tobytes()).get("stage", "unknown")
        except (UnicodeDecodeError, json.JSONDecodeError):
            return "unknown"
