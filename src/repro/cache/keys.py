"""Stable content-addressed cache keys.

A cache key must be identical across processes, interpreter restarts and
worker counts whenever the *semantic* inputs of a stage are identical, and
must change whenever any of them changes.  Keys are therefore SHA-256
digests over a canonical JSON rendering of

* the **stage name** (``"mc"``, ``"boundary"``, ...),
* a **code-version salt** — the global cache schema version plus a
  per-stage version number that call sites bump whenever the algorithm
  behind the stage changes its output,
* the canonicalized **key parts**: configuration fields, seeds and the
  digests of input arrays.

Canonicalization rules: dataclasses become sorted dicts, tuples become
lists, numpy scalars become Python scalars, and numpy arrays are replaced
by their content digest (dtype + shape + C-order bytes).  Floats rely on
``repr`` round-tripping (exact for IEEE doubles), so ``0.1`` hashes the
same everywhere.  Anything else is rejected loudly — a silently unstable
key (e.g. an object hashed by ``id``) would poison the cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

import numpy as np

#: Global schema salt: bump when the key or entry format itself changes.
CACHE_SCHEMA_VERSION = 1

#: Length of the hex key used for entry filenames (128 bits of SHA-256).
KEY_HEX_LENGTH = 32


class CacheKeyError(TypeError):
    """Raised when a value cannot be canonicalized into a stable key."""


def digest_array(array: np.ndarray) -> str:
    """Content digest of one array: dtype, shape and C-order bytes."""
    array = np.asarray(array)
    hasher = hashlib.sha256()
    hasher.update(array.dtype.str.encode("ascii"))
    hasher.update(repr(array.shape).encode("ascii"))
    hasher.update(np.ascontiguousarray(array).tobytes())
    return hasher.hexdigest()[:KEY_HEX_LENGTH]


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to the JSON-stable form that is hashed into keys."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value:  # NaN compares unequal to itself
            return {"__float__": "nan"}
        return value
    if isinstance(value, (np.bool_, np.integer)):
        return value.item()
    if isinstance(value, np.floating):
        return canonicalize(value.item())
    if isinstance(value, np.ndarray):
        return {"__array__": digest_array(value)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return canonicalize(dataclasses.asdict(value))
    if isinstance(value, dict):
        out = {}
        for key in value:
            if not isinstance(key, str):
                raise CacheKeyError(
                    f"cache key dicts need string keys, got {key!r}"
                )
            out[key] = canonicalize(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    raise CacheKeyError(
        f"cannot canonicalize {type(value).__name__!r} into a cache key; "
        "pass plain scalars, arrays, dataclasses or containers of them"
    )


def make_key(stage: str, parts: Any, version: int = 1) -> str:
    """The content-addressed key of one (stage, inputs) pair.

    ``version`` is the per-stage code-version salt: bump it at the call
    site whenever the stage's computation changes what it would produce
    for identical inputs.
    """
    if not stage or "/" in stage or stage.startswith("."):
        raise CacheKeyError(f"invalid stage name {stage!r}")
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "stage": stage,
        "stage_version": int(version),
        "parts": canonicalize(parts),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:KEY_HEX_LENGTH]
