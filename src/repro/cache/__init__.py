"""``repro.cache`` — content-addressed compute cache for pipeline stages.

The experiment suite re-runs the same expensive stages constantly: every
entry point re-simulates the Monte Carlo population, and an ablation sweep
refits regressions and boundaries that only one arm actually varies.  This
package makes those stages incremental: each one is keyed by a stable hash
of its semantic inputs (canonical config + seed + stage name + code-version
salt) and its artifact — simulated populations, fitted MARS / OCSVM / KMM
models, derived datasets S1..S5 — is stored as a versioned npz/JSON blob.
Cached and fresh runs are bit-identical by construction: only values that
are fully determined by the key are ever cached, and every stochastic stage
of the pipeline owns an independent seed stream, so skipping one never
perturbs another.

The cache is **off by default**.  Enable it per process with
:func:`configure`, per invocation with the CLI's ``--cache`` flag, or
globally with ``REPRO_CACHE=1`` (root: ``REPRO_CACHE_DIR``, default
``.repro-cache``; cap: ``REPRO_CACHE_MAX_BYTES``).  Library call sites go
through :func:`stage_cached`, which is a plain pass-through whenever the
cache is disabled.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Optional

from repro.cache.core import DEFAULT_MAX_BYTES, MISS, ArtifactCache
from repro.cache.keys import (
    CACHE_SCHEMA_VERSION,
    CacheKeyError,
    canonicalize,
    digest_array,
    make_key,
)
from repro.cache.codec import CacheCodecError, register

__all__ = [
    "ArtifactCache",
    "CACHE_SCHEMA_VERSION",
    "CacheCodecError",
    "CacheKeyError",
    "DEFAULT_MAX_BYTES",
    "MISS",
    "activated",
    "canonicalize",
    "configure",
    "default_root",
    "digest_array",
    "get_cache",
    "is_enabled",
    "make_key",
    "provenance",
    "register",
    "stage_cached",
]

_active: Optional[ArtifactCache] = None
_env_resolved = False


def default_root() -> str:
    """The cache directory honoring ``REPRO_CACHE_DIR``."""
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def _default_max_bytes() -> int:
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES")
    return int(raw) if raw else DEFAULT_MAX_BYTES


def _resolve_from_env() -> None:
    """Honor ``REPRO_CACHE=1`` on first use (explicit configure() wins)."""
    global _active, _env_resolved
    if _env_resolved:
        return
    _env_resolved = True
    if os.environ.get("REPRO_CACHE", "").lower() in ("1", "true", "yes", "on"):
        _active = ArtifactCache(default_root(), max_bytes=_default_max_bytes())


def configure(
    enabled: bool = True,
    root: Optional[str] = None,
    max_bytes: Optional[int] = None,
) -> Optional[ArtifactCache]:
    """Install (or remove) the process-wide cache; returns the active one."""
    global _active, _env_resolved
    _env_resolved = True
    if not enabled:
        _active = None
        return None
    _active = ArtifactCache(
        root or default_root(),
        max_bytes=max_bytes if max_bytes is not None else _default_max_bytes(),
    )
    return _active


def get_cache() -> Optional[ArtifactCache]:
    """The process-wide cache, or ``None`` when caching is off."""
    _resolve_from_env()
    return _active


def is_enabled() -> bool:
    """Whether a process-wide cache is active."""
    cache = get_cache()
    return cache is not None and cache.enabled


@contextmanager
def activated(cache: Optional[ArtifactCache]):
    """Temporarily install ``cache`` as the process-wide cache (tests)."""
    global _active, _env_resolved
    previous, previous_resolved = _active, _env_resolved
    _active, _env_resolved = cache, True
    try:
        yield cache
    finally:
        _active, _env_resolved = previous, previous_resolved


def stage_cached(stage: str, parts: Any, compute: Callable[[], Any],
                 version: int = 1) -> Any:
    """Run ``compute`` through the active cache (pass-through when off)."""
    cache = get_cache()
    if cache is None:
        return compute()
    return cache.get_or_compute(stage, parts, compute, version=version)


def provenance() -> Optional[dict]:
    """Manifest-ready record of this process's cache usage (``None`` = off)."""
    cache = get_cache()
    return None if cache is None else cache.provenance()
