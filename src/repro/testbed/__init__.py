"""The experimentation platform: the wireless cryptographic IC and its bench.

A :class:`WirelessCryptoChip` chains the AES-128 core, the serialization
buffer and the UWB transmitter of one physical die (Trojan-free or infested).
A :class:`FingerprintCampaign` measures the paper's side-channel fingerprint
(output power of ``nm`` fixed ciphertext block transmissions) and the PCM
vector of a device.
"""

from repro.testbed.campaign import FingerprintCampaign, MeasuredDevice
from repro.testbed.chip import WirelessCryptoChip
from repro.testbed.serializer import SerializationBuffer
from repro.testbed.spec import ProductionTest, SpecLimits, SpecResult

__all__ = [
    "WirelessCryptoChip",
    "SerializationBuffer",
    "ProductionTest",
    "SpecLimits",
    "SpecResult",
    "FingerprintCampaign",
    "MeasuredDevice",
]
