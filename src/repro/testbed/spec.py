"""Production specification tests — the tests the Trojans must survive.

The paper's premise is that its Trojans "evade all traditional manufacturing
test methods": they do not change functionality, and their parametric
footprint hides inside the margins a production spec must allow for process
variation.  This module makes that claim executable:

* functional test — known-answer AES encryption;
* parametric tests — transmission power and pulse centre frequency against
  spec limits derived from the clean population's own spread.

Tests and the attack demo assert that every Trojan-infested device passes
the full production flow while the side-channel detector still catches it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.crypto.aes import AES128
from repro.crypto.bits import random_block
from repro.rf.receiver import BandPassReceiver
from repro.testbed.chip import WirelessCryptoChip
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class SpecLimits:
    """Parametric limits of the production test.

    Power limits are on the summed block energy of the test pattern set;
    frequency limits on the transmitter centre frequency.
    """

    power_low: float
    power_high: float
    freq_low_ghz: float
    freq_high_ghz: float

    def __post_init__(self):
        if not self.power_low < self.power_high:
            raise ValueError("power_low must be below power_high")
        if not 0 < self.freq_low_ghz < self.freq_high_ghz:
            raise ValueError("frequency limits must be positive and ordered")


@dataclass(frozen=True)
class SpecResult:
    """Outcome of the production flow for one device."""

    functional_pass: bool
    power: float
    power_pass: bool
    frequency_ghz: float
    frequency_pass: bool

    @property
    def passed(self) -> bool:
        """Overall production verdict."""
        return self.functional_pass and self.power_pass and self.frequency_pass


@dataclass
class ProductionTest:
    """A complete production test program.

    Parameters
    ----------
    key:
        The on-chip key the functional test checks against.
    patterns:
        Plaintext test patterns (functional + parametric stimuli).
    limits:
        Parametric spec limits; build them from a clean reference device
        with :meth:`centered_on`.
    receiver:
        Power-measurement front-end of the production tester.
    """

    key: bytes
    patterns: List[bytes]
    limits: SpecLimits
    receiver: BandPassReceiver = field(default_factory=BandPassReceiver)

    @classmethod
    def centered_on(
        cls,
        reference: WirelessCryptoChip,
        margin: float = 0.25,
        freq_margin: float = 0.25,
        n_patterns: int = 4,
        seed: SeedLike = None,
        receiver: Optional[BandPassReceiver] = None,
    ) -> "ProductionTest":
        """Build a test program with limits centred on a reference device.

        ``margin`` is the allowed relative deviation of the summed power;
        it must exceed the process spread (~±14 %, 2 sigma on this platform)
        or the line would reject good parts.
        """
        if not 0 < margin < 1:
            raise ValueError(f"margin must be in (0, 1), got {margin}")
        if not 0 < freq_margin < 1:
            raise ValueError(f"freq_margin must be in (0, 1), got {freq_margin}")
        rng = as_generator(seed)
        patterns = [random_block(rng) for _ in range(n_patterns)]
        receiver = receiver or BandPassReceiver()
        power = cls._summed_power(reference, patterns, receiver)
        freq = reference.transmitter.center_frequency_ghz()
        limits = SpecLimits(
            power_low=power * (1.0 - margin),
            power_high=power * (1.0 + margin),
            freq_low_ghz=freq * (1.0 - freq_margin),
            freq_high_ghz=freq * (1.0 + freq_margin),
        )
        return cls(key=reference.key, patterns=patterns, limits=limits,
                   receiver=receiver)

    @staticmethod
    def _summed_power(chip: WirelessCryptoChip, patterns, receiver) -> float:
        return float(
            sum(receiver.block_power(chip.transmit_plaintext(p)) for p in patterns)
        )

    def run(self, chip: WirelessCryptoChip) -> SpecResult:
        """Run the full production flow on one device."""
        reference_aes = AES128(self.key)
        functional = all(
            chip.encrypt(p) == reference_aes.encrypt_block(p) for p in self.patterns
        )
        power = self._summed_power(chip, self.patterns, self.receiver)
        freq = chip.transmitter.center_frequency_ghz()
        return SpecResult(
            functional_pass=functional,
            power=power,
            power_pass=self.limits.power_low <= power <= self.limits.power_high,
            frequency_ghz=freq,
            frequency_pass=self.limits.freq_low_ghz <= freq <= self.limits.freq_high_ghz,
        )

    def yield_fraction(self, chips) -> float:
        """Fraction of ``chips`` passing the full flow."""
        chips = list(chips)
        if not chips:
            raise ValueError("need at least one chip")
        return float(np.mean([self.run(chip).passed for chip in chips]))
