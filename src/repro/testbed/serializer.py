"""The serialization buffer between the AES core and the UWB transmitter.

The digital back-end of the platform chip buffers each 128-bit ciphertext and
shifts it out MSB-first to the transmitter.  It is also the place where the
Trojan taps the datapath: the leaked key bit stream is aligned one-to-one
with the outgoing ciphertext bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.crypto.bits import BLOCK_BITS, bytes_to_bits


@dataclass(frozen=True)
class SerializationBuffer:
    """Fixed-function 128-bit serializer (MSB-first)."""

    block_bits: int = BLOCK_BITS

    def serialize(self, ciphertext: bytes) -> np.ndarray:
        """Expand one ciphertext block into its outgoing bit stream.

        Raises ``ValueError`` for a block of the wrong size — the hardware
        buffer is exactly 128 bits wide.
        """
        if len(ciphertext) * 8 != self.block_bits:
            raise ValueError(
                f"ciphertext must be {self.block_bits // 8} bytes, got {len(ciphertext)}"
            )
        return bytes_to_bits(ciphertext)

    def serialize_many(self, ciphertexts: List[bytes]) -> List[np.ndarray]:
        """Serialize a sequence of blocks, preserving order."""
        return [self.serialize(block) for block in ciphertexts]
