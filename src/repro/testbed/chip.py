"""The wireless cryptographic IC: AES core + serializer + UWB transmitter.

One :class:`WirelessCryptoChip` is a *version* of the design instantiated on
a physical die: Trojan-free, or carrying one of the Trojans.  The paper's 40
fabricated chips each host all three versions; in this library the three
versions of one die share the same die-level process parameters (they sit on
the same silicon) while each version's analog structures get their own local
mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.crypto.aes import AES128
from repro.crypto.bits import bytes_to_bits
from repro.rf.pulse import PulseTrain
from repro.rf.uwb import UwbTransmitter
from repro.testbed.serializer import SerializationBuffer
from repro.trojans.base import TrojanModel


@dataclass
class WirelessCryptoChip:
    """One design version placed on one die.

    Parameters
    ----------
    die:
        Any object exposing ``structure_params(name) -> ProcessParameters``
        (a :class:`~repro.silicon.foundry.FabricatedDie` or a simulated die).
    key:
        The on-chip AES-128 key.
    trojan:
        ``None`` for the Trojan-free version, or a
        :class:`~repro.trojans.base.TrojanModel`.
    version:
        Label distinguishing co-located versions on one die; it namespaces
        the analog structures so each version has its own local mismatch.
    """

    die: object
    key: bytes
    trojan: Optional[TrojanModel] = None
    version: str = "TF"

    def __post_init__(self):
        self._aes = AES128(self.key)
        self._serializer = SerializationBuffer()
        self._key_bits = bytes_to_bits(self.key)
        pa_params = self.die.structure_params(f"{self.version}.uwb_pa")
        shaper_params = self.die.structure_params(f"{self.version}.uwb_shaper")
        self._transmitter = UwbTransmitter(pa_params=pa_params, shaper_params=shaper_params)

    @property
    def transmitter(self) -> UwbTransmitter:
        """The chip's UWB front-end (useful for spec checks)."""
        return self._transmitter

    def is_infested(self) -> bool:
        """Whether this version carries a hardware Trojan."""
        return self.trojan is not None

    def encrypt(self, plaintext: bytes) -> bytes:
        """AES-encrypt one 16-byte block (identical on all versions)."""
        return self._aes.encrypt_block(plaintext)

    def transmit_plaintext(self, plaintext: bytes) -> PulseTrain:
        """Encrypt ``plaintext`` and transmit the ciphertext block over UWB."""
        ciphertext = self.encrypt(plaintext)
        return self.transmit_ciphertext(ciphertext)

    def transmit_ciphertext(self, ciphertext: bytes) -> PulseTrain:
        """Serialize and transmit an already-encrypted block."""
        bits = self._serializer.serialize(ciphertext)
        return self._transmitter.transmit(
            bits, trojan=self.trojan, key_bits=self._key_bits if self.trojan else None
        )

    def transmit_session(self, plaintexts: List[bytes]) -> List[PulseTrain]:
        """Transmit a sequence of plaintext blocks (one pulse train each)."""
        return [self.transmit_plaintext(plaintext) for plaintext in plaintexts]
