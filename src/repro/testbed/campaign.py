"""Measurement campaign: fingerprints and PCM vectors for device populations.

The paper's measurement protocol, reproduced exactly:

* side-channel fingerprint = measured output power while transmitting
  ``nm = 6`` randomly chosen (then frozen) 128-bit ciphertext blocks,
  encrypted with a randomly chosen (then frozen) key;
* PCM vector = ``np`` measurements of simple on-die monitor structures
  (default: one digital path delay).

One campaign object owns the frozen key/plaintexts and the bench instruments,
so every device — simulated or fabricated, Trojan-free or infested — is
measured under identical stimuli.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.crypto.bits import random_block, random_key
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.rf.channel import AwgnChannel
from repro.rf.receiver import BandPassReceiver
from repro.silicon.instruments import DelayAnalyzer, PowerMeter
from repro.silicon.pcm import PCMSuite
from repro.testbed.chip import WirelessCryptoChip
from repro.trojans.base import TrojanModel
from repro.utils.parallel import parallel_map
from repro.utils.rng import SeedLike, as_generator


@dataclass
class MeasuredDevice:
    """One measured device under Trojan test (DUTT)."""

    label: str
    pcms: np.ndarray
    fingerprint: np.ndarray
    infested: bool
    trojan_name: str = "none"


@dataclass
class FingerprintCampaign:
    """Frozen stimuli + bench used to measure every device identically.

    Parameters
    ----------
    key:
        The on-chip AES key (frozen for the whole experiment).
    plaintexts:
        The ``nm`` plaintext blocks whose ciphertext transmissions are
        measured.  Drawn once with :meth:`random_stimuli`.
    pcm_suite:
        The PCM structures measured on each die.
    receiver:
        Band-limited power measurement front-end.
    channel:
        Wireless channel between chip and bench (``None`` = ideal).
    power_meter / delay_analyzer:
        Bench instruments (``None`` = noise-free readings, as in Spice).
    instrument_root:
        Master :class:`~numpy.random.SeedSequence` for *per-device* instrument
        streams.  When set, :meth:`measure_population` spawns one child seed
        per device and measures it with freshly seeded instruments, so the
        noise a device sees does not depend on measurement order or worker
        count.  ``None`` keeps the legacy behaviour: all devices share the
        campaign instruments' stateful streams (serial only).
    """

    key: bytes
    plaintexts: List[bytes]
    pcm_suite: PCMSuite = field(default_factory=PCMSuite.paper_default)
    receiver: BandPassReceiver = field(default_factory=BandPassReceiver)
    channel: Optional[AwgnChannel] = None
    power_meter: Optional[PowerMeter] = None
    delay_analyzer: Optional[DelayAnalyzer] = None
    instrument_root: Optional[np.random.SeedSequence] = field(default=None, repr=False)

    def __post_init__(self):
        if len(self.key) != 16:
            raise ValueError(f"key must be 16 bytes, got {len(self.key)}")
        if not self.plaintexts:
            raise ValueError("campaign needs at least one plaintext block")
        for block in self.plaintexts:
            if len(block) != 16:
                raise ValueError("every plaintext block must be 16 bytes")

    @classmethod
    def random_stimuli(
        cls,
        nm: int = 6,
        seed: SeedLike = None,
        noisy_bench: bool = True,
        pcm_suite: Optional[PCMSuite] = None,
        receiver: Optional[BandPassReceiver] = None,
    ) -> "FingerprintCampaign":
        """Draw the frozen key and ``nm`` plaintext blocks, build the bench.

        With ``noisy_bench=True`` the campaign models a physical bench
        (instrument noise); with ``False`` it models Spice measurements.
        """
        if nm <= 0:
            raise ValueError(f"nm must be positive, got {nm}")
        rng = as_generator(seed)
        key = random_key(rng)
        plaintexts = [random_block(rng) for _ in range(nm)]
        kwargs = {}
        if noisy_bench:
            kwargs = {
                "power_meter": PowerMeter(seed=rng),
                "delay_analyzer": DelayAnalyzer(seed=rng),
            }
        return cls(
            key=key,
            plaintexts=plaintexts,
            pcm_suite=pcm_suite or PCMSuite.paper_default(),
            receiver=receiver or BandPassReceiver(),
            **kwargs,
        )

    @property
    def nm(self) -> int:
        """Fingerprint dimensionality (number of measured block powers)."""
        return len(self.plaintexts)

    @property
    def np_dim(self) -> int:
        """PCM vector dimensionality."""
        return len(self.pcm_suite)

    def silicon_bench(self, seed: SeedLike = None,
                      pcm_noise: float = 0.015) -> "FingerprintCampaign":
        """A copy of this campaign with noisy bench instruments attached.

        Used to measure fabricated silicon with the same stimuli that the
        (noise-free) simulation campaign used.  ``pcm_noise`` is the relative
        gain error of the PCM delay measurement: e-test readings on the kerf
        are single-shot production measurements and are considerably noisier
        than the averaged RF power measurements of the fingerprint bench.
        """
        rng = as_generator(seed)
        return FingerprintCampaign(
            key=self.key,
            plaintexts=list(self.plaintexts),
            pcm_suite=self.pcm_suite,
            receiver=self.receiver,
            channel=self.channel,
            power_meter=PowerMeter(seed=rng),
            delay_analyzer=DelayAnalyzer(seed=rng, gain_sigma=pcm_noise),
            instrument_root=np.random.SeedSequence(int(rng.integers(0, 2**63 - 1))),
        )

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------

    def fingerprint(self, chip: WirelessCryptoChip) -> np.ndarray:
        """Measure the ``nm``-dimensional power fingerprint of one chip."""
        powers = []
        for plaintext in self.plaintexts:
            train = chip.transmit_plaintext(plaintext)
            if self.channel is not None:
                train = self.channel.propagate(train)
            power = self.receiver.block_power(train)
            if self.power_meter is not None:
                power = self.power_meter.read(power)
            powers.append(power)
        return np.asarray(powers, dtype=float)

    def pcm_vector(self, die) -> np.ndarray:
        """Measure the PCM vector of one die.

        Each monitor is a distinct on-die structure with its own local
        mismatch parameters; monitors are shared by all design versions on
        the die (there is one PCM per die, not per version).
        """
        readings = []
        for monitor in self.pcm_suite.monitors:
            local = die.structure_params(f"pcm.{monitor.name}")
            value = monitor.measure(local)
            if self.delay_analyzer is not None:
                value = self.delay_analyzer.read(value)
            readings.append(value)
        return np.asarray(readings, dtype=float)

    def measure_device(
        self,
        die,
        trojan: Optional[TrojanModel] = None,
        version: str = "TF",
    ) -> MeasuredDevice:
        """Measure one design version on one die: PCMs + fingerprint."""
        chip = WirelessCryptoChip(die=die, key=self.key, trojan=trojan, version=version)
        label = getattr(die, "label", lambda: "die")()
        device = MeasuredDevice(
            label=f"{label}/{version}",
            pcms=self.pcm_vector(die),
            fingerprint=self.fingerprint(chip),
            infested=trojan is not None,
            trojan_name=trojan.name if trojan is not None else "none",
        )
        obs_metrics.counter("campaign.devices_measured").inc()
        return device

    def measure_population(
        self,
        dies,
        trojan: Optional[TrojanModel] = None,
        version: str = "TF",
        n_jobs: int = 1,
    ) -> List[MeasuredDevice]:
        """Measure one design version across a die population.

        With ``instrument_root`` set (see :meth:`silicon_bench`), each device
        is measured with instruments seeded from its own spawned stream —
        bit-identical for any ``n_jobs``.  A noise-free campaign is
        deterministic per die and parallelizes directly.  A legacy bench
        whose instruments share one stateful stream is order-dependent and
        always measured serially.
        """
        dies = list(dies)
        with span("campaign.measure_population", version=version,
                  n=len(dies), n_jobs=n_jobs):
            if self.instrument_root is not None:
                # Stateful spawn: consecutive populations (TF, T1, T2 sweeps)
                # get fresh, non-overlapping per-device seeds in call order.
                seeds = self.instrument_root.spawn(len(dies))
                worker = functools.partial(
                    _measure_with_fresh_instruments, self, trojan, version
                )
                return parallel_map(worker, list(zip(dies, seeds)), n_jobs=n_jobs)
            if self.power_meter is None and self.delay_analyzer is None:
                worker = functools.partial(_measure_noise_free, self, trojan, version)
                return parallel_map(worker, dies, n_jobs=n_jobs)
            return [
                self.measure_device(die, trojan=trojan, version=version)
                for die in dies
            ]


def _measure_noise_free(campaign: FingerprintCampaign, trojan, version, die) -> MeasuredDevice:
    """Measure one die on an instrument-free campaign (picklable worker)."""
    return campaign.measure_device(die, trojan=trojan, version=version)


def _measure_with_fresh_instruments(
    campaign: FingerprintCampaign, trojan, version, item
) -> MeasuredDevice:
    """Measure one die with per-device instrument streams (picklable worker)."""
    die, seed = item
    power_seq, delay_seq = seed.spawn(2)
    local = FingerprintCampaign(
        key=campaign.key,
        plaintexts=list(campaign.plaintexts),
        pcm_suite=campaign.pcm_suite,
        receiver=campaign.receiver,
        channel=campaign.channel,
        power_meter=(
            PowerMeter(seed=power_seq, gain_sigma=campaign.power_meter.gain_sigma)
            if campaign.power_meter is not None
            else None
        ),
        delay_analyzer=(
            DelayAnalyzer(seed=delay_seq, gain_sigma=campaign.delay_analyzer.gain_sigma)
            if campaign.delay_analyzer is not None
            else None
        ),
    )
    return local.measure_device(die, trojan=trojan, version=version)
