"""Measurement campaign: fingerprints and PCM vectors for device populations.

The paper's measurement protocol, reproduced exactly:

* side-channel fingerprint = measured output power while transmitting
  ``nm = 6`` randomly chosen (then frozen) 128-bit ciphertext blocks,
  encrypted with a randomly chosen (then frozen) key;
* PCM vector = ``np`` measurements of simple on-die monitor structures
  (default: one digital path delay).

One campaign object owns the frozen key/plaintexts and the bench instruments,
so every device — simulated or fabricated, Trojan-free or infested — is
measured under identical stimuli.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.crypto.aes import aes128_encrypt_blocks
from repro.crypto.bits import bytes_to_bits, random_block, random_key
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.process.population import DiePopulation
from repro.rf.channel import AwgnChannel
from repro.rf.receiver import BandPassReceiver
from repro.rf.uwb import population_center_frequency_ghz, population_output_amplitude
from repro.silicon.instruments import DelayAnalyzer, Instrument, PowerMeter
from repro.silicon.pcm import PCMSuite
from repro.testbed.chip import WirelessCryptoChip
from repro.trojans.base import TrojanModel
from repro.utils.parallel import parallel_map
from repro.utils.rng import SeedLike, as_generator

#: Valid values for the ``engine`` argument of :meth:`measure_population`.
ENGINES = ("batched", "loop")

_log = logging.getLogger("repro.campaign")


@dataclass
class MeasuredDevice:
    """One measured device under Trojan test (DUTT)."""

    label: str
    pcms: np.ndarray
    fingerprint: np.ndarray
    infested: bool
    trojan_name: str = "none"


@dataclass
class FingerprintCampaign:
    """Frozen stimuli + bench used to measure every device identically.

    Parameters
    ----------
    key:
        The on-chip AES key (frozen for the whole experiment).
    plaintexts:
        The ``nm`` plaintext blocks whose ciphertext transmissions are
        measured.  Drawn once with :meth:`random_stimuli`.
    pcm_suite:
        The PCM structures measured on each die.
    receiver:
        Band-limited power measurement front-end.
    channel:
        Wireless channel between chip and bench (``None`` = ideal).
    power_meter / delay_analyzer:
        Bench instruments (``None`` = noise-free readings, as in Spice).
    instrument_root:
        Master :class:`~numpy.random.SeedSequence` for *per-device* instrument
        streams.  When set, :meth:`measure_population` spawns one child seed
        per device and measures it with freshly seeded instruments, so the
        noise a device sees does not depend on measurement order or worker
        count.  ``None`` keeps the legacy behaviour: all devices share the
        campaign instruments' stateful streams (serial only).
    """

    key: bytes
    plaintexts: List[bytes]
    pcm_suite: PCMSuite = field(default_factory=PCMSuite.paper_default)
    receiver: BandPassReceiver = field(default_factory=BandPassReceiver)
    channel: Optional[AwgnChannel] = None
    power_meter: Optional[PowerMeter] = None
    delay_analyzer: Optional[DelayAnalyzer] = None
    instrument_root: Optional[np.random.SeedSequence] = field(default=None, repr=False)

    def __post_init__(self):
        if len(self.key) != 16:
            raise ValueError(f"key must be 16 bytes, got {len(self.key)}")
        if not self.plaintexts:
            raise ValueError("campaign needs at least one plaintext block")
        for block in self.plaintexts:
            if len(block) != 16:
                raise ValueError("every plaintext block must be 16 bytes")

    @classmethod
    def random_stimuli(
        cls,
        nm: int = 6,
        seed: SeedLike = None,
        noisy_bench: bool = True,
        pcm_suite: Optional[PCMSuite] = None,
        receiver: Optional[BandPassReceiver] = None,
    ) -> "FingerprintCampaign":
        """Draw the frozen key and ``nm`` plaintext blocks, build the bench.

        With ``noisy_bench=True`` the campaign models a physical bench
        (instrument noise); with ``False`` it models Spice measurements.
        """
        if nm <= 0:
            raise ValueError(f"nm must be positive, got {nm}")
        rng = as_generator(seed)
        key = random_key(rng)
        plaintexts = [random_block(rng) for _ in range(nm)]
        kwargs = {}
        if noisy_bench:
            kwargs = {
                "power_meter": PowerMeter(seed=rng),
                "delay_analyzer": DelayAnalyzer(seed=rng),
            }
        return cls(
            key=key,
            plaintexts=plaintexts,
            pcm_suite=pcm_suite or PCMSuite.paper_default(),
            receiver=receiver or BandPassReceiver(),
            **kwargs,
        )

    @property
    def nm(self) -> int:
        """Fingerprint dimensionality (number of measured block powers)."""
        return len(self.plaintexts)

    @property
    def np_dim(self) -> int:
        """PCM vector dimensionality."""
        return len(self.pcm_suite)

    def silicon_bench(self, seed: SeedLike = None,
                      pcm_noise: float = 0.015) -> "FingerprintCampaign":
        """A copy of this campaign with noisy bench instruments attached.

        Used to measure fabricated silicon with the same stimuli that the
        (noise-free) simulation campaign used.  ``pcm_noise`` is the relative
        gain error of the PCM delay measurement: e-test readings on the kerf
        are single-shot production measurements and are considerably noisier
        than the averaged RF power measurements of the fingerprint bench.
        """
        rng = as_generator(seed)
        return FingerprintCampaign(
            key=self.key,
            plaintexts=list(self.plaintexts),
            pcm_suite=self.pcm_suite,
            receiver=self.receiver,
            channel=self.channel,
            power_meter=PowerMeter(seed=rng),
            delay_analyzer=DelayAnalyzer(seed=rng, gain_sigma=pcm_noise),
            instrument_root=np.random.SeedSequence(int(rng.integers(0, 2**63 - 1))),
        )

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------

    def fingerprint(self, chip: WirelessCryptoChip) -> np.ndarray:
        """Measure the ``nm``-dimensional power fingerprint of one chip."""
        powers = []
        for plaintext in self.plaintexts:
            train = chip.transmit_plaintext(plaintext)
            if self.channel is not None:
                train = self.channel.propagate(train)
            power = self.receiver.block_power(train)
            if self.power_meter is not None:
                power = self.power_meter.read(power)
            powers.append(power)
        return np.asarray(powers, dtype=float)

    def pcm_vector(self, die) -> np.ndarray:
        """Measure the PCM vector of one die.

        Each monitor is a distinct on-die structure with its own local
        mismatch parameters; monitors are shared by all design versions on
        the die (there is one PCM per die, not per version).
        """
        readings = []
        for monitor in self.pcm_suite.monitors:
            local = die.structure_params(f"pcm.{monitor.name}")
            value = monitor.measure(local)
            if self.delay_analyzer is not None:
                value = self.delay_analyzer.read(value)
            readings.append(value)
        return np.asarray(readings, dtype=float)

    def measure_device(
        self,
        die,
        trojan: Optional[TrojanModel] = None,
        version: str = "TF",
    ) -> MeasuredDevice:
        """Measure one design version on one die: PCMs + fingerprint."""
        chip = WirelessCryptoChip(die=die, key=self.key, trojan=trojan, version=version)
        label = getattr(die, "label", lambda: "die")()
        device = MeasuredDevice(
            label=f"{label}/{version}",
            pcms=self.pcm_vector(die),
            fingerprint=self.fingerprint(chip),
            infested=trojan is not None,
            trojan_name=trojan.name if trojan is not None else "none",
        )
        obs_metrics.counter("campaign.devices_measured").inc()
        return device

    def measure_population(
        self,
        dies,
        trojan: Optional[TrojanModel] = None,
        version: str = "TF",
        n_jobs: int = 1,
        engine: str = "batched",
    ) -> List[MeasuredDevice]:
        """Measure one design version across a die population.

        ``engine="batched"`` (the default) evaluates the whole population as
        array programs — one AES encryption per plaintext, vectorized analog
        models, batched instrument noise — and produces *bit-identical*
        results to ``engine="loop"``, which measures one die at a time.
        Configurations the batched engine cannot reproduce exactly (a fading
        channel's stateful per-pulse stream, legacy shared-stream
        instruments) silently fall back to the loop.

        With ``instrument_root`` set (see :meth:`silicon_bench`), each device
        is measured with instruments seeded from its own spawned stream —
        bit-identical for any ``n_jobs`` and either engine.  A noise-free
        campaign is deterministic per die and parallelizes directly.  A
        legacy bench whose instruments share one stateful stream is
        order-dependent and always measured serially.
        """
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        dies = list(dies)
        with span("campaign.measure_population", version=version,
                  n=len(dies), n_jobs=n_jobs, engine=engine):
            if engine == "batched" and dies:
                reason = self._batch_unsupported_reason()
                if reason is None:
                    return self._measure_population_batched(dies, trojan, version)
                _log.info("batched engine unavailable (%s); falling back to loop",
                          reason)
            if self.instrument_root is not None:
                # Stateful spawn: consecutive populations (TF, T1, T2 sweeps)
                # get fresh, non-overlapping per-device seeds in call order.
                seeds = self.instrument_root.spawn(len(dies))
                return parallel_map(
                    _measure_seeded_item,
                    list(zip(dies, seeds)),
                    n_jobs=n_jobs,
                    initializer=_init_measure_worker,
                    initargs=(self, trojan, version),
                )
            if self.power_meter is None and self.delay_analyzer is None:
                return parallel_map(
                    _measure_noise_free_item,
                    dies,
                    n_jobs=n_jobs,
                    initializer=_init_measure_worker,
                    initargs=(self, trojan, version),
                )
            return [
                self.measure_device(die, trojan=trojan, version=version)
                for die in dies
            ]

    # ------------------------------------------------------------------
    # batched engine
    # ------------------------------------------------------------------

    def _batch_unsupported_reason(self) -> Optional[str]:
        """Why this campaign cannot be measured batched (``None`` = it can)."""
        if self.channel is not None and self.channel.fading_sigma > 0:
            return "channel fading consumes a stateful per-pulse random stream"
        if (self.power_meter is not None or self.delay_analyzer is not None) \
                and self.instrument_root is None:
            return "legacy shared-stream instruments are measurement-order dependent"
        return None

    def _measure_population_batched(self, dies, trojan, version) -> List[MeasuredDevice]:
        population = DiePopulation.from_dies(dies)
        seeds = None
        if self.instrument_root is not None:
            # Same stateful spawn as the loop path, so TF/T1/T2 sweeps see
            # the same per-device seeds regardless of engine.
            seeds = self.instrument_root.spawn(len(dies))
        pcms, fingerprints = self.measure_population_arrays(
            population, trojan=trojan, version=version, instrument_seeds=seeds
        )
        devices = [
            MeasuredDevice(
                label=f"{population.label(i)}/{version}",
                pcms=pcms[i].copy(),
                fingerprint=fingerprints[i].copy(),
                infested=trojan is not None,
                trojan_name=trojan.name if trojan is not None else "none",
            )
            for i in range(len(dies))
        ]
        return devices

    def measure_population_arrays(
        self,
        population: DiePopulation,
        trojan: Optional[TrojanModel] = None,
        version: str = "TF",
        instrument_seeds=None,
    ):
        """Batched measurement core: ``(pcms, fingerprints)`` matrices.

        Returns the ``(n, np)`` PCM matrix and ``(n, nm)`` fingerprint matrix
        of the population; row ``i`` is bitwise identical to
        :meth:`measure_device` on die ``i`` (measured with per-device
        instruments seeded from ``instrument_seeds[i]``, when given).

        Three facts make exactness possible:

        * ciphertexts depend only on (key, plaintext), so each block is
          encrypted once — not once per device — and every die shares the
          same pulse positions;
        * the analog compact models are chains of elementwise ufuncs, which
          numpy evaluates identically for scalars and arrays (the one
          exception, ``x ** alpha``, is routed through ``math.pow`` — see
          :func:`repro.circuits.mosfet.elementwise_pow`);
        * instrument noise consumes per-device generator streams in the
          same (reading-ordered) sequence the scalar bench does.
        """
        with span("campaign.measure_arrays", n=len(population),
                  nm=self.nm, np=self.np_dim, version=version):
            pcms = self.pcm_suite.measure_population(population)
            fingerprints = self._population_fingerprints(population, trojan, version)
        obs_metrics.counter("campaign.devices_measured").inc(len(population))
        if instrument_seeds is not None:
            delay_z = power_z = None
            if self.delay_analyzer is not None:
                delay_z = np.empty((len(population), 2 * self.np_dim))
            if self.power_meter is not None:
                power_z = np.empty((len(population), 2 * self.nm))
            for i, seed in enumerate(instrument_seeds):
                # Mirrors the per-device bench build: spawn (power, delay)
                # streams, then consume readings in measurement order —
                # PCMs on the delay stream, then block powers on the power
                # stream — two normals (gain z, offset z) per reading.
                power_seq, delay_seq = seed.spawn(2)
                if delay_z is not None:
                    delay_z[i] = np.random.default_rng(delay_seq).standard_normal(
                        2 * self.np_dim
                    )
                if power_z is not None:
                    power_z[i] = np.random.default_rng(power_seq).standard_normal(
                        2 * self.nm
                    )
            if delay_z is not None:
                pcms = _apply_instrument_noise(pcms, delay_z, self.delay_analyzer)
            if power_z is not None:
                fingerprints = _apply_instrument_noise(
                    fingerprints, power_z, self.power_meter
                )
        return pcms, fingerprints

    def _population_fingerprints(self, population, trojan, version) -> np.ndarray:
        """Noise-free ``(n, nm)`` block-power fingerprints of a population."""
        key_bits = bytes_to_bits(self.key)
        blocks = np.frombuffer(b"".join(self.plaintexts), dtype=np.uint8)
        cipher_bits = np.unpackbits(
            aes128_encrypt_blocks(self.key, blocks.reshape(self.nm, 16)), axis=1
        )
        amplitude = population_output_amplitude(
            population.structure_params(f"{version}.uwb_pa")
        )
        frequency = population_center_frequency_ghz(
            population.structure_params(f"{version}.uwb_shaper")
        )
        n = len(population)
        powers = np.empty((n, self.nm), dtype=float)
        for j in range(self.nm):
            emitted = np.flatnonzero(cipher_bits[j] == 1)
            amps = np.broadcast_to(amplitude[:, None], (n, emitted.size))
            freqs = np.broadcast_to(frequency[:, None], (n, emitted.size))
            if trojan is not None:
                amps, freqs = trojan.modulate_population(
                    emitted, key_bits[emitted], amps, freqs
                )
            if self.channel is not None:
                # Only the fading-free channel reaches here (see
                # _batch_unsupported_reason); its gain vector is a constant.
                amps = amps * self.channel.path_gain
            powers[:, j] = self.receiver.block_powers(amps, freqs)
        return powers


def _apply_instrument_noise(true_values: np.ndarray, z: np.ndarray,
                            instrument: Instrument) -> np.ndarray:
    """Vectorized :meth:`Instrument.read` over pre-drawn normals.

    ``z`` interleaves (gain z, offset z) per reading, matching the two
    sequential scalar draws ``read`` makes.
    """
    gains = 1.0 + instrument.gain_sigma * z[:, 0::2]
    return true_values * gains + instrument.offset_sigma * z[:, 1::2]


#: Per-worker measurement state installed by :func:`_init_measure_worker`;
#: ships the campaign once per worker process instead of once per item.
_WORKER_STATE: dict = {}


def _init_measure_worker(campaign: FingerprintCampaign, trojan, version) -> None:
    """Process-pool initializer: stash the shared measurement context."""
    _WORKER_STATE["campaign"] = campaign
    _WORKER_STATE["trojan"] = trojan
    _WORKER_STATE["version"] = version


def _measure_noise_free_item(die) -> MeasuredDevice:
    """Measure one die on an instrument-free campaign (picklable worker)."""
    campaign = _WORKER_STATE["campaign"]
    return campaign.measure_device(
        die, trojan=_WORKER_STATE["trojan"], version=_WORKER_STATE["version"]
    )


def _measure_seeded_item(item) -> MeasuredDevice:
    """Measure one die with per-device instrument streams (picklable worker)."""
    die, seed = item
    campaign = _WORKER_STATE["campaign"]
    power_seq, delay_seq = seed.spawn(2)
    local = FingerprintCampaign(
        key=campaign.key,
        plaintexts=list(campaign.plaintexts),
        pcm_suite=campaign.pcm_suite,
        receiver=campaign.receiver,
        channel=campaign.channel,
        power_meter=(
            PowerMeter(seed=power_seq, gain_sigma=campaign.power_meter.gain_sigma)
            if campaign.power_meter is not None
            else None
        ),
        delay_analyzer=(
            DelayAnalyzer(seed=delay_seq, gain_sigma=campaign.delay_analyzer.gain_sigma)
            if campaign.delay_analyzer is not None
            else None
        ),
    )
    return local.measure_device(
        die, trojan=_WORKER_STATE["trojan"], version=_WORKER_STATE["version"]
    )
