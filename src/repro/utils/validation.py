"""Small argument-validation helpers shared across the library.

The helpers raise early with messages that name the offending argument, so
errors surface at API boundaries rather than deep inside numerical code.
"""

from __future__ import annotations

import numpy as np


def check_2d(array, name: str) -> np.ndarray:
    """Coerce ``array`` to a 2-D ``float64`` array or raise ``ValueError``."""
    out = np.asarray(array, dtype=float)
    if out.ndim != 2:
        raise ValueError(f"{name} must be 2-D (samples x features), got shape {out.shape}")
    if out.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one sample")
    if not np.all(np.isfinite(out)):
        raise ValueError(f"{name} contains non-finite values")
    return out


def check_1d(array, name: str) -> np.ndarray:
    """Coerce ``array`` to a 1-D ``float64`` array or raise ``ValueError``."""
    out = np.asarray(array, dtype=float)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {out.shape}")
    if not np.all(np.isfinite(out)):
        raise ValueError(f"{name} contains non-finite values")
    return out


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be strictly positive, got {value!r}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` lies in the open interval (0, 1]."""
    if not 0 < value <= 1:
        raise ValueError(f"{name} must be in (0, 1], got {value!r}")
    return float(value)


def check_in_range(value: float, low: float, high: float, name: str) -> float:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return float(value)


def check_matching_rows(a: np.ndarray, b: np.ndarray, name_a: str, name_b: str) -> None:
    """Raise ``ValueError`` unless ``a`` and ``b`` have the same row count."""
    if a.shape[0] != b.shape[0]:
        raise ValueError(
            f"{name_a} and {name_b} must have the same number of rows, "
            f"got {a.shape[0]} and {b.shape[0]}"
        )
