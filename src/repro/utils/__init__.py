"""Shared utilities: deterministic RNG handling and argument validation."""

from repro.utils.rng import as_generator, spawn_children
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_in_range,
    check_matching_rows,
    check_positive,
    check_probability,
)

__all__ = [
    "as_generator",
    "spawn_children",
    "check_1d",
    "check_2d",
    "check_in_range",
    "check_matching_rows",
    "check_positive",
    "check_probability",
]
