"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  Funnelling all of them
through :func:`as_generator` keeps experiments reproducible bit-for-bit while
still allowing quick interactive use.
"""

from __future__ import annotations

import functools
from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so that generator state is
        shared with the caller).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_children(seed: SeedLike, count: int) -> list:
    """Derive ``count`` independent child generators from one seed-like input.

    Useful when one experiment drives several stochastic subsystems (Monte
    Carlo engine, foundry, instruments) that must not share generator state,
    yet the whole experiment must be reproducible from a single seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def spawn_seed_sequences(seed: SeedLike, count: int) -> list:
    """Derive ``count`` independent :class:`~numpy.random.SeedSequence` children.

    Unlike :func:`spawn_children` this returns *seeds*, not generators, so the
    children can cross a process boundary cheaply and be turned into
    generators inside worker processes.  All entropy is drawn up front in the
    caller, which makes results independent of worker scheduling.

    Like ``SeedSequence.spawn``, the children are prefix-stable: the first
    ``k`` of ``spawn_seed_sequences(seed, n)`` equal
    ``spawn_seed_sequences(seed, k)`` for ``k <= n``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        drawn = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.SeedSequence(int(s)) for s in drawn]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return sequence.spawn(count)


@functools.lru_cache(maxsize=None)
def structure_entropy(name: str) -> tuple:
    """Entropy words encoding a structure name for ``SeedSequence`` mixing.

    Equivalent to the UTF-8 byte values of ``name`` (what
    ``np.frombuffer(name.encode(), dtype=np.uint8).tolist()`` produces), but
    computed once per distinct name: the same handful of monitor / RF
    structure names recurs for every device of every population.
    """
    return tuple(name.encode("utf-8"))
