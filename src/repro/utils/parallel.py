"""Deterministic process-parallel execution with ordered gather.

The simulation stages (Monte Carlo device synthesis, the fabricated-lot
measurement sweep) are embarrassingly parallel over devices, but naive
parallelism breaks bit-reproducibility: a shared random stream consumed in
completion order yields different data on every run.  The contract here is

* callers pre-assign every work item its own random stream
  (``SeedSequence.spawn``), so results do not depend on scheduling;
* :func:`parallel_map` always returns results in item order;
* ``n_jobs=1`` (the default) never touches a pool, and any pool
  *infrastructure* failure (fork refused, unpicklable payload, a broken
  worker) falls back to the serial path rather than aborting the run.

Worker counts are clamped to the machine's CPU count — oversubscribing
processes never helps the numpy-bound workloads here, and the clamp makes
``n_jobs=4`` safe to hard-code in scripts that also run on small boxes.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence

#: Exceptions that indicate the *pool* (not the work) failed; these trigger
#: the serial fallback.  Everything else propagates to the caller.
_POOL_FAILURES = (OSError, BrokenProcessPool, pickle.PicklingError, ImportError)


def resolve_n_jobs(n_jobs: Optional[int] = 1, cpu_count: Optional[int] = None) -> int:
    """Normalize an ``n_jobs`` request to an effective worker count.

    ``None`` and ``0`` mean serial; negative values count back from the
    machine size (``-1`` = all cores, joblib convention); positive requests
    are clamped to the CPU count.  ``cpu_count`` is injectable for tests.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if n_jobs is None or n_jobs == 0:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs < 0:
        n_jobs = cpus + 1 + n_jobs
    return max(1, min(n_jobs, cpus))


def parallel_map(
    fn: Callable,
    items: Iterable,
    n_jobs: Optional[int] = 1,
    cpu_count: Optional[int] = None,
) -> List:
    """Apply ``fn`` to every item, optionally across a process pool.

    Results are gathered in item order regardless of completion order, so a
    caller that pre-seeds its items gets bit-identical output for every
    ``n_jobs`` value.  ``fn`` and the items must be picklable when a pool is
    used; if the pool cannot be built or breaks, the remaining work runs
    serially in-process.
    """
    items = list(items)
    workers = min(resolve_n_jobs(n_jobs, cpu_count=cpu_count), len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    try:
        # Closures and lambdas are not picklable; pickle signals this with
        # a mix of PicklingError / AttributeError / TypeError depending on
        # the payload, so probe once up front instead of enumerating them.
        pickle.dumps(fn)
    except Exception:
        return [fn(item) for item in items]
    chunksize = max(1, len(items) // (workers * 2))
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except _POOL_FAILURES:
        return [fn(item) for item in items]
