"""Deterministic process-parallel execution with ordered gather.

The simulation stages (Monte Carlo device synthesis, the fabricated-lot
measurement sweep) are embarrassingly parallel over devices, but naive
parallelism breaks bit-reproducibility: a shared random stream consumed in
completion order yields different data on every run.  The contract here is

* callers pre-assign every work item its own random stream
  (``SeedSequence.spawn``), so results do not depend on scheduling;
* :func:`parallel_map` always returns results in item order;
* ``n_jobs=1`` (the default) never touches a pool, and any pool
  *infrastructure* failure (fork refused, unpicklable payload, a broken
  worker) falls back to the serial path rather than aborting the run.

Worker counts are clamped to the machine's CPU count — oversubscribing
processes never helps the numpy-bound workloads here, and the clamp makes
``n_jobs=4`` safe to hard-code in scripts that also run on small boxes.

Pool lifecycle (worker count, item count, chunk size, fallbacks) is logged
on the ``repro.parallel`` logger — run the CLI with ``--log-level info`` to
see whether a ``--jobs`` request actually produced a pool.  With tracing
enabled (:mod:`repro.obs`), spans and metrics recorded inside workers are
collected per item and re-parented under the dispatching span.
"""

from __future__ import annotations

import logging
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence

from repro.obs.trace import unwrap_pool_results, wrap_pool_task

#: Exceptions that indicate the *pool* (not the work) failed; these trigger
#: the serial fallback.  Everything else propagates to the caller.
_POOL_FAILURES = (OSError, BrokenProcessPool, pickle.PicklingError, ImportError)

_log = logging.getLogger("repro.parallel")


def resolve_n_jobs(n_jobs: Optional[int] = 1, cpu_count: Optional[int] = None) -> int:
    """Normalize an ``n_jobs`` request to an effective worker count.

    ``None`` and ``0`` mean serial; negative values count back from the
    machine size (``-1`` = all cores, joblib convention); positive requests
    are clamped to the CPU count.  ``cpu_count`` is injectable for tests.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if n_jobs is None or n_jobs == 0:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs < 0:
        n_jobs = cpus + 1 + n_jobs
    return max(1, min(n_jobs, cpus))


def parallel_map(
    fn: Callable,
    items: Iterable,
    n_jobs: Optional[int] = 1,
    cpu_count: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: Sequence = (),
) -> List:
    """Apply ``fn`` to every item, optionally across a process pool.

    Results are gathered in item order regardless of completion order, so a
    caller that pre-seeds its items gets bit-identical output for every
    ``n_jobs`` value.  ``fn`` and the items must be picklable when a pool is
    used; if the pool cannot be built or breaks, the remaining work runs
    serially in-process.

    ``initializer(*initargs)`` runs once per worker process before any item
    (and once in-process on the serial path), letting callers ship large
    shared state — a campaign object, a model — per *worker* instead of
    re-pickling it with every item.
    """

    def _serial() -> List:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]

    items = list(items)
    workers = min(resolve_n_jobs(n_jobs, cpu_count=cpu_count), len(items))
    if workers <= 1:
        if n_jobs not in (None, 0, 1):
            # A deliberate --jobs request that still ran serially is the
            # misconfiguration this log line exists to surface.
            _log.info("serial map of %d items (n_jobs=%r resolved to 1 worker)",
                      len(items), n_jobs)
        return _serial()
    try:
        # Closures and lambdas are not picklable; pickle signals this with
        # a mix of PicklingError / AttributeError / TypeError depending on
        # the payload, so probe once up front instead of enumerating them.
        pickle.dumps((fn, initializer, tuple(initargs)))
    except Exception:
        _log.warning("payload %r is not picklable; running %d items serially",
                     getattr(fn, "__name__", fn), len(items))
        return _serial()
    chunksize = max(1, len(items) // (workers * 2))
    # When tracing is enabled, each work item runs under a fresh worker
    # tracer and hands its spans/metrics back with the result; the wrapper
    # is the identity when tracing is off (and adds no RNG use either way,
    # so results stay bit-identical).
    task = wrap_pool_task(fn)
    _log.info("starting process pool: %d workers, %d items, chunksize %d",
              workers, len(items), chunksize)
    try:
        with ProcessPoolExecutor(max_workers=workers, initializer=initializer,
                                 initargs=tuple(initargs)) as pool:
            results = list(pool.map(task, items, chunksize=chunksize))
        _log.info("process pool finished: %d results", len(results))
        return unwrap_pool_results(results)
    except _POOL_FAILURES as failure:
        _log.warning("process pool failed (%s: %s); falling back to serial",
                     type(failure).__name__, failure)
        return _serial()
