"""The trusted Spice deck: what the design house *believes* about the fab.

The attack model of the paper places the culprit at the foundry, so the
design house's simulation model is trusted — but stale.  A :class:`SpiceDeck`
bundles the nominal process parameters and variation magnitudes the deck was
characterized with.  The actual foundry (see :mod:`repro.silicon.foundry`)
may run at a shifted operating point; the gap between the two is precisely
what defeats boundaries B1/B2 in the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.process.parameters import ProcessParameters, nominal_350nm
from repro.process.variation import VariationModel, default_variation_350nm
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class SpiceDeck:
    """Nominal parameters + variation model, as frozen into the design kit.

    Parameters
    ----------
    nominal:
        The deck's nominal process parameters.
    variation:
        The deck's characterization of process variation.  Monte Carlo
        simulation draws die-level and within-die deviations from this model
        (lot structure is not simulated: a Spice MC run has no lots).
    """

    nominal: ProcessParameters
    variation: VariationModel

    def sample_die(self, rng: SeedLike = None) -> ProcessParameters:
        """Draw one virtual die the way a Spice Monte Carlo iteration would.

        Die-level variation in an MC run lumps lot and die components (the
        deck does not distinguish them), so both sigmas apply around the
        deck nominal.
        """
        gen = as_generator(rng)
        lot = self.variation.sample_lot(self.nominal, gen)
        return self.variation.sample_die(lot, gen)

    def sample_structure(self, die_params: ProcessParameters,
                         rng: SeedLike = None) -> ProcessParameters:
        """Draw local (mismatch) parameters for one structure on a die."""
        return self.variation.sample_structure(die_params, as_generator(rng))


def default_spice_deck() -> SpiceDeck:
    """The default trusted deck for the synthetic 350 nm platform."""
    return SpiceDeck(nominal=nominal_350nm(), variation=default_variation_350nm())
