"""Circuit substrate: compact transistor model, gate/path delay, Monte Carlo.

This stands in for the paper's HSpice post-layout simulation.  The detection
method only needs the *joint statistics* of PCM measurements and side-channel
fingerprints under process variation, which a physically-motivated compact
model reproduces: drive currents follow the alpha-power law, delays follow
CV/I, and every structure shares the same underlying process parameters.
"""

from repro.circuits.gates import Gate, inverter, nand2, nor2
from repro.circuits.montecarlo import MonteCarloEngine, MonteCarloResult
from repro.circuits.mosfet import AlphaPowerMosfet, MosfetPolarity
from repro.circuits.path import CriticalPath
from repro.circuits.spicemodel import SpiceDeck, default_spice_deck

__all__ = [
    "AlphaPowerMosfet",
    "MosfetPolarity",
    "Gate",
    "inverter",
    "nand2",
    "nor2",
    "CriticalPath",
    "SpiceDeck",
    "default_spice_deck",
    "MonteCarloEngine",
    "MonteCarloResult",
]
