"""Spice-level Monte Carlo simulation of golden devices.

This is the paper's pre-manufacturing data source: ``n`` virtual Trojan-free
devices drawn from the *trusted deck's* process statistics, each measured for
its PCM vector and side-channel fingerprint.  Simulated measurements are
noise-free (a simulator has ideal instruments); the model-vs-silicon
discrepancy comes from the deck nominal, not the bench.
"""

from __future__ import annotations

import functools
import logging
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.circuits.spicemodel import SpiceDeck
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.process.parameters import ProcessParameters
from repro.process.population import DiePopulation, sample_structure_params
from repro.utils.parallel import parallel_map
from repro.utils.rng import SeedLike, as_generator, spawn_seed_sequences

_log = logging.getLogger("repro.montecarlo")


@dataclass
class SimulatedDie:
    """A virtual die drawn by one Monte Carlo iteration.

    Exposes the same ``structure_params`` interface as
    :class:`~repro.silicon.foundry.FabricatedDie`, so the same measurement
    campaign code runs on simulation and silicon.
    """

    index: int
    die_params: ProcessParameters
    deck: SpiceDeck
    mismatch_seed: int
    _structure_cache: Dict[str, ProcessParameters] = field(default_factory=dict, repr=False)

    @property
    def variation(self):
        """The variation model governing this die's mismatch streams."""
        return self.deck.variation

    def structure_params(self, structure: str) -> ProcessParameters:
        """Local (mismatch) parameters of the named structure, deterministic."""
        if structure not in self._structure_cache:
            self._structure_cache[structure] = sample_structure_params(
                self.deck.variation, self.die_params, self.mismatch_seed, structure
            )
        return self._structure_cache[structure]

    def label(self) -> str:
        """Identifier used in reports."""
        return f"MC{self.index}"


def sample_device_population(deck: SpiceDeck, seeds) -> DiePopulation:
    """Draw a whole Monte Carlo device population as parallel arrays.

    ``seeds`` are the per-device seed sequences the scalar path hands to
    :func:`_simulate_device`; each device's generator is consumed in exactly
    the scalar order — ``1 + k_lot`` normals for the lot draw, ``1 + k_die``
    for the die draw (a single vectorized ``standard_normal`` of that length
    yields the identical stream), then one mismatch-seed integer — so the
    resulting population is bitwise identical to the loop's dies.
    """
    seeds = list(seeds)
    n = len(seeds)
    variation = deck.variation
    k_lot = variation.correlated_draw_count(variation.lot_sigma)
    k_die = variation.correlated_draw_count(variation.die_sigma)
    z = np.empty((n, k_lot + k_die), dtype=float)
    mismatch = np.empty(n, dtype=np.int64)
    for i, seed in enumerate(seeds):
        gen = np.random.default_rng(seed)
        z[i] = gen.standard_normal(k_lot + k_die)
        mismatch[i] = int(gen.integers(0, 2**63 - 1))
    lot = variation.apply_correlated(
        deck.nominal, variation.lot_sigma, z[:, 0], z[:, 1:k_lot]
    )
    die = variation.apply_correlated(
        lot, variation.die_sigma, z[:, k_lot], z[:, k_lot + 1:]
    )
    return DiePopulation(
        die_params=die,
        mismatch_seeds=mismatch,
        variation=variation,
        labels=[f"MC{i}" for i in range(n)],
    )


@dataclass
class MonteCarloResult:
    """Output of one Monte Carlo campaign.

    Attributes
    ----------
    pcms:
        ``(n, np)`` PCM measurement matrix of the simulated golden devices.
    fingerprints:
        ``(n, nm)`` side-channel fingerprint matrix.
    """

    pcms: np.ndarray
    fingerprints: np.ndarray

    def __post_init__(self):
        self.pcms = np.asarray(self.pcms, dtype=float)
        self.fingerprints = np.asarray(self.fingerprints, dtype=float)
        if self.pcms.shape[0] != self.fingerprints.shape[0]:
            raise ValueError("pcms and fingerprints must describe the same devices")

    @property
    def n_devices(self) -> int:
        """Number of simulated devices."""
        return int(self.pcms.shape[0])


class MonteCarloEngine:
    """Runs Spice-level Monte Carlo over the trusted deck.

    Parameters
    ----------
    deck:
        The trusted simulation model.
    campaign:
        A noise-free measurement campaign (the simulator's ideal bench).
        Passing a campaign with instruments attached raises ``ValueError`` —
        simulated data must not carry bench noise.
    numerical_noise:
        Relative jitter applied to every simulated reading.  Post-layout
        Monte Carlo results are not infinitely precise: parasitic
        extraction, reduced-order models and transient-convergence
        tolerances contribute noise comparable to good bench instruments.
    """

    def __init__(self, deck: SpiceDeck, campaign, numerical_noise: float = 0.0):
        if campaign.power_meter is not None or campaign.delay_analyzer is not None:
            raise ValueError("Monte Carlo simulation requires a noise-free campaign")
        if numerical_noise < 0:
            raise ValueError(f"numerical_noise must be non-negative, got {numerical_noise}")
        self.deck = deck
        self.campaign = campaign
        self.numerical_noise = float(numerical_noise)

    def sample_die(self, index: int, rng: SeedLike = None) -> SimulatedDie:
        """Draw one virtual die from the deck statistics."""
        gen = as_generator(rng)
        die_params = self.deck.sample_die(gen)
        return SimulatedDie(
            index=index,
            die_params=die_params,
            deck=self.deck,
            mismatch_seed=int(gen.integers(0, 2**63 - 1)),
        )

    def run(self, n: int, seed: SeedLike = None, n_jobs: int = 1,
            engine: str = "batched") -> MonteCarloResult:
        """Simulate ``n`` golden devices and measure PCMs + fingerprints.

        Every device owns a random stream spawned from ``seed`` before any
        work is dispatched, and the numerical-noise draw comes from its own
        dedicated stream, so the result is bit-identical for every ``n_jobs``
        value (including the serial path).

        ``engine="batched"`` (default) draws and measures the population as
        array programs — bit-identical to ``engine="loop"``, which simulates
        one device at a time.  A campaign configuration the batched engine
        cannot reproduce exactly falls back to the loop.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if engine not in ("batched", "loop"):
            raise ValueError(f"engine must be 'batched' or 'loop', got {engine!r}")
        if engine == "batched":
            reason = self.campaign._batch_unsupported_reason()
            if reason is not None:
                _log.info("batched engine unavailable (%s); falling back to loop",
                          reason)
                engine = "loop"
        with span("mc.run", n=n, n_jobs=n_jobs, engine=engine):
            device_root, noise_root = spawn_seed_sequences(seed, 2)
            if engine == "batched":
                population = sample_device_population(self.deck, device_root.spawn(n))
                pcms, fingerprints = self.campaign.measure_population_arrays(population)
                obs_metrics.counter("mc.devices_simulated").inc(n)
            else:
                worker = functools.partial(_simulate_device, self.deck, self.campaign)
                rows = parallel_map(
                    worker, list(enumerate(device_root.spawn(n))), n_jobs=n_jobs
                )
                pcms = np.stack([row[0] for row in rows])
                fingerprints = np.stack([row[1] for row in rows])
            if self.numerical_noise > 0:
                noise_rng = np.random.default_rng(noise_root)
                pcms = pcms * (
                    1.0 + self.numerical_noise * noise_rng.standard_normal(pcms.shape)
                )
                fingerprints = fingerprints * (
                    1.0
                    + self.numerical_noise
                    * noise_rng.standard_normal(fingerprints.shape)
                )
        return MonteCarloResult(pcms=pcms, fingerprints=fingerprints)


def _simulate_device(deck: SpiceDeck, campaign, item):
    """Simulate + measure one device from its pre-spawned seed (picklable)."""
    index, seed = item
    with span("mc.device", index=index):
        rng = np.random.default_rng(seed)
        die_params = deck.sample_die(rng)
        die = SimulatedDie(
            index=index,
            die_params=die_params,
            deck=deck,
            mismatch_seed=int(rng.integers(0, 2**63 - 1)),
        )
        device = campaign.measure_device(die, trojan=None, version="TF")
    obs_metrics.counter("mc.devices_simulated").inc()
    return device.pcms, device.fingerprint
