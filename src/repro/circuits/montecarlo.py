"""Spice-level Monte Carlo simulation of golden devices.

This is the paper's pre-manufacturing data source: ``n`` virtual Trojan-free
devices drawn from the *trusted deck's* process statistics, each measured for
its PCM vector and side-channel fingerprint.  Simulated measurements are
noise-free (a simulator has ideal instruments); the model-vs-silicon
discrepancy comes from the deck nominal, not the bench.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.circuits.spicemodel import SpiceDeck
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.process.parameters import ProcessParameters
from repro.utils.parallel import parallel_map
from repro.utils.rng import SeedLike, as_generator, spawn_seed_sequences, structure_entropy


@dataclass
class SimulatedDie:
    """A virtual die drawn by one Monte Carlo iteration.

    Exposes the same ``structure_params`` interface as
    :class:`~repro.silicon.foundry.FabricatedDie`, so the same measurement
    campaign code runs on simulation and silicon.
    """

    index: int
    die_params: ProcessParameters
    deck: SpiceDeck
    mismatch_seed: int
    _structure_cache: Dict[str, ProcessParameters] = field(default_factory=dict, repr=False)

    def structure_params(self, structure: str) -> ProcessParameters:
        """Local (mismatch) parameters of the named structure, deterministic."""
        if structure not in self._structure_cache:
            seq = np.random.SeedSequence([self.mismatch_seed, *structure_entropy(structure)])
            rng = np.random.default_rng(seq)
            self._structure_cache[structure] = self.deck.sample_structure(self.die_params, rng)
        return self._structure_cache[structure]

    def label(self) -> str:
        """Identifier used in reports."""
        return f"MC{self.index}"


@dataclass
class MonteCarloResult:
    """Output of one Monte Carlo campaign.

    Attributes
    ----------
    pcms:
        ``(n, np)`` PCM measurement matrix of the simulated golden devices.
    fingerprints:
        ``(n, nm)`` side-channel fingerprint matrix.
    """

    pcms: np.ndarray
    fingerprints: np.ndarray

    def __post_init__(self):
        self.pcms = np.asarray(self.pcms, dtype=float)
        self.fingerprints = np.asarray(self.fingerprints, dtype=float)
        if self.pcms.shape[0] != self.fingerprints.shape[0]:
            raise ValueError("pcms and fingerprints must describe the same devices")

    @property
    def n_devices(self) -> int:
        """Number of simulated devices."""
        return int(self.pcms.shape[0])


class MonteCarloEngine:
    """Runs Spice-level Monte Carlo over the trusted deck.

    Parameters
    ----------
    deck:
        The trusted simulation model.
    campaign:
        A noise-free measurement campaign (the simulator's ideal bench).
        Passing a campaign with instruments attached raises ``ValueError`` —
        simulated data must not carry bench noise.
    numerical_noise:
        Relative jitter applied to every simulated reading.  Post-layout
        Monte Carlo results are not infinitely precise: parasitic
        extraction, reduced-order models and transient-convergence
        tolerances contribute noise comparable to good bench instruments.
    """

    def __init__(self, deck: SpiceDeck, campaign, numerical_noise: float = 0.0):
        if campaign.power_meter is not None or campaign.delay_analyzer is not None:
            raise ValueError("Monte Carlo simulation requires a noise-free campaign")
        if numerical_noise < 0:
            raise ValueError(f"numerical_noise must be non-negative, got {numerical_noise}")
        self.deck = deck
        self.campaign = campaign
        self.numerical_noise = float(numerical_noise)

    def sample_die(self, index: int, rng: SeedLike = None) -> SimulatedDie:
        """Draw one virtual die from the deck statistics."""
        gen = as_generator(rng)
        die_params = self.deck.sample_die(gen)
        return SimulatedDie(
            index=index,
            die_params=die_params,
            deck=self.deck,
            mismatch_seed=int(gen.integers(0, 2**63 - 1)),
        )

    def run(self, n: int, seed: SeedLike = None, n_jobs: int = 1) -> MonteCarloResult:
        """Simulate ``n`` golden devices and measure PCMs + fingerprints.

        Every device owns a random stream spawned from ``seed`` before any
        work is dispatched, and the numerical-noise draw comes from its own
        dedicated stream, so the result is bit-identical for every ``n_jobs``
        value (including the serial path).
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        with span("mc.run", n=n, n_jobs=n_jobs):
            device_root, noise_root = spawn_seed_sequences(seed, 2)
            worker = functools.partial(_simulate_device, self.deck, self.campaign)
            rows = parallel_map(
                worker, list(enumerate(device_root.spawn(n))), n_jobs=n_jobs
            )
            pcms = np.stack([row[0] for row in rows])
            fingerprints = np.stack([row[1] for row in rows])
            if self.numerical_noise > 0:
                noise_rng = np.random.default_rng(noise_root)
                pcms = pcms * (
                    1.0 + self.numerical_noise * noise_rng.standard_normal(pcms.shape)
                )
                fingerprints = fingerprints * (
                    1.0
                    + self.numerical_noise
                    * noise_rng.standard_normal(fingerprints.shape)
                )
        return MonteCarloResult(pcms=pcms, fingerprints=fingerprints)


def _simulate_device(deck: SpiceDeck, campaign, item):
    """Simulate + measure one device from its pre-spawned seed (picklable)."""
    index, seed = item
    with span("mc.device", index=index):
        rng = np.random.default_rng(seed)
        die_params = deck.sample_die(rng)
        die = SimulatedDie(
            index=index,
            die_params=die_params,
            deck=deck,
            mismatch_seed=int(rng.integers(0, 2**63 - 1)),
        )
        device = campaign.measure_device(die, trojan=None, version="TF")
    obs_metrics.counter("mc.devices_simulated").inc()
    return device.pcms, device.fingerprint
