"""Critical-path delay composition.

A path is an ordered chain of gates; each stage drives the input capacitance
of the next stage (plus an optional external load on the last stage).  The
on-die PCM of the platform chip is exactly such a path — "np = 1 delay
measurement on a simple digital path" in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.circuits.gates import Gate
from repro.circuits.mosfet import DEFAULT_VDD
from repro.process.parameters import ProcessParameters


@dataclass
class CriticalPath:
    """An ordered chain of gates with an optional final load.

    Parameters
    ----------
    gates:
        The stages, in signal order.
    output_load_ff:
        External capacitance on the last stage (pad, flop input), in fF.
    name:
        Label used in reports.
    """

    gates: List[Gate] = field(default_factory=list)
    output_load_ff: float = 20.0
    name: str = "path"

    def __post_init__(self):
        if not self.gates:
            raise ValueError("a critical path needs at least one gate")
        if self.output_load_ff < 0:
            raise ValueError(f"output_load_ff must be non-negative, got {self.output_load_ff}")

    @classmethod
    def inverter_chain(cls, stage_count: int, gate_factory, name: str = "inv-chain",
                       output_load_ff: float = 20.0) -> "CriticalPath":
        """Build a homogeneous chain of ``stage_count`` gates."""
        if stage_count <= 0:
            raise ValueError(f"stage_count must be positive, got {stage_count}")
        return cls(
            gates=[gate_factory() for _ in range(stage_count)],
            output_load_ff=output_load_ff,
            name=name,
        )

    def __len__(self) -> int:
        return len(self.gates)

    def stage_delays_ns(self, params: ProcessParameters, vdd: float = DEFAULT_VDD) -> List[float]:
        """Per-stage propagation delays in nanoseconds.

        Identical (gate, load) stages — the inner stages of a homogeneous
        inverter chain — are computed once and reused: gates are frozen
        value-compared dataclasses, and a pure function of equal inputs
        returns equal floats, so memoization cannot change any result.  This
        matters twice: the scalar path stops recomputing 30 identical
        inverter delays per PCM read, and the batched path evaluates only
        the distinct stages on ``(n,)`` arrays.
        """
        delays = []
        cap_cache = {}
        delay_cache = {}
        for index, gate in enumerate(self.gates):
            if index + 1 < len(self.gates):
                next_gate = self.gates[index + 1]
                if next_gate not in cap_cache:
                    cap_cache[next_gate] = next_gate.input_capacitance_ff(params)
                load = cap_cache[next_gate]
                load_key = next_gate
            else:
                load = self.output_load_ff
                load_key = ("output_load", self.output_load_ff)
            stage_key = (gate, load_key)
            if stage_key not in delay_cache:
                delay_cache[stage_key] = gate.propagation_delay_ns(
                    params, load_ff=load, vdd=vdd
                )
            delays.append(delay_cache[stage_key])
        return delays

    def delay_ns(self, params: ProcessParameters, vdd: float = DEFAULT_VDD) -> float:
        """Total path delay in nanoseconds.

        Array-valued parameters return an ``(n,)`` delay vector; the stages
        accumulate left to right exactly like the scalar ``sum``, so element
        ``i`` is bitwise identical to the scalar delay of die ``i``.
        """
        total = sum(self.stage_delays_ns(params, vdd=vdd))
        if np.ndim(total) == 0:
            return float(total)
        return total
