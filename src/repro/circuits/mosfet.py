"""Alpha-power-law MOSFET compact model (Sakurai-Newton).

The alpha-power law captures the short-channel saturation current well enough
for delay and drive-strength statistics:

    I_dsat = K * (W / L_eff) * (mu / mu_0) * (t_ox0 / t_ox) * (V_dd - V_th)^alpha

Everything the side-channel fingerprints and the PCMs depend on is a function
of drive current and capacitance, so this single expression carries the full
process-parameter correlation structure through the rest of the stack.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.process.parameters import ProcessParameters

#: Technology reference values the relative parameters are normalized to.
REFERENCE_TOX_NM = 7.60
REFERENCE_MU = 1.0

#: Saturation-region velocity index; ~2.0 for long channel, ~1.3 at 350 nm.
DEFAULT_ALPHA = 1.30

#: Current prefactor chosen so a 10/0.35 um NMOS at nominal drives ~1.9 mA.
DEFAULT_K_N = 2.6e-5
DEFAULT_K_P = 1.1e-5

#: Nominal supply of the synthetic 350 nm platform.
DEFAULT_VDD = 3.3


def elementwise_pow(base: np.ndarray, exponent: float) -> np.ndarray:
    """``base ** exponent`` via C ``pow``, matching the scalar result exactly.

    numpy's array power ufunc uses a SIMD kernel whose last bit differs from
    the scalar ``float ** float`` path (C ``pow``) for a few percent of
    positive inputs.  The batched population engine must reproduce the
    scalar reference bitwise, so the one non-integer power in the compact
    model goes through ``math.pow`` per element.  Only a handful of ``(n,)``
    arrays are raised per population sweep, so the Python-level loop is not
    a hot spot.
    """
    flat = base.ravel()
    return np.array([math.pow(v, exponent) for v in flat.tolist()],
                    dtype=float).reshape(base.shape)


class MosfetPolarity(enum.Enum):
    """Device polarity; selects which threshold/mobility parameters apply."""

    NMOS = "nmos"
    PMOS = "pmos"


@dataclass(frozen=True)
class AlphaPowerMosfet:
    """A sized transistor evaluated on a set of process parameters.

    Parameters
    ----------
    polarity:
        NMOS or PMOS.
    width_um / length_um:
        Drawn dimensions.  ``length_um`` scales with the process ``leff``
        parameter (drawn length is fixed; the effective length varies).
    alpha:
        Velocity-saturation index of the alpha-power law.
    k_prefactor:
        Current prefactor in A per square of (V^alpha); defaults depend on
        polarity.
    """

    polarity: MosfetPolarity
    width_um: float
    length_um: float = 0.35
    alpha: float = DEFAULT_ALPHA
    k_prefactor: float = 0.0

    def __post_init__(self):
        if self.width_um <= 0 or self.length_um <= 0:
            raise ValueError(
                f"device dimensions must be positive, got W={self.width_um}, L={self.length_um}"
            )
        if self.k_prefactor == 0.0:
            default = DEFAULT_K_N if self.polarity is MosfetPolarity.NMOS else DEFAULT_K_P
            object.__setattr__(self, "k_prefactor", default)

    def threshold(self, params: ProcessParameters) -> float:
        """Threshold voltage for this polarity under ``params``."""
        return params.vth_n if self.polarity is MosfetPolarity.NMOS else params.vth_p

    def mobility(self, params: ProcessParameters) -> float:
        """Relative mobility for this polarity under ``params``."""
        return params.mobility_n if self.polarity is MosfetPolarity.NMOS else params.mobility_p

    def saturation_current(self, params: ProcessParameters, vdd: float = DEFAULT_VDD) -> float:
        """Saturation drain current in amperes at gate drive ``vdd``.

        Accepts scalar or array-valued parameters; array fields evaluate the
        whole population elementwise, bitwise identical to per-die scalar
        calls.  Raises ``ValueError`` if any device does not turn on
        (``vdd <= vth``), which in this library always indicates a
        mis-configured experiment rather than a legitimate operating point.
        """
        vth = self.threshold(params)
        overdrive = vdd - vth
        if np.ndim(overdrive) == 0:
            if overdrive <= 0:
                raise ValueError(
                    f"device does not conduct: vdd={vdd} V <= vth={vth} V "
                    f"({self.polarity.value})"
                )
            powered = overdrive**self.alpha
        else:
            if np.any(overdrive <= 0):
                raise ValueError(
                    f"some devices do not conduct: vdd={vdd} V <= max vth="
                    f"{np.max(vth)} V ({self.polarity.value})"
                )
            powered = elementwise_pow(overdrive, self.alpha)
        effective_length = self.length_um * (params.leff / 0.35)
        geometry = self.width_um / effective_length
        mobility_factor = self.mobility(params) / REFERENCE_MU
        oxide_factor = REFERENCE_TOX_NM / params.tox
        return (
            self.k_prefactor * geometry * mobility_factor * oxide_factor * powered
        )

    def input_capacitance_ff(self, params: ProcessParameters) -> float:
        """Gate input capacitance in femtofarads (C_ox * W * L, scaled)."""
        # ~4.5 fF/um^2 of gate area at 7.6 nm oxide; thinner oxide -> more C.
        effective_length = self.length_um * (params.leff / 0.35)
        area = self.width_um * effective_length
        return 4.5 * area * (REFERENCE_TOX_NM / params.tox)
