"""Static CMOS gate delay model built on the alpha-power MOSFET.

A gate's propagation delay follows the familiar CV/I form:

    t_p = 0.69 * C_load * V_dd / I_drive

where ``C_load`` combines fan-out gate capacitance and parasitic wiring
(scaled by the ``cpar`` process parameter), and ``I_drive`` is the weaker of
the pull-up / pull-down saturation currents for the worst-case transition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.mosfet import DEFAULT_VDD, AlphaPowerMosfet, MosfetPolarity
from repro.process.parameters import ProcessParameters

#: Effort factor mapping an RC product to a 50 % propagation delay.
DELAY_FACTOR = 0.69

#: Fixed wiring parasitic per gate output, in fF (scaled by cpar).
WIRE_CAP_FF = 12.0


@dataclass(frozen=True)
class Gate:
    """One static CMOS gate characterized by its pull-up/pull-down devices.

    Parameters
    ----------
    name:
        Gate type label (for reports).
    pull_down / pull_up:
        The equivalent NMOS / PMOS devices for the worst-case transition
        (series stacks are folded into an equivalent longer device).
    intrinsic_cap_ff:
        Self-loading (drain junctions) in fF at nominal ``cpar``.
    """

    name: str
    pull_down: AlphaPowerMosfet
    pull_up: AlphaPowerMosfet
    intrinsic_cap_ff: float = 3.0

    def __post_init__(self):
        if self.pull_down.polarity is not MosfetPolarity.NMOS:
            raise ValueError("pull_down device must be NMOS")
        if self.pull_up.polarity is not MosfetPolarity.PMOS:
            raise ValueError("pull_up device must be PMOS")

    def input_capacitance_ff(self, params: ProcessParameters) -> float:
        """Input capacitance presented to the previous stage, in fF."""
        return self.pull_down.input_capacitance_ff(params) + self.pull_up.input_capacitance_ff(
            params
        )

    def drive_current(self, params: ProcessParameters, vdd: float = DEFAULT_VDD) -> float:
        """Worst-case (weaker-edge) drive current in amperes."""
        down = self.pull_down.saturation_current(params, vdd)
        up = self.pull_up.saturation_current(params, vdd)
        if np.ndim(down) == 0 and np.ndim(up) == 0:
            return min(down, up)
        return np.minimum(down, up)

    def _total_cap_ff(self, params: ProcessParameters, load_ff: float) -> float:
        if np.any(np.asarray(load_ff) < 0):
            raise ValueError(f"load_ff must be non-negative, got {load_ff}")
        return load_ff + (self.intrinsic_cap_ff + WIRE_CAP_FF) * params.cpar

    def edge_delay_ns(
        self,
        params: ProcessParameters,
        load_ff: float,
        edge: str,
        vdd: float = DEFAULT_VDD,
    ) -> float:
        """Single-edge delay: ``"fall"`` uses the NMOS, ``"rise"`` the PMOS."""
        if edge == "fall":
            current = self.pull_down.saturation_current(params, vdd)
        elif edge == "rise":
            current = self.pull_up.saturation_current(params, vdd)
        else:
            raise ValueError(f"edge must be 'rise' or 'fall', got {edge!r}")
        total_cap_ff = self._total_cap_ff(params, load_ff)
        delay_s = DELAY_FACTOR * (total_cap_ff * 1e-15) * vdd / current
        return delay_s * 1e9

    def propagation_delay_ns(
        self,
        params: ProcessParameters,
        load_ff: float,
        vdd: float = DEFAULT_VDD,
    ) -> float:
        """Propagation delay t_p = (t_pLH + t_pHL) / 2, in nanoseconds.

        The standard mid-point definition: the average of the rising and
        falling output edges, so the delay senses both device polarities.
        The gate's own parasitics and the wiring load are added on top of
        the external ``load_ff``; both scale with the ``cpar`` process
        parameter.
        """
        rise = self.edge_delay_ns(params, load_ff, "rise", vdd=vdd)
        fall = self.edge_delay_ns(params, load_ff, "fall", vdd=vdd)
        return 0.5 * (rise + fall)


def inverter(width_n_um: float = 4.0, beta: float = 2.2) -> Gate:
    """A standard inverter; ``beta`` is the PMOS/NMOS width ratio."""
    return Gate(
        name="INV",
        pull_down=AlphaPowerMosfet(MosfetPolarity.NMOS, width_um=width_n_um),
        pull_up=AlphaPowerMosfet(MosfetPolarity.PMOS, width_um=width_n_um * beta),
    )


def nand2(width_n_um: float = 8.0, beta: float = 1.1) -> Gate:
    """A 2-input NAND; the series NMOS stack is folded to half-strength."""
    return Gate(
        name="NAND2",
        pull_down=AlphaPowerMosfet(MosfetPolarity.NMOS, width_um=width_n_um, length_um=0.70),
        pull_up=AlphaPowerMosfet(MosfetPolarity.PMOS, width_um=width_n_um * beta),
        intrinsic_cap_ff=4.5,
    )


def nor2(width_n_um: float = 4.0, beta: float = 4.4) -> Gate:
    """A 2-input NOR; the series PMOS stack is folded to half-strength."""
    return Gate(
        name="NOR2",
        pull_down=AlphaPowerMosfet(MosfetPolarity.NMOS, width_um=width_n_um),
        pull_up=AlphaPowerMosfet(MosfetPolarity.PMOS, width_um=width_n_um * beta, length_um=0.70),
        intrinsic_cap_ff=4.5,
    )
