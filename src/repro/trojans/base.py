"""Common interface for pulse-level hardware Trojans.

A Trojan observes the secret bit to leak for each transmitted pulse and may
perturb that pulse's amplitude and/or centre frequency.  The encoding used
throughout (matching the paper): a leaked key bit of '1' leaves the pulse
unaltered; a leaked key bit of '0' slightly increases the modulated quantity.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np


class TrojanModel(abc.ABC):
    """Abstract pulse-train modulation Trojan."""

    #: Human-readable Trojan name for reports.
    name: str = "trojan"

    @abc.abstractmethod
    def modulate(
        self,
        bit_indices: np.ndarray,
        leaked_bits: np.ndarray,
        amplitudes: np.ndarray,
        center_frequencies_ghz: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Perturb per-pulse amplitude/frequency as a function of leaked bits.

        Parameters
        ----------
        bit_indices:
            Ciphertext bit positions of the emitted pulses (0..127).
        leaked_bits:
            The secret bit aligned with each emitted pulse (same length).
        amplitudes, center_frequencies_ghz:
            Unmodulated per-pulse values.

        Returns
        -------
        (amplitudes, center_frequencies_ghz):
            The possibly-modulated arrays (new arrays; inputs untouched).
        """

    def modulate_population(
        self,
        bit_indices: np.ndarray,
        leaked_bits: np.ndarray,
        amplitudes: np.ndarray,
        center_frequencies_ghz: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`modulate` over a device population.

        ``amplitudes`` / ``center_frequencies_ghz`` are
        ``(n_devices, n_pulses)``; ``bit_indices`` / ``leaked_bits`` are the
        shared ``(n_pulses,)`` emission pattern (the ciphertext, and hence
        the pulse positions, do not depend on the die).  The base
        implementation loops :meth:`modulate` per device — correct for any
        Trojan; the concrete Trojans override it with a broadcast that is
        bitwise identical to the loop.
        """
        rows = [
            self.modulate(bit_indices, leaked_bits, amplitudes[i],
                          center_frequencies_ghz[i])
            for i in range(amplitudes.shape[0])
        ]
        return (
            np.stack([amp for amp, _ in rows]),
            np.stack([freq for _, freq in rows]),
        )

    @staticmethod
    def _validate(bit_indices: np.ndarray, leaked_bits: np.ndarray,
                  amplitudes: np.ndarray, center_frequencies_ghz: np.ndarray) -> None:
        n = len(bit_indices)
        for label, arr in (
            ("leaked_bits", leaked_bits),
            ("amplitudes", amplitudes),
            ("center_frequencies_ghz", center_frequencies_ghz),
        ):
            if len(arr) != n:
                raise ValueError(f"{label} length {len(arr)} != pulse count {n}")
        if not np.all((np.asarray(leaked_bits) == 0) | (np.asarray(leaked_bits) == 1)):
            raise ValueError("leaked_bits must contain only 0 and 1")
