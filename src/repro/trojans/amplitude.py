"""Trojan I: key leakage through pulse-amplitude modulation.

For every transmitted ciphertext bit, the Trojan looks up the AES key bit at
the same index.  Key bit '1' → pulse untouched; key bit '0' → pulse amplitude
increased by a small relative depth, hidden well inside the amplitude spread
that process variation legitimately produces across chips.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.trojans.base import TrojanModel


class AmplitudeModulationTrojan(TrojanModel):
    """Amplitude-domain key leak.

    Parameters
    ----------
    depth:
        Relative amplitude increase applied to pulses whose leaked key bit
        is '0'.  The paper's Trojans stay within the process-variation
        margin; the default of 2 % sits well inside the ~6 % die-to-die
        amplitude spread of the synthetic process.
    """

    name = "trojan-I-amplitude"

    def __init__(self, depth: float = 0.02):
        if not 0 < depth < 0.5:
            raise ValueError(f"depth must be in (0, 0.5), got {depth}")
        self.depth = float(depth)

    def modulate(
        self,
        bit_indices: np.ndarray,
        leaked_bits: np.ndarray,
        amplitudes: np.ndarray,
        center_frequencies_ghz: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        self._validate(bit_indices, leaked_bits, amplitudes, center_frequencies_ghz)
        scale = np.where(np.asarray(leaked_bits) == 0, 1.0 + self.depth, 1.0)
        return np.asarray(amplitudes) * scale, np.asarray(center_frequencies_ghz).copy()

    def modulate_population(
        self,
        bit_indices: np.ndarray,
        leaked_bits: np.ndarray,
        amplitudes: np.ndarray,
        center_frequencies_ghz: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        self._validate(bit_indices, leaked_bits, amplitudes[0], center_frequencies_ghz[0])
        # The scale vector is a function of the leaked key bits only, so it is
        # shared by every device row and broadcasts over the device axis —
        # producing the exact multiply the per-device loop would.
        scale = np.where(np.asarray(leaked_bits) == 0, 1.0 + self.depth, 1.0)
        return (np.asarray(amplitudes) * scale,
                np.array(center_frequencies_ghz, dtype=float))

    def __repr__(self) -> str:
        return f"AmplitudeModulationTrojan(depth={self.depth})"
