"""Hardware Trojan substrate.

Two silicon-proven Trojans from the paper's platform (Liu/Jin/Makris,
ICCAD'13) leak the on-chip AES key over the public wireless channel by
hiding it in the amplitude (Trojan I) or frequency (Trojan II) margins that
process variation already occupies.  :mod:`repro.trojans.attacker` shows the
leak is real: a listener who knows the encoding recovers the full key.
"""

from repro.trojans.amplitude import AmplitudeModulationTrojan
from repro.trojans.attacker import KeyRecoveryAttacker
from repro.trojans.base import TrojanModel
from repro.trojans.frequency import FrequencyModulationTrojan

__all__ = [
    "TrojanModel",
    "AmplitudeModulationTrojan",
    "FrequencyModulationTrojan",
    "KeyRecoveryAttacker",
]
