"""Attacker-side key recovery from the public wireless channel.

Demonstrates that the Trojans actually leak: an eavesdropper who knows the
encoding observes many block transmissions, averages the per-bit-position
pulse amplitude (or centre frequency), and thresholds against the per-device
baseline to decide each key bit.  Positions whose average modulated quantity
sits *above* the baseline correspond to key bit '0' (the Trojans increase
the quantity for '0' bits); the rest are '1'.

The attacker needs no golden chip, no key, and no physical access — only the
public channel — which is exactly why these Trojans evade functional testing
and motivate side-channel detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.rf.pulse import PulseTrain

BLOCK_BITS = 128


@dataclass
class KeyRecoveryAttacker:
    """Recovers a 128-bit leaked key from observed pulse trains.

    Parameters
    ----------
    mode:
        ``"amplitude"`` to attack Trojan I, ``"frequency"`` for Trojan II.
    """

    mode: str = "amplitude"
    _sums: np.ndarray = field(default_factory=lambda: np.zeros(BLOCK_BITS), repr=False)
    _counts: np.ndarray = field(default_factory=lambda: np.zeros(BLOCK_BITS), repr=False)

    def __post_init__(self):
        if self.mode not in ("amplitude", "frequency"):
            raise ValueError(f"mode must be 'amplitude' or 'frequency', got {self.mode!r}")

    def observe(self, train: PulseTrain) -> None:
        """Accumulate one intercepted block transmission."""
        values = (
            train.amplitudes if self.mode == "amplitude" else train.center_frequencies_ghz
        )
        np.add.at(self._sums, train.bit_indices, values)
        np.add.at(self._counts, train.bit_indices, 1)

    def observe_all(self, trains: List[PulseTrain]) -> None:
        """Accumulate a batch of intercepted transmissions."""
        for train in trains:
            self.observe(train)

    def coverage(self) -> float:
        """Fraction of the 128 bit positions observed at least once."""
        return float(np.mean(self._counts > 0))

    def recover_key_bits(self) -> Optional[np.ndarray]:
        """Return the recovered 128 key bits, or ``None`` if coverage < 100 %.

        Decision rule: positions whose mean observed quantity exceeds the
        midpoint between the two empirical clusters are decoded as key '0'
        (the Trojans *increase* amplitude/frequency for leaked '0' bits).
        """
        if np.any(self._counts == 0):
            return None
        means = self._sums / self._counts
        low, high = means.min(), means.max()
        if high - low < 1e-12:
            # No modulation present (Trojan-free device): decode all-ones,
            # i.e. "nothing leaked" — callers should check leak_margin().
            return np.ones(BLOCK_BITS, dtype=int)
        threshold = 0.5 * (low + high)
        return np.where(means > threshold, 0, 1).astype(int)

    def leak_margin(self) -> float:
        """Relative separation between the two decoded clusters.

        Near zero for a Trojan-free device; approximately the Trojan
        modulation depth for an infested one.
        """
        observed = self._counts > 0
        if not np.any(observed):
            return 0.0
        means = self._sums[observed] / self._counts[observed]
        mid = 0.5 * (means.min() + means.max())
        if mid == 0:
            return 0.0
        return float((means.max() - means.min()) / mid)
