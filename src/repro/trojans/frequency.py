"""Trojan II: key leakage through pulse-frequency modulation.

Same leak encoding as Trojan I, but the modulated quantity is the pulse
centre frequency: key bit '1' → untouched, key bit '0' → centre frequency
increased by a small relative detuning.  The band-limited measurement
receiver converts this detuning into a power difference, so Trojan II is
visible in the same power fingerprint the paper uses.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.trojans.base import TrojanModel


class FrequencyModulationTrojan(TrojanModel):
    """Frequency-domain key leak.

    Parameters
    ----------
    depth:
        Relative centre-frequency increase applied to pulses whose leaked
        key bit is '0'.  Default 4 % — inside the shaping-cell spread that
        process variation produces, yet resolvable by an attacker averaging
        over blocks.
    """

    name = "trojan-II-frequency"

    def __init__(self, depth: float = 0.04):
        if not 0 < depth < 0.5:
            raise ValueError(f"depth must be in (0, 0.5), got {depth}")
        self.depth = float(depth)

    def modulate(
        self,
        bit_indices: np.ndarray,
        leaked_bits: np.ndarray,
        amplitudes: np.ndarray,
        center_frequencies_ghz: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        self._validate(bit_indices, leaked_bits, amplitudes, center_frequencies_ghz)
        scale = np.where(np.asarray(leaked_bits) == 0, 1.0 + self.depth, 1.0)
        return np.asarray(amplitudes).copy(), np.asarray(center_frequencies_ghz) * scale

    def modulate_population(
        self,
        bit_indices: np.ndarray,
        leaked_bits: np.ndarray,
        amplitudes: np.ndarray,
        center_frequencies_ghz: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        self._validate(bit_indices, leaked_bits, amplitudes[0], center_frequencies_ghz[0])
        # Shared per-pulse scale broadcast over the device axis; bitwise the
        # same multiply as the per-device loop.
        scale = np.where(np.asarray(leaked_bits) == 0, 1.0 + self.depth, 1.0)
        return (np.array(amplitudes, dtype=float),
                np.asarray(center_frequencies_ghz) * scale)

    def __repr__(self) -> str:
        return f"FrequencyModulationTrojan(depth={self.depth})"
