"""Lot / wafer / die bookkeeping for fabricated populations.

These classes carry identity and placement only; the physics lives in
:mod:`repro.process.parameters` and the sampling in :mod:`repro.silicon.foundry`.
Placement matters because the paper notes that DUTT populations often come
from a single lot, so their PCM spread under-represents the full process
distribution — the motivation for KMM calibration of simulated PCMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class DieSite:
    """Identity of one die: lot / wafer / (x, y) site on the wafer."""

    lot_id: int
    wafer_id: int
    x: int
    y: int

    def label(self) -> str:
        """Human-readable identifier, e.g. ``L0.W2.(3,1)``."""
        return f"L{self.lot_id}.W{self.wafer_id}.({self.x},{self.y})"


@dataclass
class Wafer:
    """One wafer: an ordered collection of die sites."""

    lot_id: int
    wafer_id: int
    sites: List[DieSite] = field(default_factory=list)

    @classmethod
    def with_grid(cls, lot_id: int, wafer_id: int, rows: int, cols: int) -> "Wafer":
        """Create a wafer with a full ``rows x cols`` rectangular die grid."""
        if rows <= 0 or cols <= 0:
            raise ValueError(f"grid must be positive, got {rows}x{cols}")
        sites = [
            DieSite(lot_id=lot_id, wafer_id=wafer_id, x=x, y=y)
            for y in range(rows)
            for x in range(cols)
        ]
        return cls(lot_id=lot_id, wafer_id=wafer_id, sites=sites)

    def __len__(self) -> int:
        return len(self.sites)


@dataclass
class Lot:
    """One fabrication lot: a set of wafers processed together."""

    lot_id: int
    wafers: List[Wafer] = field(default_factory=list)

    @classmethod
    def with_wafers(cls, lot_id: int, n_wafers: int, rows: int, cols: int) -> "Lot":
        """Create a lot of ``n_wafers`` identical grid wafers."""
        if n_wafers <= 0:
            raise ValueError(f"n_wafers must be positive, got {n_wafers}")
        wafers = [
            Wafer.with_grid(lot_id=lot_id, wafer_id=w, rows=rows, cols=cols)
            for w in range(n_wafers)
        ]
        return cls(lot_id=lot_id, wafers=wafers)

    def sites(self) -> List[DieSite]:
        """All die sites of the lot, wafer by wafer."""
        out: List[DieSite] = []
        for wafer in self.wafers:
            out.extend(wafer.sites)
        return out

    def size(self) -> Tuple[int, int]:
        """(number of wafers, dies per wafer)."""
        per_wafer = len(self.wafers[0]) if self.wafers else 0
        return len(self.wafers), per_wafer
