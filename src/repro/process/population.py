"""Array-of-devices representation for the batched population engine.

A :class:`DiePopulation` stores a whole population of dies as one
array-valued :class:`~repro.process.parameters.ProcessParameters` (each field
an ``(n,)`` float array) plus the per-die mismatch seeds.  Per-structure
local parameters are then evaluated for all dies at once: the only remaining
per-die work is seeding one generator per (die, structure) pair — required
for bit-identity with the scalar path, which derives each structure's
mismatch from ``SeedSequence([mismatch_seed, *structure_entropy(name)])`` —
while the arithmetic that turns those draws into parameters is vectorized.

The RNG stream contract shared with the scalar dies
(:class:`~repro.circuits.montecarlo.SimulatedDie`,
:class:`~repro.silicon.foundry.FabricatedDie`):

* per structure, one fresh generator seeded from
  ``SeedSequence([mismatch_seed, *structure_entropy(structure)])``;
* that generator yields one standard normal per *active* within-die
  parameter (sigma > 0), in ``PARAMETER_NAMES`` order;
* analog model error is applied after mismatch, as a relative shift.

:func:`sample_structure_params` is the scalar reference implementation of
this contract; both die classes delegate to it, so the contract lives in one
place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.process.parameters import ProcessParameters, stack_parameters
from repro.process.variation import VariationModel
from repro.utils.rng import structure_entropy


def structure_seed_sequence(mismatch_seed: int, structure: str) -> np.random.SeedSequence:
    """The per-(die, structure) seed: die seed mixed with the structure name."""
    return np.random.SeedSequence([int(mismatch_seed), *structure_entropy(structure)])


def sample_structure_params(
    variation: VariationModel,
    die_params: ProcessParameters,
    mismatch_seed: int,
    structure: str,
    analog_model_error: Optional[Dict[str, Dict[str, float]]] = None,
) -> ProcessParameters:
    """Scalar reference draw of one structure's local parameters.

    This is the single definition of the per-structure RNG stream contract;
    the batched :meth:`DiePopulation.structure_params` mirrors it draw for
    draw.
    """
    rng = np.random.default_rng(structure_seed_sequence(mismatch_seed, structure))
    local = variation.sample_structure(die_params, rng)
    if analog_model_error:
        for key, shifts in analog_model_error.items():
            if key in structure:
                local = local.perturbed(
                    {name: getattr(local, name) * rel for name, rel in shifts.items()}
                )
    return local


@dataclass
class DiePopulation:
    """A population of dies as parallel arrays.

    Parameters
    ----------
    die_params:
        Array-valued :class:`ProcessParameters`; field ``i`` of every array
        belongs to die ``i``.
    mismatch_seeds:
        ``(n,)`` integer seeds, one per die, anchoring the per-structure
        mismatch streams.
    variation:
        The variation hierarchy shared by the population (one fab line).
    analog_model_error:
        Structure-keyed relative shifts shared by the population (a property
        of the design kit, not of a die); see
        :class:`~repro.silicon.foundry.FabricatedDie`.
    labels:
        Optional per-die report labels, aligned with the arrays.
    """

    die_params: ProcessParameters
    mismatch_seeds: np.ndarray
    variation: VariationModel
    analog_model_error: Dict[str, Dict[str, float]] = field(default_factory=dict)
    labels: List[str] = field(default_factory=list)
    _structure_cache: Dict[str, ProcessParameters] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        self.mismatch_seeds = np.asarray(self.mismatch_seeds, dtype=np.int64)
        if self.mismatch_seeds.ndim != 1 or self.mismatch_seeds.shape[0] == 0:
            raise ValueError(
                f"mismatch_seeds must be a non-empty 1-D array, got shape "
                f"{self.mismatch_seeds.shape}"
            )
        if self.labels and len(self.labels) != len(self):
            raise ValueError(
                f"{len(self.labels)} labels for {len(self)} dies"
            )

    def __len__(self) -> int:
        return int(self.mismatch_seeds.shape[0])

    @classmethod
    def from_dies(cls, dies: Sequence) -> "DiePopulation":
        """Stack scalar dies (simulated or fabricated) into one population.

        Accepts any sequence of objects with ``die_params``, ``mismatch_seed``
        and ``label()``, plus either a ``variation`` attribute
        (:class:`~repro.silicon.foundry.FabricatedDie`) or a ``deck``
        carrying one (:class:`~repro.circuits.montecarlo.SimulatedDie`).
        The population must be homogeneous: every die shares the first die's
        variation model and analog model error (true of every population the
        library fabricates or simulates).
        """
        dies = list(dies)
        if not dies:
            raise ValueError("cannot build a population from zero dies")
        first = dies[0]
        variation = getattr(first, "variation", None)
        if variation is None:
            variation = first.deck.variation
        return cls(
            die_params=stack_parameters([die.die_params for die in dies]),
            mismatch_seeds=np.array([die.mismatch_seed for die in dies], dtype=np.int64),
            variation=variation,
            analog_model_error=dict(getattr(first, "analog_model_error", {}) or {}),
            labels=[die.label() for die in dies],
        )

    def structure_params(self, structure: str) -> ProcessParameters:
        """Local mismatch parameters of one structure across all dies.

        Returns an array-valued :class:`ProcessParameters` whose element
        ``i`` is bitwise identical to
        ``sample_structure_params(..., mismatch_seeds[i], structure, ...)``.
        """
        if structure not in self._structure_cache:
            sigmas = self.variation.within_die_sigma
            draws = self.variation.independent_draw_count(sigmas)
            z = np.empty((len(self), draws), dtype=float)
            for i, seed in enumerate(self.mismatch_seeds):
                rng = np.random.default_rng(structure_seed_sequence(seed, structure))
                z[i] = rng.standard_normal(draws)
            local = self.variation.apply_independent(self.die_params, sigmas, z)
            for key, shifts in self.analog_model_error.items():
                if key in structure:
                    local = local.perturbed(
                        {name: getattr(local, name) * rel for name, rel in shifts.items()}
                    )
            self._structure_cache[structure] = local
        return self._structure_cache[structure]

    def label(self, index: int) -> str:
        """Report label of die ``index``."""
        if self.labels:
            return self.labels[index]
        return f"die{index}"
