"""Base process-technology definitions (no dependencies on other substrates).

Fundamental process parameters, the hierarchical variation model, and
lot/wafer/die bookkeeping.  Both the circuit models and the silicon
fabrication layer build on this package.
"""

from repro.process.parameters import (
    PARAMETER_NAMES,
    OperatingPointShift,
    ProcessParameters,
    nominal_350nm,
)
from repro.process.variation import VariationModel, default_variation_350nm
from repro.process.wafer import DieSite, Lot, Wafer

__all__ = [
    "ProcessParameters",
    "OperatingPointShift",
    "PARAMETER_NAMES",
    "nominal_350nm",
    "VariationModel",
    "default_variation_350nm",
    "DieSite",
    "Wafer",
    "Lot",
]
