"""Hierarchical process-variation model: lot → die → within-die.

Variation is decomposed the way fabs characterize it:

* **lot-to-lot** — slow drift of the line between fabrication lots;
* **die-to-die** — wafer-level gradients and die placement;
* **within-die (local)** — mismatch between structures on the same die.

Lot and die components are *correlated across parameters* through a common
"process speed" latent factor: a fast die has lower thresholds, higher
mobility and thinner oxide all at once.  This correlation is what makes a
PCM informative about a fingerprint at all — both respond to the shared
speed factor — and is standard fab behaviour (corner models move parameters
together).

The within-die component is pure mismatch (independent per parameter and per
structure).  It limits how much a PCM can tell us about a fingerprint: the
PCM path and the UWB power amplifier sit at different spots of the die, so
their local parameters are correlated (they share the die component) but not
identical.  That residual is why the paper's boundary B3 (built purely from
PCM-predicted fingerprints) is too tight and needs KDE tail enhancement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.process.parameters import PARAMETER_NAMES, ProcessParameters
from repro.utils.rng import SeedLike, as_generator


def _check_sigmas(sigmas: Dict[str, float], label: str) -> Dict[str, float]:
    unknown = set(sigmas) - set(PARAMETER_NAMES)
    if unknown:
        raise ValueError(f"unknown parameters in {label}: {sorted(unknown)}")
    for name, value in sigmas.items():
        if value < 0:
            raise ValueError(f"{label}[{name!r}] must be non-negative, got {value}")
    return dict(sigmas)


def _check_loadings(loadings: Dict[str, float]) -> Dict[str, float]:
    unknown = set(loadings) - set(PARAMETER_NAMES)
    if unknown:
        raise ValueError(f"unknown parameters in speed_loading: {sorted(unknown)}")
    for name, value in loadings.items():
        if not -1.0 <= value <= 1.0:
            raise ValueError(f"speed_loading[{name!r}] must be in [-1, 1], got {value}")
    return dict(loadings)


@dataclass(frozen=True)
class VariationModel:
    """Relative 1-sigma magnitudes for each variation component.

    All sigmas are *relative* to the current operating point value of the
    parameter (e.g. ``die_sigma['vth_n'] = 0.02`` means a 2 % die-to-die
    standard deviation on the NMOS threshold).

    Parameters
    ----------
    lot_sigma / die_sigma / within_die_sigma:
        Per-parameter relative sigmas of the three hierarchy levels.
    speed_loading:
        Correlation of each parameter with the latent process-speed factor,
        in [-1, 1].  A parameter's lot/die deviation decomposes as
        ``sigma * (loading * z_speed + sqrt(1 - loading^2) * z_own)``.
        The sign encodes the fast-process direction (fast = thresholds down,
        mobility up).  Within-die mismatch is always independent.
    """

    lot_sigma: Dict[str, float] = field(default_factory=dict)
    die_sigma: Dict[str, float] = field(default_factory=dict)
    within_die_sigma: Dict[str, float] = field(default_factory=dict)
    speed_loading: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        _check_sigmas(self.lot_sigma, "lot_sigma")
        _check_sigmas(self.die_sigma, "die_sigma")
        _check_sigmas(self.within_die_sigma, "within_die_sigma")
        _check_loadings(self.speed_loading)

    def _draw_correlated(self, base: ProcessParameters, sigmas: Dict[str, float],
                         rng: np.random.Generator) -> ProcessParameters:
        z_speed = rng.standard_normal()
        deltas = {}
        for name in PARAMETER_NAMES:
            sigma = sigmas.get(name, 0.0)
            if sigma <= 0.0:
                continue
            loading = self.speed_loading.get(name, 0.0)
            z = loading * z_speed + np.sqrt(1.0 - loading**2) * rng.standard_normal()
            deltas[name] = getattr(base, name) * sigma * z
        return base.perturbed(deltas)

    def _draw_independent(self, base: ProcessParameters, sigmas: Dict[str, float],
                          rng: np.random.Generator) -> ProcessParameters:
        deltas = {
            name: getattr(base, name) * sigmas.get(name, 0.0) * rng.standard_normal()
            for name in PARAMETER_NAMES
            if sigmas.get(name, 0.0) > 0.0
        }
        return base.perturbed(deltas)

    def active_names(self, sigmas: Dict[str, float]) -> List[str]:
        """Parameters with a strictly positive sigma, in draw order."""
        return [name for name in PARAMETER_NAMES if sigmas.get(name, 0.0) > 0.0]

    def correlated_draw_count(self, sigmas: Dict[str, float]) -> int:
        """Normal draws one correlated sample consumes: speed + one per active."""
        return 1 + len(self.active_names(sigmas))

    def independent_draw_count(self, sigmas: Dict[str, float]) -> int:
        """Normal draws one independent (mismatch) sample consumes."""
        return len(self.active_names(sigmas))

    def apply_correlated(self, base: ProcessParameters, sigmas: Dict[str, float],
                         z_speed: np.ndarray, z_own: np.ndarray) -> ProcessParameters:
        """Vectorized :meth:`sample_lot`/:meth:`sample_die` on pre-drawn normals.

        ``z_speed`` is the ``(n,)`` latent speed factor per device; ``z_own``
        is ``(n, k)`` with one column per :meth:`active_names` entry, in that
        order — exactly the draws the scalar path consumes per device.  The
        per-element arithmetic matches the scalar path operation for
        operation, so results are bitwise identical.
        """
        z_speed = np.asarray(z_speed, dtype=float)
        z_own = np.asarray(z_own, dtype=float)
        deltas = {}
        for column, name in enumerate(self.active_names(sigmas)):
            loading = self.speed_loading.get(name, 0.0)
            z = loading * z_speed + np.sqrt(1.0 - loading**2) * z_own[:, column]
            deltas[name] = getattr(base, name) * sigmas[name] * z
        return base.perturbed(deltas)

    def apply_independent(self, base: ProcessParameters, sigmas: Dict[str, float],
                          z: np.ndarray) -> ProcessParameters:
        """Vectorized :meth:`sample_structure` on pre-drawn ``(n, k)`` normals."""
        z = np.asarray(z, dtype=float)
        deltas = {
            name: getattr(base, name) * sigmas[name] * z[:, column]
            for column, name in enumerate(self.active_names(sigmas))
        }
        return base.perturbed(deltas)

    def sample_lot(self, operating_point: ProcessParameters,
                   rng: SeedLike = None) -> ProcessParameters:
        """Draw the lot-level parameter set around the fab operating point."""
        return self._draw_correlated(operating_point, self.lot_sigma, as_generator(rng))

    def sample_die(self, lot_params: ProcessParameters,
                   rng: SeedLike = None) -> ProcessParameters:
        """Draw one die's parameters around its lot."""
        return self._draw_correlated(lot_params, self.die_sigma, as_generator(rng))

    def sample_structure(self, die_params: ProcessParameters,
                         rng: SeedLike = None) -> ProcessParameters:
        """Draw the local parameters of one on-die structure (mismatch)."""
        return self._draw_independent(die_params, self.within_die_sigma, as_generator(rng))

    def total_die_sigma(self, name: str) -> float:
        """Combined relative sigma (lot + die) seen across a population of dies."""
        return float(
            np.hypot(self.lot_sigma.get(name, 0.0), self.die_sigma.get(name, 0.0))
        )


def default_variation_350nm() -> VariationModel:
    """Variation magnitudes representative of a mature 350 nm process.

    Lot/die deviations are dominated by the common speed factor, as in
    typical fast/slow corner behaviour; ``cpar`` (back-end capacitance) is
    more loosely coupled to the front-end speed factor.
    """
    return VariationModel(
        lot_sigma={
            "vth_n": 0.015,
            "vth_p": 0.015,
            "mobility_n": 0.017,
            "mobility_p": 0.017,
            "tox": 0.007,
            "leff": 0.010,
            "cpar": 0.012,
        },
        die_sigma={
            "vth_n": 0.009,
            "vth_p": 0.009,
            "mobility_n": 0.010,
            "mobility_p": 0.010,
            "tox": 0.0045,
            "leff": 0.006,
            "cpar": 0.0075,
        },
        within_die_sigma={
            "vth_n": 0.002,
            "vth_p": 0.002,
            "mobility_n": 0.002,
            "mobility_p": 0.002,
            "tox": 0.001,
            "leff": 0.0015,
            "cpar": 0.002,
        },
        speed_loading={
            "vth_n": -0.97,
            "vth_p": -0.97,
            "mobility_n": +0.97,
            "mobility_p": +0.97,
            "tox": -0.94,
            "leff": -0.90,
            "cpar": +0.60,
        },
    )
