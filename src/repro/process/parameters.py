"""Fundamental process parameters of the synthetic 350 nm technology.

The detection method never looks at these parameters directly — they are the
hidden state of the fab.  PCM structures and side-channel fingerprints are
both (different) functions of them, which is exactly why a PCM measurement
carries information about a chip's fingerprint without being influenced by a
Trojan.

The parameter set is deliberately compact but physically motivated:

==============  =======  =====================================================
name            unit     role
==============  =======  =====================================================
``vth_n``       V        NMOS threshold voltage (drive current, delay)
``vth_p``       V        PMOS threshold voltage (drive current, PA swing)
``mobility_n``  rel.     NMOS carrier mobility relative to nominal
``mobility_p``  rel.     PMOS carrier mobility relative to nominal
``tox``         nm       gate-oxide thickness (Cox, drive current)
``leff``        um       effective channel length (drive current, capacitance)
``cpar``        rel.     parasitic/wiring capacitance factor (delay, RF tuning)
==============  =======  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Sequence

import numpy as np

PARAMETER_NAMES = ("vth_n", "vth_p", "mobility_n", "mobility_p", "tox", "leff", "cpar")


@dataclass(frozen=True)
class ProcessParameters:
    """One realization of the fundamental process parameters.

    Instances are immutable; derived realizations (a die on a shifted lot, a
    local structure on a die) are produced with :meth:`perturbed` or
    :meth:`shifted`.
    """

    vth_n: float = 0.50
    vth_p: float = 0.58
    mobility_n: float = 1.00
    mobility_p: float = 1.00
    tox: float = 7.60
    leff: float = 0.35
    cpar: float = 1.00

    def as_array(self) -> np.ndarray:
        """The parameters as a vector ordered like :data:`PARAMETER_NAMES`."""
        return np.array([getattr(self, name) for name in PARAMETER_NAMES], dtype=float)

    @classmethod
    def from_array(cls, values: Iterable[float]) -> "ProcessParameters":
        """Build parameters from a vector ordered like :data:`PARAMETER_NAMES`."""
        values = np.asarray(list(values), dtype=float)
        if values.shape != (len(PARAMETER_NAMES),):
            raise ValueError(
                f"expected {len(PARAMETER_NAMES)} parameter values, got shape {values.shape}"
            )
        return cls(**dict(zip(PARAMETER_NAMES, values.tolist())))

    def perturbed(self, deltas: Dict[str, float]) -> "ProcessParameters":
        """Return a copy with additive ``deltas`` applied to named parameters."""
        unknown = set(deltas) - set(PARAMETER_NAMES)
        if unknown:
            raise ValueError(f"unknown process parameters: {sorted(unknown)}")
        updates = {name: getattr(self, name) + delta for name, delta in deltas.items()}
        return replace(self, **updates)

    def shifted(self, shift: "OperatingPointShift") -> "ProcessParameters":
        """Apply an operating-point shift (relative, per parameter)."""
        updates = {
            name: getattr(self, name) * (1.0 + shift.relative.get(name, 0.0))
            for name in PARAMETER_NAMES
        }
        return replace(self, **updates)

    def validate(self) -> "ProcessParameters":
        """Sanity-check physical plausibility; raise ``ValueError`` otherwise."""
        if not 0.1 <= self.vth_n <= 1.5 or not 0.1 <= self.vth_p <= 1.5:
            raise ValueError(f"threshold voltages out of range: {self.vth_n}, {self.vth_p}")
        if self.mobility_n <= 0 or self.mobility_p <= 0:
            raise ValueError("mobilities must be positive")
        if self.tox <= 0 or self.leff <= 0 or self.cpar <= 0:
            raise ValueError("tox, leff and cpar must be positive")
        return self


@dataclass(frozen=True)
class OperatingPointShift:
    """A systematic drift of the fab operating point, per parameter.

    ``relative['vth_n'] = -0.04`` means NMOS thresholds run 4 % low compared
    to the reference deck.  This models the paper's central obstacle: Spice
    decks are updated infrequently, so the simulated nominal disagrees with
    the silicon the foundry actually ships.
    """

    relative: Dict[str, float]

    def __post_init__(self):
        unknown = set(self.relative) - set(PARAMETER_NAMES)
        if unknown:
            raise ValueError(f"unknown process parameters in shift: {sorted(unknown)}")

    @classmethod
    def none(cls) -> "OperatingPointShift":
        """A no-op shift (silicon exactly matches the deck)."""
        return cls(relative={})

    @classmethod
    def typical_drift(cls, scale: float = 1.0) -> "OperatingPointShift":
        """A representative operating-point drift, scaled by ``scale``.

        ``scale = 1`` is a three-die-sigma move along the process *speed*
        direction (lower thresholds, higher mobility, thinner oxide — the
        line has been tuned for speed since the deck was frozen), plus the
        correlated back-end capacitance component.  Three sigmas defeats a
        simulation-only trusted region (boundaries B1/B2) while remaining a
        drift that PCM measurements can anchor: the parameter ratios match
        the speed factor of
        :func:`~repro.process.variation.default_variation_350nm`, so PCMs
        and fingerprints move consistently with their simulated relation.
        """
        return cls(
            relative={
                "vth_n": -0.051 * scale,
                "vth_p": -0.051 * scale,
                "mobility_n": +0.057 * scale,
                "mobility_p": +0.057 * scale,
                "tox": -0.022 * scale,
                "leff": -0.031 * scale,
                "cpar": +0.016 * scale,
            }
        )

    def magnitude(self) -> float:
        """Root-mean-square relative shift over all parameters."""
        if not self.relative:
            return 0.0
        values = np.array(list(self.relative.values()), dtype=float)
        return float(np.sqrt(np.mean(values**2)))


def stack_parameters(realizations: Sequence[ProcessParameters]) -> ProcessParameters:
    """Stack realizations into one array-valued :class:`ProcessParameters`.

    The population engine (see :mod:`repro.process.population`) represents a
    whole device population as a single ``ProcessParameters`` whose fields
    are ``(n,)`` float arrays.  Because every compact-model expression in
    :mod:`repro.circuits` is a chain of elementwise ufuncs on these fields,
    the same code evaluates one die (scalar fields) or a population (array
    fields) with bit-identical per-element results.
    """
    realizations = list(realizations)
    if not realizations:
        raise ValueError("cannot stack an empty parameter sequence")
    fields = {
        name: np.array([getattr(p, name) for p in realizations], dtype=float)
        for name in PARAMETER_NAMES
    }
    return ProcessParameters(**fields)


def broadcast_parameters(params: ProcessParameters, n: int) -> ProcessParameters:
    """Replicate scalar parameters into an ``(n,)`` array-valued stack."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    fields = {
        name: np.full(n, float(getattr(params, name)), dtype=float)
        for name in PARAMETER_NAMES
    }
    return ProcessParameters(**fields)


def parameters_at(params: ProcessParameters, index: int) -> ProcessParameters:
    """Extract one device's scalar parameters from an array-valued stack.

    Scalar fields (e.g. an inactive variation component left unperturbed)
    are passed through unchanged.
    """
    fields = {}
    for name in PARAMETER_NAMES:
        value = getattr(params, name)
        fields[name] = float(value[index]) if np.ndim(value) > 0 else float(value)
    return ProcessParameters(**fields)


def nominal_350nm() -> ProcessParameters:
    """The nominal operating point of the synthetic 350 nm technology."""
    return ProcessParameters().validate()
