"""A1 — ablation: adaptive-KDE alpha and synthetic volume M' for B5.

Regenerates the tail-modeling sensitivity table: alpha = 0 disables the
adaptive local bandwidths (plain Silverman KDE), larger alpha widens the
tails; M' sweeps the synthetic population size of S5.
"""

from repro.experiments.ablations import ablate_kde, format_rows


def test_ablation_kde(benchmark, paper_data, bench_config):
    def run():
        return ablate_kde(
            data=paper_data,
            alphas=(0.0, 0.25, 0.5, 1.0),
            sample_sizes=(1_000, 10_000, 30_000),
            base_config=bench_config,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_rows(rows, "A1: KDE tail modeling (boundary B5)"))
    assert len(rows) == 7
    # No Trojan may escape at any setting.
    assert all(row.fp_count == 0 for row in rows)
