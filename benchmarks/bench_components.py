"""A6 — component throughput: the statistical kernels of the pipeline.

Times the individual substrates at the sizes the Table-1 run uses, so
regressions in any one algorithm are visible in isolation:

* adaptive Epanechnikov KDE fit + 10^4-sample draw;
* one-class SVM fit on a 1500-point whitened population;
* MARS fit on the 100-device Monte Carlo data;
* KMM weight computation (100 train x 120 test);
* full silicon-measurement campaign for one device;
* the 100-device Monte Carlo run through the batched population engine;
* vectorized AES-128 on a (2048 devices x 6 blocks) uint8 batch;
* batched B1..B5 classification of 2048 devices (the serving hot path).
"""

import numpy as np

from repro.core.datasets import train_regressions
from repro.crypto.aes import aes128_encrypt_blocks
from repro.learn.ocsvm import OneClassSvm
from repro.stats.kde import AdaptiveKde
from repro.stats.kmm import KernelMeanMatcher
from repro.testbed.campaign import FingerprintCampaign
from repro.circuits.montecarlo import MonteCarloEngine
from repro.circuits.spicemodel import default_spice_deck
from repro.silicon.foundry import Foundry


def test_kde_fit_and_sample(benchmark, paper_data):
    fingerprints = paper_data.sim_fingerprints

    def run():
        kde = AdaptiveKde(alpha=0.5).fit(fingerprints)
        return kde.sample(10_000, rng=0)

    samples = benchmark(run)
    assert samples.shape == (10_000, 6)


def test_ocsvm_fit(benchmark):
    data = np.random.default_rng(0).standard_normal((1500, 6))
    svm = benchmark(lambda: OneClassSvm(nu=0.08, seed=0).fit(data))
    assert svm.rho_ is not None


def test_mars_regression_fit(benchmark, paper_data, bench_config):
    model = benchmark(
        lambda: train_regressions(
            paper_data.sim_pcms, paper_data.sim_fingerprints, bench_config
        )
    )
    assert model.predict(paper_data.sim_pcms).shape == paper_data.sim_fingerprints.shape


def test_kmm_weights(benchmark, paper_data):
    matcher = benchmark(
        lambda: KernelMeanMatcher(B=10.0).fit(paper_data.sim_pcms, paper_data.dutt_pcms)
    )
    assert matcher.weights.shape[0] == paper_data.sim_pcms.shape[0]


def test_device_measurement(benchmark):
    deck = default_spice_deck()
    campaign = FingerprintCampaign.random_stimuli(nm=6, seed=0, noisy_bench=False)
    foundry = Foundry(deck_nominal=deck.nominal, variation=deck.variation, seed=0)
    die = foundry.fabricate_lot(1)[0]

    device = benchmark(lambda: campaign.measure_device(die))
    assert device.fingerprint.shape == (6,)


def test_mc_run_batched(benchmark):
    """The batched population engine at the gated fixture size."""
    deck = default_spice_deck()
    campaign = FingerprintCampaign.random_stimuli(nm=6, seed=0, noisy_bench=False)
    engine = MonteCarloEngine(deck, campaign, numerical_noise=0.0015)

    result = benchmark(lambda: engine.run(100, seed=0, engine="batched"))
    assert result.pcms.shape[0] == 100
    assert result.fingerprints.shape == (100, 6)


def test_aes_batch(benchmark):
    """Vectorized AES-128 over a (devices x plaintexts x 16) uint8 batch."""
    rng = np.random.default_rng(0)
    key = rng.bytes(16)
    blocks = rng.integers(0, 256, size=(2048, 6, 16), dtype=np.uint8)

    cipher = benchmark(lambda: aes128_encrypt_blocks(key, blocks))
    assert cipher.shape == blocks.shape
    assert cipher.dtype == np.uint8


def test_classify_batch(benchmark, paper_detector, paper_data):
    """Serving hot path: one validated batch against all five boundaries."""
    reps = -(-2048 // paper_data.dutt_fingerprints.shape[0])
    batch = np.tile(paper_data.dutt_fingerprints, (reps, 1))[:2048]

    verdicts = benchmark(lambda: paper_detector.classify_batch(batch))
    assert set(verdicts) == {"B1", "B2", "B3", "B4", "B5"}
    assert all(v.shape == (2048,) for v in verdicts.values())


def test_mars_forward_pass(benchmark):
    from repro.learn.mars import MarsRegression

    rng = np.random.default_rng(0)
    x = rng.uniform(-2.0, 2.0, size=(400, 6))
    y = (np.abs(x[:, 0]) + np.maximum(0.0, x[:, 1]) - 0.5 * x[:, 2]
         + 0.1 * rng.standard_normal(400))
    model = MarsRegression(max_terms=21)

    basis, design, sse = benchmark(lambda: model._forward_pass(x, y))
    assert len(basis) >= 3
    assert design.shape[0] == 400
