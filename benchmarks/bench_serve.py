"""Closed-loop load generator for the Trojan-screening service.

Fits a detector on the small fixture (12 chips, 40 Monte Carlo devices),
exports it as a ``repro-bundle-v1``, serves it over HTTP on an ephemeral
port, and drives it with ``--clients`` concurrent closed-loop clients
(each sends its next request the moment the previous response lands).
Reports sustained throughput in devices/second plus request-latency
p50/p95/p99, and exits non-zero when throughput lands below
``--min-throughput`` — the serving analogue of the component-timing gate
in ``bench_report.py``::

    python benchmarks/bench_serve.py --min-throughput 5000

The default workload (8 clients x 64 devices/request, micro-batching on)
is the acceptance configuration: a batched screening service on the small
fixture must sustain at least 5000 devices/second.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from typing import List, Optional

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.core.config import DetectorConfig
from repro.core.pipeline import GoldenChipFreeDetector
from repro.experiments.platformcfg import PlatformConfig, generate_experiment_data
from repro.serve.bundle import export_bundle
from repro.serve.client import ScoringClient
from repro.serve.server import DetectorServer


def build_fixture(devices_per_request: int):
    """Small-fixture detector + a request-sized fingerprint batch."""
    data = generate_experiment_data(PlatformConfig(n_chips=12, n_monte_carlo=40,
                                                  seed=5))
    detector = GoldenChipFreeDetector(
        DetectorConfig(kde_samples=2000, svm_max_training_samples=400, seed=11)
    )
    detector.fit_premanufacturing(data.sim_pcms, data.sim_fingerprints)
    detector.fit_silicon(data.dutt_pcms)
    reps = -(-devices_per_request // data.dutt_fingerprints.shape[0])
    batch = np.tile(data.dutt_fingerprints, (reps, 1))[:devices_per_request]
    return detector, batch


def run_load(url: str, batch: np.ndarray, clients: int, duration: float,
             boundaries: Optional[List[str]] = None) -> dict:
    """Drive the server with closed-loop clients; returns the measurements."""
    latencies: List[float] = []
    devices = [0]
    errors: List[BaseException] = []
    lock = threading.Lock()
    stop_at = time.perf_counter() + duration

    def client_loop():
        client = ScoringClient(url, timeout=60.0)
        local_latencies = []
        local_devices = 0
        try:
            while time.perf_counter() < stop_at:
                start = time.perf_counter()
                result = client.score(batch, boundaries=boundaries)
                local_latencies.append(time.perf_counter() - start)
                local_devices += result.n_devices
        except BaseException as error:
            with lock:
                errors.append(error)
            return
        with lock:
            latencies.extend(local_latencies)
            devices[0] += local_devices

    started = time.perf_counter()
    threads = [threading.Thread(target=client_loop) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    if not latencies:
        raise RuntimeError("no request completed within the measurement window")
    quantiles = np.percentile(np.asarray(latencies) * 1e3, [50, 95, 99])
    return {
        "requests": len(latencies),
        "devices": devices[0],
        "elapsed_s": elapsed,
        "throughput_dev_s": devices[0] / elapsed,
        "latency_ms": {
            "p50": float(quantiles[0]),
            "p95": float(quantiles[1]),
            "p99": float(quantiles[2]),
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent closed-loop clients")
    parser.add_argument("--devices-per-request", type=int, default=64,
                        help="fingerprints per score request")
    parser.add_argument("--duration", type=float, default=3.0,
                        help="measurement window in seconds")
    parser.add_argument("--warmup", type=float, default=0.5,
                        help="untimed warm-up window in seconds")
    parser.add_argument("--boundary", action="append", default=None,
                        help="score only these boundaries (repeatable; "
                             "default: all five)")
    parser.add_argument("--max-batch", type=int, default=256,
                        help="server-side micro-batch size cap")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="server-side straggler window")
    parser.add_argument("--min-throughput", type=float, default=None,
                        help="exit 1 when devices/s lands below this gate")
    parser.add_argument("--output", type=str, default=None,
                        help="write the measurements to this JSON file")
    args = parser.parse_args(argv)

    print(f"fitting small-fixture detector "
          f"({args.devices_per_request} devices/request)...")
    detector, batch = build_fixture(args.devices_per_request)
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as scratch:
        bundle_path = os.path.join(scratch, "detector.npz")
        export_bundle(detector, bundle_path)
        with DetectorServer(bundle_path, port=0, max_batch=args.max_batch,
                            max_wait_ms=args.max_wait_ms) as server:
            ScoringClient(server.url).wait_ready()
            if args.warmup > 0:
                run_load(server.url, batch, args.clients, args.warmup,
                         boundaries=args.boundary)
            report = run_load(server.url, batch, args.clients, args.duration,
                              boundaries=args.boundary)

    report["config"] = {
        "clients": args.clients,
        "devices_per_request": args.devices_per_request,
        "duration_s": args.duration,
        "boundaries": args.boundary or ["B1", "B2", "B3", "B4", "B5"],
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
    }
    print(f"{report['requests']} requests, {report['devices']} devices "
          f"in {report['elapsed_s']:.2f} s")
    print(f"throughput: {report['throughput_dev_s']:,.0f} devices/s")
    print("latency:    p50 {p50:.2f} ms  p95 {p95:.2f} ms  p99 {p99:.2f} ms"
          .format(**report["latency_ms"]))

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.min_throughput is not None:
        if report["throughput_dev_s"] < args.min_throughput:
            print(f"FAIL: {report['throughput_dev_s']:,.0f} devices/s below "
                  f"the {args.min_throughput:,.0f} devices/s gate",
                  file=sys.stderr)
            return 1
        print(f"gate passed: >= {args.min_throughput:,.0f} devices/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
