"""A3/A5 — ablations: Monte Carlo size, PCM count and regression mode.

Regenerates the design-space tables: how many simulated golden devices the
pre-manufacturing stage needs, whether a second PCM helps, and whether the
consistent latent-gain regression matters compared to the paper-literal
independent per-fingerprint MARS models.
"""

from repro.experiments.ablations import (
    ablate_design,
    ablate_regression_mode,
    format_rows,
)


def test_ablation_design(benchmark, bench_config):
    def run():
        return ablate_design(
            n_monte_carlo=(25, 50, 100),
            pcm_counts=(1, 2),
            base_config=bench_config,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_rows(rows, "A3: Monte Carlo size / PCM count (boundary B5)"))
    assert len(rows) == 5
    assert all(row.fp_count == 0 for row in rows)


def test_ablation_regression_mode(benchmark, paper_data, bench_config):
    rows = benchmark.pedantic(
        lambda: ablate_regression_mode(data=paper_data, base_config=bench_config),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rows(rows, "A5: regression mode (boundary B5)"))
    by_label = {row.label: row for row in rows}
    latent = by_label["B5 with latent_gain regression"]
    independent = by_label["B5 with independent regression"]
    # The consistent latent-gain regression is the reason B5 admits the
    # Trojan-free devices; independent per-output fits must not beat it.
    assert latent.fn_count <= independent.fn_count
