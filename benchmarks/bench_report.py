#!/usr/bin/env python
"""Standalone benchmark report + regression gate (see repro.benchreport).

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py --output benchmarks/BENCH_components.json
    PYTHONPATH=src python benchmarks/bench_report.py --compare benchmarks/BENCH_components.json

or ``make bench`` for the compare form.
"""

import sys

from repro.benchreport import main

if __name__ == "__main__":
    sys.exit(main())
