"""A7 — ablations: one-class classifier choice and tail-modeling family.

Regenerates two comparison tables:

* the paper's one-class SVM vs a Mahalanobis elliptic envelope as the
  trusted-region learner (the paper leaves the classifier choice open);
* the paper's adaptive Epanechnikov KDE vs a generalized-Pareto radial
  tail model as the S4 -> S5 enhancement.
"""

from repro.experiments.ablations import (
    ablate_boundary_method,
    ablate_tail_enhancer,
    format_rows,
)


def test_ablation_boundary_method(benchmark, paper_data, bench_config):
    rows = benchmark.pedantic(
        lambda: ablate_boundary_method(data=paper_data, base_config=bench_config),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rows(rows, "A7a: one-class classifier for B5"))
    assert len(rows) == 2
    assert all(row.fp_count == 0 for row in rows)


def test_ablation_tail_enhancer(benchmark, paper_data, bench_config):
    rows = benchmark.pedantic(
        lambda: ablate_tail_enhancer(data=paper_data, base_config=bench_config),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rows(rows, "A7b: tail-modeling family for S5"))
    assert len(rows) == 2
    assert all(row.fp_count == 0 for row in rows)
