"""A4 — ablation: process-drift sweep.

Regenerates the drift sensitivity series: as the foundry operating point
drifts away from the Spice deck, the simulation-only boundary B1 collapses
(FN -> all) while the golden chip-free pipeline B5 stays anchored through
the PCMs.
"""

from repro.experiments.ablations import ablate_drift, format_rows


def test_ablation_drift(benchmark, bench_config):
    def run():
        return ablate_drift(drift_scales=(0.0, 0.25, 0.45, 0.7), base_config=bench_config)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_rows(series["B1"], "A4: drift sweep — simulation-only boundary B1"))
    print()
    print(format_rows(series["B5"], "A4: drift sweep — golden chip-free boundary B5"))

    # At the nominal drift (0.45) B1 must be far worse than B5.
    b1_at_drift = next(r for r in series["B1"] if "0.45" in r.label)
    b5_at_drift = next(r for r in series["B5"] if "0.45" in r.label)
    assert b1_at_drift.fn_count > b5_at_drift.fn_count
