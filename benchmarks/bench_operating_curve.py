"""ROC extension — threshold-free quality of the golden chip-free boundary.

Sweeps the decision threshold of B5 and of the golden-chip reference over
the 120 DUTTs.  Regenerates the operating-curve summary (AUC; best FN at
zero Trojan escapes) for both, quantifying how much separation quality the
golden chip-free construction gives up.
"""

from repro.core.golden import GoldenReferenceDetector
from repro.experiments.roc import operating_curve
from repro.experiments.table1 import run_table1


def test_operating_curves(benchmark, paper_data, bench_config):
    result = run_table1(detector_config=bench_config, data=paper_data)
    b5 = result.detector.boundaries["B5"]
    golden = GoldenReferenceDetector(bench_config).fit(
        paper_data.trojan_free_fingerprints()
    )

    def run():
        return (
            operating_curve(b5, paper_data.dutt_fingerprints, paper_data.infested),
            operating_curve(
                golden.region, paper_data.dutt_fingerprints, paper_data.infested
            ),
        )

    curve_b5, curve_golden = benchmark.pedantic(run, rounds=2, iterations=1)
    print()
    print("golden chip-free (B5):")
    print(curve_b5.format())
    print("golden-chip reference:")
    print(curve_golden.format())

    # Both must separate Trojans from clean devices essentially perfectly.
    assert curve_b5.auc > 0.99
    assert curve_golden.auc > 0.99
    assert curve_b5.natural_point.fp_count == 0
