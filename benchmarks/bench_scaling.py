#!/usr/bin/env python
"""Population-size scaling of the Monte Carlo engines (report only).

Times ``MonteCarloEngine.run`` at growing ``n_mc`` for both engines and
prints a wall-clock table with the batched-over-loop speedup:

    PYTHONPATH=src python benchmarks/bench_scaling.py
    PYTHONPATH=src python benchmarks/bench_scaling.py --sizes 1000,10000,100000

or ``make bench-scaling``.  This bench is intentionally *not* a regression
gate: the interesting output is the scaling shape (the paper's method
sharpens with population size, so the question is how far ``n_mc`` can grow
before simulation dominates again), and multi-minute loop-engine runs at
10^5 devices have no place in CI.  ``--max-loop-seconds`` caps the loop
engine: sizes whose *predicted* loop time (linear extrapolation from the
largest measured size) exceeds the cap report the extrapolation, marked
``~``, instead of running for minutes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_scaling(sizes: List[int], max_loop_seconds: float,
                repeats: int = 2) -> List[dict]:
    """Measure both engines at every size; returns one row dict per size."""
    from repro.circuits.montecarlo import MonteCarloEngine
    from repro.circuits.spicemodel import default_spice_deck
    from repro.testbed.campaign import FingerprintCampaign

    campaign = FingerprintCampaign.random_stimuli(nm=6, seed=0, noisy_bench=False)
    engine = MonteCarloEngine(default_spice_deck(), campaign,
                              numerical_noise=0.0015)
    # Warm both code paths (imports, table construction, caches).
    engine.run(50, seed=0, engine="loop")
    engine.run(50, seed=0, engine="batched")

    rows = []
    loop_rate: Optional[float] = None  # seconds per device, last measured
    for n in sizes:
        batched = min(
            _time_once(lambda: engine.run(n, seed=0, engine="batched"))
            for _ in range(repeats)
        )
        loop_extrapolated = False
        if loop_rate is not None and loop_rate * n > max_loop_seconds:
            loop = loop_rate * n
            loop_extrapolated = True
        else:
            loop = min(
                _time_once(lambda: engine.run(n, seed=0, engine="loop"))
                for _ in range(repeats)
            )
            loop_rate = loop / n
        rows.append({
            "n_mc": n,
            "loop_seconds": loop,
            "loop_extrapolated": loop_extrapolated,
            "batched_seconds": batched,
            "speedup": loop / batched,
        })
    return rows


def render_table(rows: List[dict]) -> str:
    lines = [
        f"{'n_mc':>8} | {'loop':>12} | {'batched':>12} | {'speedup':>8}",
        "-" * 50,
    ]
    for row in rows:
        marker = "~" if row["loop_extrapolated"] else " "
        lines.append(
            f"{row['n_mc']:>8} | {marker}{row['loop_seconds']:>10.3f} s | "
            f"{row['batched_seconds']:>10.3f} s | {row['speedup']:>7.1f}x"
        )
    if any(row["loop_extrapolated"] for row in rows):
        lines.append("(~ = loop time extrapolated from the largest measured size)")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--sizes", type=str, default="1000,10000",
        help="comma-separated n_mc values (default: 1000,10000)",
    )
    parser.add_argument(
        "--max-loop-seconds", type=float, default=60.0,
        help="extrapolate (not run) the loop engine past this predicted "
             "wall time",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timing repeats per (engine, size); best is reported",
    )
    args = parser.parse_args(argv)
    sizes = [int(token) for token in args.sizes.split(",") if token.strip()]
    if not sizes or any(n <= 0 for n in sizes):
        parser.error(f"--sizes must be positive integers, got {args.sizes!r}")

    rows = run_scaling(sorted(sizes), args.max_loop_seconds,
                       repeats=args.repeats)
    print(render_table(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
