"""F4 — reproduce Figure 4: PCA geometry of the fabricated and S1..S5 sets.

The paper shows six 3-D scatter plots: the fabricated devices (a) and the
synthetic golden populations S1..S5 (b)-(f), projected on the top three
principal components.  The quantitative story reproduced here:

* S1/S2 (simulation-only) sit far from the Trojan-free silicon cloud;
* S3 (PCM-anchored) moves close; S4 (KMM) and S5 (KDE) refine;
* S5 covers the Trojan-free cloud while none of the sets covers Trojans.
"""

from repro.experiments.figure4 import run_figure4


def test_figure4_geometry(benchmark, paper_data, bench_config):
    """Time the Figure-4 analysis and print every panel's geometry."""

    def run():
        return run_figure4(detector_config=bench_config, data=paper_data)

    figure = benchmark.pedantic(run, rounds=2, iterations=1)
    print()
    print(figure.format())

    # The qualitative content of the paper's panels:
    assert figure.explained_variance_ratio[0] > 0.9
    assert figure.panels["S1"].centroid_distance_tf > 2.0
    assert figure.panels["S3"].centroid_distance_tf < figure.panels["S1"].centroid_distance_tf
    assert figure.panels["S5"].tf_coverage > 0.8
    assert figure.panels["S5"].ti_coverage < 0.05
