"""Shared benchmark fixtures.

The silicon population is generated once per session so individual benches
time the analysis stages, not the (identical) data synthesis.  Every bench
prints the table/figure rows it regenerates, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the paper's evaluation artifacts alongside the timings.
"""

from __future__ import annotations

import pytest

from repro.core.config import DetectorConfig
from repro.experiments.platformcfg import PlatformConfig, generate_experiment_data

#: Tail-enhanced set size used by the benches.  The paper's 10^5 also works
#: (the boundary learner subsamples); 3x10^4 keeps the full suite fast.
BENCH_KDE_SAMPLES = 30_000


@pytest.fixture(scope="session")
def paper_data():
    """The paper-sized experiment: 100 MC devices, 40 chips x 3 versions."""
    return generate_experiment_data(PlatformConfig())


@pytest.fixture()
def bench_config():
    """Detector configuration used by the benches."""
    return DetectorConfig(kde_samples=BENCH_KDE_SAMPLES)


@pytest.fixture(scope="session")
def paper_detector(paper_data):
    """A detector fitted once on the paper-sized experiment (all of B1..B5)."""
    from repro.core.pipeline import GoldenChipFreeDetector

    detector = GoldenChipFreeDetector(DetectorConfig(kde_samples=BENCH_KDE_SAMPLES))
    detector.fit_premanufacturing(paper_data.sim_pcms, paper_data.sim_fingerprints)
    detector.fit_silicon(paper_data.dutt_pcms)
    return detector
