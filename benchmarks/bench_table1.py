"""T1 — reproduce Table 1: FP/FN of boundaries B1..B5 over 120 DUTTs.

Paper numbers (40 TF / 80 TI devices):

    S1: FP 0/80  FN 40/40        S4: FP 0/80  FN 18/40
    S2: FP 0/80  FN 40/40        S5: FP 0/80  FN  3/40
    S3: FP 0/80  FN 24/40

Expected *shape* from this reproduction (synthetic silicon): FP = 0
everywhere; FN(B1), FN(B2) near-total; FN(B3) >= FN(B4) >= FN(B5); FN(B5)
near-golden.  See EXPERIMENTS.md for the measured numbers and deviations.
"""

from repro.experiments.table1 import run_table1


def test_table1_full_pipeline(benchmark, paper_data, bench_config):
    """Time the full three-stage pipeline and print the reproduced table."""

    def run():
        return run_table1(detector_config=bench_config, data=paper_data)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    print()
    print(result.format())
    print(f"matches paper shape: {result.matches_paper_shape()}")
    assert result.matches_paper_shape()


def test_table1_trojan_test_stage(benchmark, paper_data, bench_config):
    """Time only the deployment-time stage: classifying 120 DUTTs on B5."""
    result = run_table1(detector_config=bench_config, data=paper_data)
    detector = result.detector

    verdicts = benchmark(
        lambda: detector.classify(paper_data.dutt_fingerprints, boundary="B5")
    )
    assert verdicts.shape == (120,)
