"""A2 — ablation: KMM vs naive PCM-population shifts for boundary B5.

Regenerates the covariate-shift table: the same regression + KDE + boundary
machinery fed with (i) unshifted simulated PCMs, (ii) plain mean-shifted
PCMs, (iii) the paper's kernel-mean-matching importance resample.
"""

from repro.experiments.ablations import ablate_kmm, format_rows


def test_ablation_kmm(benchmark, paper_data, bench_config):
    rows = benchmark.pedantic(
        lambda: ablate_kmm(data=paper_data, base_config=bench_config),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rows(rows, "A2: PCM population calibration (boundary B5)"))
    assert len(rows) == 3
    by_label = {row.label: row for row in rows}
    # Calibrated variants must not be worse than no calibration at all.
    assert by_label["B5 via KMM (paper)"].fn_count <= by_label["B5 via no shift"].fn_count
