"""End-to-end HTTP tests: the screening service over a real socket.

One bundle-backed :class:`DetectorServer` on an ephemeral port serves the
whole module; every test talks to it through the stdlib-only
:class:`ScoringClient`.  This module is also the ``make smoke-serve``
target: it proves the full export → serve → score loop, the structured
error contract, and correctness under concurrent clients.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.pipeline import BOUNDARY_NAMES
from repro.serve.bundle import export_bundle, load_bundle
from repro.serve.client import ScoringClient, ServerError
from repro.serve.server import DetectorServer


@pytest.fixture(scope="module")
def bundle_path(fitted_detector, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "detector.npz"
    export_bundle(fitted_detector, path)
    return str(path)


@pytest.fixture(scope="module")
def server(bundle_path):
    with DetectorServer(bundle_path, port=0, max_wait_ms=1.0) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    client = ScoringClient(server.url, timeout=30.0)
    client.wait_ready(timeout=10.0)
    return client


def _post_raw(url: str, body: bytes, content_type="application/json"):
    request = urllib.request.Request(
        url + "/v1/score", data=body,
        headers={"Content-Type": content_type}, method="POST",
    )
    return urllib.request.urlopen(request, timeout=10)


class TestEndpoints:
    def test_healthz(self, client):
        assert client.health() == {"status": "ok"}

    def test_readyz_reports_bundle(self, server, client):
        reply = client._request("GET", "/readyz")
        assert reply["status"] == "ready"
        assert reply["bundle"]["digest"] == server.bundle.digest
        assert reply["bundle"]["boundaries"] == list(BOUNDARY_NAMES)

    def test_metricz_counts_scoring(self, server, client, experiment_data):
        before = client.metrics()["counters"].get("serve.devices_scored", 0)
        client.score(experiment_data.dutt_fingerprints[:5])
        metrics = client.metrics()
        assert metrics["counters"]["serve.devices_scored"] == before + 5
        assert metrics["bundle"]["digest"] == server.bundle.digest
        assert metrics["bundle"]["schema_version"] == 1
        assert "serve.queue_depth" in metrics["gauges"]

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServerError) as err:
            client._request("GET", "/v2/nothing")
        assert err.value.status == 404
        assert err.value.code == "not_found"


class TestScoring:
    def test_single_device_matches_detector(self, client, fitted_detector,
                                            experiment_data):
        device = experiment_data.dutt_fingerprints[0]
        result = client.score(device, boundaries=["B5"])
        assert result.n_devices == 1
        expected = fitted_detector.classify(device[None, :], boundary="B5")
        assert np.array_equal(result.verdicts["B5"], expected)

    def test_batch_matches_detector_exactly(self, client, fitted_detector,
                                            experiment_data):
        """JSON floats round-trip exactly: wire scores == in-process scores."""
        fingerprints = experiment_data.dutt_fingerprints
        result = client.score(fingerprints)
        expected = fitted_detector.decision_scores_batch(fingerprints)
        for name in BOUNDARY_NAMES:
            assert np.array_equal(result.scores[name], expected[name]), name
            assert np.array_equal(result.verdicts[name],
                                  expected[name] >= 0.0), name

    def test_boundary_subset(self, client, experiment_data):
        result = client.score(experiment_data.dutt_fingerprints[:2],
                              boundaries=["B3", "B5"])
        assert set(result.scores) == {"B3", "B5"}

    def test_concurrent_clients(self, server, fitted_detector,
                                experiment_data):
        """8 clients hammering the server coalesce without cross-talk."""
        fingerprints = experiment_data.dutt_fingerprints
        expected = fitted_detector.decision_scores_batch(fingerprints)
        n = fingerprints.shape[0]
        slices = [(i % n, fingerprints[i % n:i % n + 2]) for i in range(8)]
        results: dict = {}
        errors: list = []

        def worker(index, offset, block):
            try:
                local = ScoringClient(server.url, timeout=30.0)
                for _ in range(3):
                    results[(index, offset)] = local.score(block)
            except BaseException as error:  # pragma: no cover - test plumbing
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i, o, b))
                   for i, (o, b) in enumerate(slices)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        # Coalesced batches go through BLAS with a different stacked shape,
        # which may perturb the last ULP — hence allclose, not array_equal.
        for (index, offset), result in results.items():
            width = result.n_devices
            for name in BOUNDARY_NAMES:
                np.testing.assert_allclose(
                    result.scores[name], expected[name][offset:offset + width],
                    rtol=1e-9, atol=1e-12, err_msg=f"{index}/{offset}/{name}",
                )


class TestErrorContract:
    def test_nan_payload_is_structured_400(self, client, experiment_data):
        poisoned = experiment_data.dutt_fingerprints[:2].copy()
        poisoned[0, 0] = np.nan
        with pytest.raises(ServerError) as err:
            client.score(poisoned)
        assert err.value.status == 400
        assert err.value.code == "non_finite"

    def test_wrong_width_is_structured_400(self, client, experiment_data):
        narrow = experiment_data.dutt_fingerprints[:2, :-1]
        with pytest.raises(ServerError) as err:
            client.score(narrow)
        assert err.value.status == 400
        assert err.value.code == "bad_width"

    def test_non_numeric_is_structured_400(self, server):
        body = json.dumps({"fingerprints": [["a", "b"]]}).encode()
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_raw(server.url, body)
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"]["code"] == "bad_dtype"

    def test_unknown_boundary_is_structured_400(self, client,
                                                experiment_data):
        with pytest.raises(ServerError) as err:
            client.score(experiment_data.dutt_fingerprints[:1],
                         boundaries=["B9"])
        assert err.value.status == 400
        assert err.value.code == "unknown_boundary"

    def test_oversized_batch_is_structured_400(self, bundle_path,
                                               experiment_data):
        with DetectorServer(load_bundle(bundle_path), port=0,
                            max_request_devices=8) as capped:
            local = ScoringClient(capped.url)
            local.wait_ready()
            with pytest.raises(ServerError) as err:
                local.score(experiment_data.dutt_fingerprints[:9])
        assert err.value.status == 400
        assert err.value.code == "too_large"

    def test_unparseable_body_is_bad_json(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_raw(server.url, b"{not json")
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"]["code"] == "bad_json"

    def test_missing_fingerprints_is_bad_request(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_raw(server.url, json.dumps({"devices": []}).encode())
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"]["code"] == "bad_request"

    def test_bad_boundaries_type_is_bad_request(self, server,
                                                experiment_data):
        body = json.dumps({
            "fingerprints": experiment_data.dutt_fingerprints[:1].tolist(),
            "boundaries": "B5",
        }).encode()
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_raw(server.url, body)
        assert err.value.code == 400

    def test_empty_body_is_rejected(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_raw(server.url, b"")
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"]["code"] == "empty_body"

    def test_server_survives_abuse(self, client, experiment_data):
        """After every bad payload above, the server still scores correctly."""
        result = client.score(experiment_data.dutt_fingerprints[:3])
        assert result.n_devices == 3


class TestLifecycle:
    def test_start_stop_cycle(self, bundle_path, experiment_data):
        server = DetectorServer(load_bundle(bundle_path), port=0)
        server.start()
        try:
            local = ScoringClient(server.url)
            local.wait_ready()
            assert local.score(experiment_data.dutt_fingerprints[:1]).n_devices == 1
        finally:
            server.stop()
        with pytest.raises(Exception):
            ScoringClient(server.url, timeout=1.0).health()
