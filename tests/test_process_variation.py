"""Hierarchical variation model: magnitudes, correlation, determinism."""

import numpy as np
import pytest

from repro.process.parameters import nominal_350nm
from repro.process.variation import VariationModel, default_variation_350nm


def _sample_many(draw, n=600, seed=0):
    rng = np.random.default_rng(seed)
    return np.array([draw(rng).as_array() for _ in range(n)])


class TestValidation:
    def test_rejects_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown"):
            VariationModel(die_sigma={"bogus": 0.1})

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError, match="non-negative"):
            VariationModel(die_sigma={"vth_n": -0.1})

    def test_rejects_loading_out_of_range(self):
        with pytest.raises(ValueError, match="speed_loading"):
            VariationModel(speed_loading={"vth_n": 1.5})


class TestSampling:
    def test_die_sigma_magnitude(self):
        model = default_variation_350nm()
        base = nominal_350nm()
        samples = _sample_many(lambda r: model.sample_die(base, r))
        rel_std = samples[:, 0].std() / base.vth_n
        assert rel_std == pytest.approx(model.die_sigma["vth_n"], rel=0.15)

    def test_zero_sigma_parameter_is_untouched(self):
        model = VariationModel(die_sigma={"vth_n": 0.02})
        base = nominal_350nm()
        out = model.sample_die(base, 0)
        assert out.tox == base.tox
        assert out.vth_n != base.vth_n

    def test_speed_factor_correlates_parameters(self):
        model = default_variation_350nm()
        base = nominal_350nm()
        samples = _sample_many(lambda r: model.sample_die(base, r))
        vth = samples[:, 0]
        mob = samples[:, 2]
        corr = np.corrcoef(vth, mob)[0, 1]
        # loadings are -0.97 and +0.97 -> strong anti-correlation expected.
        assert corr < -0.8

    def test_within_die_is_uncorrelated(self):
        model = default_variation_350nm()
        base = nominal_350nm()
        samples = _sample_many(lambda r: model.sample_structure(base, r))
        corr = np.corrcoef(samples[:, 0], samples[:, 2])[0, 1]
        assert abs(corr) < 0.2

    def test_determinism_given_seed(self):
        model = default_variation_350nm()
        base = nominal_350nm()
        assert model.sample_die(base, 5) == model.sample_die(base, 5)

    def test_total_die_sigma_combines_lot_and_die(self):
        model = default_variation_350nm()
        expected = np.hypot(model.lot_sigma["vth_n"], model.die_sigma["vth_n"])
        assert model.total_die_sigma("vth_n") == pytest.approx(expected)

    def test_lot_then_die_compounds_spread(self):
        model = default_variation_350nm()
        base = nominal_350nm()

        def draw(rng):
            return model.sample_die(model.sample_lot(base, rng), rng)

        samples = _sample_many(draw)
        rel_std = samples[:, 0].std() / base.vth_n
        assert rel_std == pytest.approx(model.total_die_sigma("vth_n"), rel=0.15)
