"""Tracing core: nesting, attributes, no-op cost, cross-process collection.

Tracing is session-global module state, so every test here tears the
session down (the ``obs_session`` fixture) — a leaked enabled tracer would
silently change the timing profile of unrelated tests.
"""

import time
from unittest import mock

import numpy as np
import pytest

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.obs.trace import span
from repro.stats.kde import AdaptiveKde
from repro.utils.parallel import parallel_map


@pytest.fixture()
def obs_session():
    obs.enable()
    yield
    obs.disable()


@pytest.fixture(autouse=True)
def _always_clean():
    yield
    if obs.enabled():
        obs.disable()


class TestSpanBasics:
    def test_nesting_builds_parent_links(self, obs_session):
        with span("outer"):
            with span("inner"):
                pass
            with span("inner2"):
                pass
        spans = {s.name: s for s in trace.finished_spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner2"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None

    def test_children_finish_before_parents(self, obs_session):
        with span("outer"):
            with span("inner"):
                pass
        names = [s.name for s in trace.finished_spans()]
        assert names == ["inner", "outer"]

    def test_attributes_at_open_and_via_set(self, obs_session):
        with span("fit", n=1500) as sp:
            sp.set(bandwidth=0.25, converged=True)
        recorded = trace.finished_spans()[-1]
        assert recorded.attributes == {"n": 1500, "bandwidth": 0.25,
                                       "converged": True}

    def test_wall_and_cpu_recorded(self, obs_session):
        with span("sleepy"):
            time.sleep(0.02)
        recorded = trace.finished_spans()[-1]
        assert recorded.wall >= 0.015
        assert recorded.cpu >= 0.0
        assert recorded.start > 0

    def test_exception_records_error_and_propagates(self, obs_session):
        with pytest.raises(ValueError):
            with span("doomed"):
                raise ValueError("boom")
        recorded = trace.finished_spans()[-1]
        assert recorded.attributes["error"] == "ValueError"

    def test_round_trip_dict(self, obs_session):
        with span("fit", n=3):
            pass
        recorded = trace.finished_spans()[-1]
        clone = trace.Span.from_dict(recorded.to_dict())
        assert clone == recorded


class TestDisabledTracer:
    def test_span_is_shared_noop(self):
        assert not obs.enabled()
        first = span("a", n=1)
        second = span("b")
        assert first is second  # one shared object, no allocation
        with first as sp:
            sp.set(anything=1)
        assert trace.finished_spans() == []

    def test_disable_returns_session_spans(self):
        obs.enable()
        with span("only"):
            pass
        spans, snapshot = obs.disable()
        assert [s.name for s in spans] == ["only"]
        assert snapshot["counters"] == {}
        assert not obs.enabled()

    def test_enable_discards_previous_session(self):
        obs.enable()
        with span("stale"):
            pass
        obs.enable()
        assert trace.finished_spans() == []

    def test_disabled_overhead_is_negligible(self):
        """Disabled spans crossed by one KDE fit must cost < 5% of the fit.

        The fit is timed as-is (it already crosses its disabled
        instrumentation points); a traced run counts how many spans that
        is, and a tight loop prices one disabled crossing.  The product —
        what the instrumentation adds with tracing off — must stay under
        5% of the fit.
        """
        rng = np.random.default_rng(0)
        train = rng.standard_normal((1500, 6))
        query = rng.standard_normal((2000, 6))

        def workload():
            AdaptiveKde(alpha=0.5).fit(train).density(query)

        workload()  # warmup
        start = time.perf_counter()
        workload()
        fit_seconds = time.perf_counter() - start

        obs.enable()
        workload()
        crossings = len(obs.disable()[0])
        assert crossings > 0

        n = 20_000
        start = time.perf_counter()
        for _ in range(n):
            with span("noop", n=n):
                pass
        per_span = (time.perf_counter() - start) / n

        overhead = crossings * per_span
        assert overhead < 0.05 * fit_seconds, (
            f"{crossings} disabled spans cost {overhead * 1e6:.1f} us vs "
            f"KDE fit {fit_seconds * 1e3:.2f} ms"
        )


def _traced_square(x):
    with span("worker.unit", item=x):
        obs_metrics.counter("work.items").inc()
        obs_metrics.histogram("work.value").observe(float(x))
        return x * x


class TestPoolCollection:
    def test_worker_spans_reparent_under_dispatch_span(self, obs_session):
        with mock.patch("os.cpu_count", return_value=4):
            with span("dispatch"):
                out = parallel_map(_traced_square, list(range(8)), n_jobs=4)
        assert out == [x * x for x in range(8)]
        spans = trace.finished_spans()
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name, []).append(s)
        dispatch = by_name["dispatch"][0]
        workers = by_name["worker.unit"]
        assert len(workers) == 8
        assert all(s.parent_id == dispatch.span_id for s in workers)
        assert all(s.worker is not None for s in workers)
        # ids were remapped onto the parent counter: all unique.
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids))

    def test_worker_metrics_merge(self, obs_session):
        with mock.patch("os.cpu_count", return_value=4):
            parallel_map(_traced_square, list(range(6)), n_jobs=4)
        snapshot = obs_metrics.snapshot()
        assert snapshot["counters"]["work.items"] == 6.0
        hist = snapshot["histograms"]["work.value"]
        assert hist["count"] == 6
        assert hist["min"] == 0.0
        assert hist["max"] == 5.0

    def test_serial_path_records_same_tree_shape(self, obs_session):
        with span("dispatch"):
            parallel_map(_traced_square, list(range(4)), n_jobs=1)
        spans = trace.finished_spans()
        dispatch = next(s for s in spans if s.name == "dispatch")
        workers = [s for s in spans if s.name == "worker.unit"]
        assert len(workers) == 4
        assert all(s.parent_id == dispatch.span_id for s in workers)
        # in-process spans carry no worker pid
        assert all(s.worker is None for s in workers)

    def test_disabled_pool_payload_untouched(self):
        assert trace.wrap_pool_task(_traced_square) is _traced_square
