"""Batched population engine: bit-identity against the loop reference.

The tentpole contract of the population engine is *exactness*: for every
campaign configuration it supports, ``engine="batched"`` must reproduce the
``engine="loop"`` measurements bit for bit — same AES ciphertexts, same
mismatch draws, same analog model floats, same instrument-noise streams.
These tests pin that contract across all three design versions (TF + both
Trojans), noise-free and noisy benches, the Monte Carlo engine, and the
full synthetic experiment, plus a property test of the vectorized AES
against the scalar FIPS-197 reference.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.montecarlo import MonteCarloEngine, sample_device_population
from repro.circuits.spicemodel import default_spice_deck
from repro.crypto.aes import AES128, aes128_encrypt_blocks
from repro.experiments.platformcfg import (
    generate_experiment_data,
    rf_model_error,
)
from repro.process.parameters import (
    PARAMETER_NAMES,
    OperatingPointShift,
    parameters_at,
)
from repro.process.population import DiePopulation
from repro.rf.channel import AwgnChannel
from repro.silicon.foundry import Foundry
from repro.testbed.campaign import FingerprintCampaign
from repro.trojans.amplitude import AmplitudeModulationTrojan
from repro.trojans.frequency import FrequencyModulationTrojan
from tests.conftest import small_platform

VERSION_SWEEP = [
    (None, "TF"),
    (AmplitudeModulationTrojan(depth=0.02), "T1"),
    (FrequencyModulationTrojan(depth=0.03), "T2"),
]


def _paper_foundry(seed=0):
    deck = default_spice_deck()
    return Foundry(
        deck_nominal=deck.nominal,
        variation=deck.variation,
        shift=OperatingPointShift.typical_drift(),
        analog_model_error=rf_model_error(0.35),
        seed=seed,
    )


def _assert_device_lists_equal(batched, loop):
    assert len(batched) == len(loop)
    for b, l in zip(batched, loop):
        assert b.label == l.label
        assert b.infested == l.infested
        assert b.trojan_name == l.trojan_name
        np.testing.assert_array_equal(b.pcms, l.pcms)
        np.testing.assert_array_equal(b.fingerprint, l.fingerprint)


@pytest.fixture(scope="module")
def fabricated_dies():
    return _paper_foundry(seed=3).fabricate(10)


class TestCampaignEngineBitIdentity:
    """measure_population: batched == loop, per version, per bench."""

    @pytest.mark.parametrize("trojan,version", VERSION_SWEEP,
                             ids=[v for _, v in VERSION_SWEEP])
    def test_noise_free_bench(self, fabricated_dies, trojan, version):
        campaign = FingerprintCampaign.random_stimuli(
            nm=6, seed=11, noisy_bench=False
        )
        loop = campaign.measure_population(
            fabricated_dies, trojan=trojan, version=version, engine="loop"
        )
        batched = campaign.measure_population(
            fabricated_dies, trojan=trojan, version=version, engine="batched"
        )
        _assert_device_lists_equal(batched, loop)

    def test_noisy_bench_full_sweep(self, fabricated_dies):
        # instrument_root.spawn is stateful (each population consumes fresh
        # per-device seeds in call order), so compare two identically seeded
        # benches each running the whole TF+T1+T2 sweep with one engine.
        base = FingerprintCampaign.random_stimuli(nm=6, seed=11, noisy_bench=False)
        sweeps = {}
        for engine in ("loop", "batched"):
            bench = base.silicon_bench(seed=99)
            devices = []
            for trojan, version in VERSION_SWEEP:
                devices.extend(
                    bench.measure_population(
                        fabricated_dies, trojan=trojan, version=version,
                        engine=engine,
                    )
                )
            sweeps[engine] = devices
        _assert_device_lists_equal(sweeps["batched"], sweeps["loop"])

    def test_noisy_bench_single_population(self, fabricated_dies):
        loop = FingerprintCampaign.random_stimuli(
            nm=4, seed=2, noisy_bench=False
        ).silicon_bench(seed=7).measure_population(
            fabricated_dies, engine="loop"
        )
        batched = FingerprintCampaign.random_stimuli(
            nm=4, seed=2, noisy_bench=False
        ).silicon_bench(seed=7).measure_population(
            fabricated_dies, engine="batched"
        )
        _assert_device_lists_equal(batched, loop)

    def test_fixed_gain_channel_is_batchable(self, fabricated_dies):
        campaign = FingerprintCampaign.random_stimuli(
            nm=4, seed=5, noisy_bench=False
        )
        campaign.channel = AwgnChannel(path_gain=0.8, fading_sigma=0.0)
        assert campaign._batch_unsupported_reason() is None
        loop = campaign.measure_population(fabricated_dies, engine="loop")
        batched = campaign.measure_population(fabricated_dies, engine="batched")
        _assert_device_lists_equal(batched, loop)

    def test_fading_channel_falls_back_to_loop(self, fabricated_dies):
        campaign = FingerprintCampaign.random_stimuli(
            nm=4, seed=5, noisy_bench=False
        )
        campaign.channel = AwgnChannel(path_gain=0.8, fading_sigma=0.1, seed=123)
        assert campaign._batch_unsupported_reason() is not None
        batched = campaign.measure_population(fabricated_dies, engine="batched")
        # Equality with the loop is itself proof of the fallback: the
        # batched path cannot reproduce the stateful per-pulse fading
        # stream, so only the loop produces these exact measurements.  A
        # fresh identically-configured campaign replays that stream.
        fresh = FingerprintCampaign.random_stimuli(
            nm=4, seed=5, noisy_bench=False
        )
        fresh.channel = AwgnChannel(path_gain=0.8, fading_sigma=0.1, seed=123)
        loop = fresh.measure_population(fabricated_dies, engine="loop")
        _assert_device_lists_equal(batched, loop)

    def test_legacy_shared_stream_bench_falls_back(self, fabricated_dies):
        # A noisy bench without instrument_root is measurement-order
        # dependent; the batched request must refuse and match the loop.
        loop_bench = FingerprintCampaign.random_stimuli(
            nm=4, seed=8, noisy_bench=True
        )
        assert loop_bench._batch_unsupported_reason() is not None
        loop = loop_bench.measure_population(fabricated_dies, engine="loop")
        batched_bench = FingerprintCampaign.random_stimuli(
            nm=4, seed=8, noisy_bench=True
        )
        batched = batched_bench.measure_population(
            fabricated_dies, engine="batched"
        )
        _assert_device_lists_equal(batched, loop)

    def test_unknown_engine_rejected(self, fabricated_dies):
        campaign = FingerprintCampaign.random_stimuli(nm=4, seed=5,
                                                      noisy_bench=False)
        with pytest.raises(ValueError, match="engine"):
            campaign.measure_population(fabricated_dies, engine="gpu")


class TestMonteCarloEngineBitIdentity:
    def _engine(self, nm=6, seed=0, noise=0.0015, channel=None):
        campaign = FingerprintCampaign.random_stimuli(
            nm=nm, seed=seed, noisy_bench=False
        )
        campaign.channel = channel
        return MonteCarloEngine(default_spice_deck(), campaign,
                                numerical_noise=noise)

    def test_batched_matches_loop(self):
        engine = self._engine()
        loop = engine.run(24, seed=42, engine="loop")
        batched = engine.run(24, seed=42, engine="batched")
        np.testing.assert_array_equal(batched.pcms, loop.pcms)
        np.testing.assert_array_equal(batched.fingerprints, loop.fingerprints)

    def test_batched_matches_loop_noise_free(self):
        engine = self._engine(noise=0.0)
        loop = engine.run(16, seed=9, engine="loop")
        batched = engine.run(16, seed=9, engine="batched")
        np.testing.assert_array_equal(batched.pcms, loop.pcms)
        np.testing.assert_array_equal(batched.fingerprints, loop.fingerprints)

    def test_fading_channel_falls_back(self):
        loop = self._engine(
            channel=AwgnChannel(fading_sigma=0.05, seed=6)
        ).run(8, seed=4, engine="loop")
        batched = self._engine(
            channel=AwgnChannel(fading_sigma=0.05, seed=6)
        ).run(8, seed=4, engine="batched")
        np.testing.assert_array_equal(batched.pcms, loop.pcms)
        np.testing.assert_array_equal(batched.fingerprints, loop.fingerprints)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            self._engine().run(4, seed=0, engine="simd")

    def test_population_matches_scalar_dies(self):
        # sample_device_population consumes each per-device stream in the
        # scalar order, so the stacked die parameters and mismatch seeds are
        # bitwise the loop's.
        engine = self._engine()
        seeds = np.random.SeedSequence(77).spawn(6)
        population = sample_device_population(engine.deck, seeds)
        for i, seed in enumerate(seeds):
            rng = np.random.default_rng(seed)
            die = engine.deck.sample_die(rng)
            assert population.label(i) == f"MC{i}"
            scalar = parameters_at(population.die_params, i)
            for name in PARAMETER_NAMES:
                assert getattr(scalar, name) == getattr(die, name)
            assert int(population.mismatch_seeds[i]) == int(
                rng.integers(0, 2**63 - 1)
            )


class TestExperimentEngineBitIdentity:
    def test_full_synthetic_experiment(self):
        loop = generate_experiment_data(
            small_platform(n_chips=8, n_monte_carlo=20, engine="loop")
        )
        batched = generate_experiment_data(
            small_platform(n_chips=8, n_monte_carlo=20, engine="batched")
        )
        np.testing.assert_array_equal(batched.sim_pcms, loop.sim_pcms)
        np.testing.assert_array_equal(
            batched.sim_fingerprints, loop.sim_fingerprints
        )
        np.testing.assert_array_equal(batched.dutt_pcms, loop.dutt_pcms)
        np.testing.assert_array_equal(
            batched.dutt_fingerprints, loop.dutt_fingerprints
        )
        np.testing.assert_array_equal(batched.infested, loop.infested)
        assert batched.trojan_names == loop.trojan_names


class TestDiePopulation:
    def test_structure_params_match_scalar_dies(self, fabricated_dies):
        population = DiePopulation.from_dies(fabricated_dies)
        assert len(population) == len(fabricated_dies)
        for structure in ("pcm.path_delay", "TF.uwb_pa", "T1.uwb_shaper"):
            batched = population.structure_params(structure)
            for i, die in enumerate(fabricated_dies):
                scalar = die.structure_params(structure)
                extracted = parameters_at(batched, i)
                for name in PARAMETER_NAMES:
                    assert getattr(extracted, name) == getattr(scalar, name), (
                        structure, i, name
                    )

    def test_labels_follow_dies(self, fabricated_dies):
        population = DiePopulation.from_dies(fabricated_dies)
        for i, die in enumerate(fabricated_dies):
            assert population.label(i) == die.label()

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError, match="zero dies"):
            DiePopulation.from_dies([])


class TestBatchedAes:
    """The vectorized AES must equal the scalar FIPS-197 reference bitwise."""

    def test_fips_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        blocks = np.frombuffer(plaintext, dtype=np.uint8).reshape(1, 16)
        out = aes128_encrypt_blocks(key, blocks)
        assert out.tobytes() == expected

    @settings(max_examples=25, deadline=None)
    @given(
        key=st.binary(min_size=16, max_size=16),
        blocks=st.lists(st.binary(min_size=16, max_size=16), min_size=1,
                        max_size=8),
    )
    def test_matches_scalar_reference(self, key, blocks):
        array = np.frombuffer(b"".join(blocks), dtype=np.uint8).reshape(-1, 16)
        out = aes128_encrypt_blocks(key, array)
        scalar = AES128(key)
        assert out.shape == array.shape
        assert out.dtype == np.uint8
        for row, block in zip(out, blocks):
            assert row.tobytes() == scalar.encrypt_block(block)

    def test_device_axis_broadcast(self):
        # (n_devices, n_plaintexts, 16): every device sees the same key, so
        # all device rows agree with the 2-D encryption of the same blocks.
        rng = np.random.default_rng(0)
        key = rng.bytes(16)
        blocks = rng.integers(0, 256, size=(6, 16), dtype=np.uint8)
        stacked = np.broadcast_to(blocks, (5, 6, 16)).copy()
        out3 = aes128_encrypt_blocks(key, stacked)
        out2 = aes128_encrypt_blocks(key, blocks)
        for device_row in out3:
            np.testing.assert_array_equal(device_row, out2)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError, match="uint8"):
            aes128_encrypt_blocks(b"\x00" * 16,
                                  np.zeros((2, 16), dtype=np.int64))

    def test_rejects_wrong_trailing_axis(self):
        with pytest.raises(ValueError, match="trailing axis"):
            aes128_encrypt_blocks(b"\x00" * 16,
                                  np.zeros((2, 8), dtype=np.uint8))

    def test_input_blocks_untouched(self):
        rng = np.random.default_rng(1)
        key = rng.bytes(16)
        blocks = rng.integers(0, 256, size=(4, 16), dtype=np.uint8)
        before = blocks.copy()
        aes128_encrypt_blocks(key, blocks)
        np.testing.assert_array_equal(blocks, before)
