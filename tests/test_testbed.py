"""The wireless cryptographic IC and the measurement campaign."""

import numpy as np
import pytest

from repro.circuits.spicemodel import default_spice_deck
from repro.crypto.aes import AES128
from repro.crypto.bits import hamming_weight, random_key
from repro.process.parameters import nominal_350nm
from repro.silicon.foundry import Foundry
from repro.silicon.pcm import PCMSuite
from repro.testbed.campaign import FingerprintCampaign
from repro.testbed.chip import WirelessCryptoChip
from repro.testbed.serializer import SerializationBuffer
from repro.trojans.amplitude import AmplitudeModulationTrojan


class _StubDie:
    def structure_params(self, structure):
        return nominal_350nm()

    def label(self):
        return "stub"


class TestSerializer:
    def test_serializes_128_bits_msb_first(self):
        bits = SerializationBuffer().serialize(b"\x80" + b"\x00" * 15)
        assert bits.shape == (128,)
        assert bits[0] == 1
        assert bits[1:].sum() == 0

    def test_rejects_wrong_block_size(self):
        with pytest.raises(ValueError):
            SerializationBuffer().serialize(b"\x00" * 15)

    def test_serialize_many_preserves_order(self):
        blocks = [bytes([i]) + b"\x00" * 15 for i in range(3)]
        streams = SerializationBuffer().serialize_many(blocks)
        assert len(streams) == 3
        assert streams[1][:8].tolist() == [0, 0, 0, 0, 0, 0, 0, 1]


class TestChip:
    def test_encrypt_matches_reference_aes(self):
        key = random_key(rng=0)
        chip = WirelessCryptoChip(die=_StubDie(), key=key)
        plaintext = b"\x42" * 16
        assert chip.encrypt(plaintext) == AES128(key).encrypt_block(plaintext)

    def test_functionality_unchanged_by_trojan(self):
        key = random_key(rng=0)
        clean = WirelessCryptoChip(die=_StubDie(), key=key)
        dirty = WirelessCryptoChip(
            die=_StubDie(), key=key, trojan=AmplitudeModulationTrojan(), version="T1"
        )
        plaintext = b"\x42" * 16
        assert clean.encrypt(plaintext) == dirty.encrypt(plaintext)

    def test_pulse_count_equals_ciphertext_weight(self):
        key = random_key(rng=0)
        chip = WirelessCryptoChip(die=_StubDie(), key=key)
        plaintext = b"\x11" * 16
        train = chip.transmit_plaintext(plaintext)
        assert len(train) == hamming_weight(chip.encrypt(plaintext))

    def test_is_infested(self):
        key = random_key(rng=0)
        assert not WirelessCryptoChip(die=_StubDie(), key=key).is_infested()
        assert WirelessCryptoChip(
            die=_StubDie(), key=key, trojan=AmplitudeModulationTrojan()
        ).is_infested()

    def test_transmit_session(self):
        chip = WirelessCryptoChip(die=_StubDie(), key=random_key(rng=0))
        trains = chip.transmit_session([b"\x01" * 16, b"\x02" * 16])
        assert len(trains) == 2


class TestCampaign:
    def test_random_stimuli_shapes(self):
        campaign = FingerprintCampaign.random_stimuli(nm=6, seed=0, noisy_bench=False)
        assert campaign.nm == 6
        assert campaign.np_dim == 1
        assert len(campaign.key) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            FingerprintCampaign(key=b"short", plaintexts=[b"\x00" * 16])
        with pytest.raises(ValueError):
            FingerprintCampaign(key=b"\x00" * 16, plaintexts=[])
        with pytest.raises(ValueError):
            FingerprintCampaign(key=b"\x00" * 16, plaintexts=[b"short"])
        with pytest.raises(ValueError):
            FingerprintCampaign.random_stimuli(nm=0)

    def test_fingerprint_dimension_and_determinism(self):
        campaign = FingerprintCampaign.random_stimuli(nm=5, seed=1, noisy_bench=False)
        chip = WirelessCryptoChip(die=_StubDie(), key=campaign.key)
        fp1 = campaign.fingerprint(chip)
        fp2 = campaign.fingerprint(chip)
        assert fp1.shape == (5,)
        np.testing.assert_array_equal(fp1, fp2)  # noise-free bench

    def test_noisy_bench_perturbs_fingerprint(self):
        campaign = FingerprintCampaign.random_stimuli(nm=4, seed=1, noisy_bench=False)
        bench = campaign.silicon_bench(seed=2)
        chip = WirelessCryptoChip(die=_StubDie(), key=campaign.key)
        assert not np.array_equal(bench.fingerprint(chip), bench.fingerprint(chip))

    def test_silicon_bench_preserves_stimuli(self):
        campaign = FingerprintCampaign.random_stimuli(nm=4, seed=1, noisy_bench=False)
        bench = campaign.silicon_bench(seed=2)
        assert bench.key == campaign.key
        assert bench.plaintexts == campaign.plaintexts

    def test_measure_device_labels_and_truth(self):
        deck = default_spice_deck()
        foundry = Foundry(deck_nominal=deck.nominal, variation=deck.variation, seed=0)
        die = foundry.fabricate_lot(1)[0]
        campaign = FingerprintCampaign.random_stimuli(nm=3, seed=1, noisy_bench=False)
        clean = campaign.measure_device(die)
        dirty = campaign.measure_device(die, trojan=AmplitudeModulationTrojan(), version="T1")
        assert clean.infested is False and clean.trojan_name == "none"
        assert dirty.infested is True and "amplitude" in dirty.trojan_name
        assert clean.label.endswith("/TF") and dirty.label.endswith("/T1")
        assert clean.pcms.shape == (1,)

    def test_extended_pcm_suite_gives_two_readings(self):
        campaign = FingerprintCampaign.random_stimuli(
            nm=3, seed=1, noisy_bench=False, pcm_suite=PCMSuite.extended()
        )
        deck = default_spice_deck()
        foundry = Foundry(deck_nominal=deck.nominal, variation=deck.variation, seed=0)
        die = foundry.fabricate_lot(1)[0]
        assert campaign.pcm_vector(die).shape == (2,)

    def test_measure_population(self):
        deck = default_spice_deck()
        foundry = Foundry(deck_nominal=deck.nominal, variation=deck.variation, seed=0)
        dies = foundry.fabricate_lot(4)
        campaign = FingerprintCampaign.random_stimuli(nm=3, seed=1, noisy_bench=False)
        devices = campaign.measure_population(dies)
        assert len(devices) == 4

    def test_trojan_shifts_fingerprint(self):
        campaign = FingerprintCampaign.random_stimuli(nm=6, seed=1, noisy_bench=False)
        die = _StubDie()
        clean = campaign.measure_device(die).fingerprint
        dirty = campaign.measure_device(
            die, trojan=AmplitudeModulationTrojan(depth=0.1), version="TF"
        ).fingerprint
        assert np.all(dirty > clean)  # amplitude boost raises every block power
