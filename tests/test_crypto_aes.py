"""AES-128 core: FIPS-197 vectors, algebra, round operations, properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import (
    AES128,
    INV_SBOX,
    RCON,
    SBOX,
    aes128_decrypt_block,
    aes128_encrypt_block,
    expand_key,
    gf_inv,
    gf_mul,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    shift_rows,
    sub_bytes,
)

FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

# Appendix A of FIPS-197: expansion of the key 2b7e1516...
NIST_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
NIST_ROUND10 = bytes.fromhex("d014f9a8c9ee2589e13f0cc8b6630ca6")


class TestGaloisField:
    def test_multiplication_examples(self):
        # {57} x {83} = {c1} is the classic FIPS worked example.
        assert gf_mul(0x57, 0x83) == 0xC1
        assert gf_mul(0x57, 0x13) == 0xFE

    def test_multiplication_identity_and_zero(self):
        for a in (0x00, 0x01, 0x53, 0xFF):
            assert gf_mul(a, 1) == a
            assert gf_mul(a, 0) == 0

    def test_inverse_convention_for_zero(self):
        assert gf_inv(0) == 0

    @given(st.integers(min_value=1, max_value=255))
    def test_inverse_is_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_multiplication_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))


class TestSbox:
    def test_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox_inverts(self):
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x

    def test_no_fixed_points(self):
        # The AES S-box has no fixed points and no 'opposite' fixed points.
        assert all(SBOX[x] != x for x in range(256))
        assert all(SBOX[x] != (x ^ 0xFF) for x in range(256))

    def test_rcon_values(self):
        assert RCON[:8] == [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80]
        assert RCON[8] == 0x1B
        assert RCON[9] == 0x36


class TestRoundOperations:
    def test_shift_rows_round_trip(self):
        state = list(range(16))
        assert inv_shift_rows(shift_rows(state)) == state

    def test_shift_rows_leaves_row_zero(self):
        state = list(range(16))
        shifted = shift_rows(state)
        assert [shifted[4 * c] for c in range(4)] == [state[4 * c] for c in range(4)]

    def test_mix_columns_round_trip(self):
        state = list(range(16))
        assert inv_mix_columns(mix_columns(state)) == state

    def test_mix_columns_known_column(self):
        # FIPS-197 test column: db 13 53 45 -> 8e 4d a1 bc.
        state = [0xDB, 0x13, 0x53, 0x45] + [0] * 12
        mixed = mix_columns(state)
        assert mixed[:4] == [0x8E, 0x4D, 0xA1, 0xBC]

    def test_sub_bytes_round_trip(self):
        state = list(range(16))
        assert inv_sub_bytes(sub_bytes(state)) == state


class TestKeyExpansion:
    def test_produces_11_round_keys(self):
        keys = expand_key(FIPS_KEY)
        assert len(keys) == 11
        assert all(len(k) == 16 for k in keys)

    def test_first_round_key_is_the_key(self):
        keys = expand_key(FIPS_KEY)
        assert bytes(keys[0]) == FIPS_KEY

    def test_nist_appendix_a_final_round_key(self):
        keys = expand_key(NIST_KEY)
        assert bytes(keys[10]) == NIST_ROUND10

    def test_rejects_wrong_key_size(self):
        with pytest.raises(ValueError):
            expand_key(b"short")


class TestCipher:
    def test_fips_vector_encrypt(self):
        assert AES128(FIPS_KEY).encrypt_block(FIPS_PLAINTEXT) == FIPS_CIPHERTEXT

    def test_fips_vector_decrypt(self):
        assert AES128(FIPS_KEY).decrypt_block(FIPS_CIPHERTEXT) == FIPS_PLAINTEXT

    def test_one_shot_helpers(self):
        assert aes128_encrypt_block(FIPS_KEY, FIPS_PLAINTEXT) == FIPS_CIPHERTEXT
        assert aes128_decrypt_block(FIPS_KEY, FIPS_CIPHERTEXT) == FIPS_PLAINTEXT

    def test_rejects_wrong_block_sizes(self):
        cipher = AES128(FIPS_KEY)
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"too short")
        with pytest.raises(ValueError):
            cipher.decrypt_block(b"x" * 17)

    def test_key_property_returns_key(self):
        assert AES128(FIPS_KEY).key == FIPS_KEY

    @settings(max_examples=30)
    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    def test_encrypt_decrypt_round_trip(self, key, plaintext):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(plaintext)) == plaintext

    @settings(max_examples=20)
    @given(st.binary(min_size=16, max_size=16))
    def test_encryption_changes_the_block(self, plaintext):
        # AES is a permutation without fixed points for virtually all keys;
        # at minimum the FIPS key must not map these blocks to themselves.
        assert AES128(FIPS_KEY).encrypt_block(plaintext) != plaintext

    def test_different_keys_different_ciphertexts(self):
        other_key = bytes(x ^ 1 for x in FIPS_KEY)
        assert (
            AES128(FIPS_KEY).encrypt_block(FIPS_PLAINTEXT)
            != AES128(other_key).encrypt_block(FIPS_PLAINTEXT)
        )

    def test_avalanche_single_bit_flip(self):
        cipher = AES128(FIPS_KEY)
        base = cipher.encrypt_block(FIPS_PLAINTEXT)
        flipped = bytearray(FIPS_PLAINTEXT)
        flipped[0] ^= 0x01
        other = cipher.encrypt_block(bytes(flipped))
        differing_bits = sum(bin(a ^ b).count("1") for a, b in zip(base, other))
        # Expect roughly half of 128 bits to flip; accept a generous band.
        assert 40 <= differing_bits <= 90
