"""Maximum mean discrepancy diagnostics."""

import numpy as np
import pytest

from repro.stats.kmm import KernelMeanMatcher, importance_resample
from repro.stats.mmd import mmd_permutation_test, mmd_squared


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestMmdSquared:
    def test_zero_for_identical_samples(self, rng):
        x = rng.standard_normal((100, 2))
        # Same distribution -> MMD^2 near zero (unbiased, can dip below 0).
        y = rng.standard_normal((100, 2))
        assert abs(mmd_squared(x, y)) < 0.02

    def test_positive_for_shifted_samples(self, rng):
        x = rng.standard_normal((100, 2))
        y = rng.standard_normal((100, 2)) + 2.0
        assert mmd_squared(x, y) > 0.1

    def test_symmetry(self, rng):
        x = rng.standard_normal((60, 2))
        y = rng.standard_normal((60, 2)) + 1.0
        assert mmd_squared(x, y, gamma=0.5) == pytest.approx(
            mmd_squared(y, x, gamma=0.5)
        )

    def test_grows_with_shift(self, rng):
        x = rng.standard_normal((100, 1))
        near = rng.standard_normal((100, 1)) + 0.5
        far = rng.standard_normal((100, 1)) + 2.0
        assert mmd_squared(x, far, gamma=0.5) > mmd_squared(x, near, gamma=0.5)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="share features"):
            mmd_squared(np.zeros((5, 2)), np.zeros((5, 3)))
        with pytest.raises(ValueError, match="at least 2"):
            mmd_squared(np.zeros((1, 2)), np.zeros((5, 2)))


class TestPermutationTest:
    def test_rejects_shifted_distributions(self, rng):
        x = rng.standard_normal((60, 1))
        y = rng.standard_normal((60, 1)) + 1.5
        _, p = mmd_permutation_test(x, y, n_permutations=100, rng=0)
        assert p < 0.05

    def test_accepts_identical_distributions(self, rng):
        x = rng.standard_normal((60, 1))
        y = rng.standard_normal((60, 1))
        _, p = mmd_permutation_test(x, y, n_permutations=100, rng=0)
        assert p > 0.05

    def test_permutation_count_validated(self, rng):
        with pytest.raises(ValueError):
            mmd_permutation_test(np.zeros((5, 1)), np.zeros((5, 1)), n_permutations=5)


class TestKmmReducesMmd:
    def test_calibration_improves_distribution_match(self, experiment_data):
        """The end-to-end property KMM exists for, verified via MMD."""
        sim = experiment_data.sim_pcms
        silicon = experiment_data.dutt_pcms
        matcher = KernelMeanMatcher(B=10.0).fit(sim, silicon)
        shifted = importance_resample(sim, matcher.weights, 200, rng=0)
        before = mmd_squared(sim, silicon)
        after = mmd_squared(shifted, silicon)
        assert after < before
