"""Spice deck sampling and the Monte Carlo engine."""

import numpy as np
import pytest

from repro.circuits.montecarlo import MonteCarloEngine, MonteCarloResult, SimulatedDie
from repro.circuits.spicemodel import default_spice_deck
from repro.testbed.campaign import FingerprintCampaign


@pytest.fixture()
def deck():
    return default_spice_deck()


@pytest.fixture()
def sim_campaign():
    return FingerprintCampaign.random_stimuli(nm=4, seed=0, noisy_bench=False)


class TestSpiceDeck:
    def test_sample_die_varies(self, deck):
        a = deck.sample_die(0)
        b = deck.sample_die(1)
        assert a != b

    def test_sample_die_deterministic(self, deck):
        assert deck.sample_die(3) == deck.sample_die(3)

    def test_samples_center_on_nominal(self, deck):
        rng = np.random.default_rng(0)
        values = np.array([deck.sample_die(rng).vth_n for _ in range(400)])
        assert values.mean() == pytest.approx(deck.nominal.vth_n, rel=0.01)


class TestSimulatedDie:
    def test_structure_params_cached_and_deterministic(self, deck):
        die = SimulatedDie(index=0, die_params=deck.nominal, deck=deck, mismatch_seed=42)
        first = die.structure_params("uwb_pa")
        assert die.structure_params("uwb_pa") is first

        clone = SimulatedDie(index=0, die_params=deck.nominal, deck=deck, mismatch_seed=42)
        assert clone.structure_params("uwb_pa") == first

    def test_different_structures_differ(self, deck):
        die = SimulatedDie(index=0, die_params=deck.nominal, deck=deck, mismatch_seed=42)
        assert die.structure_params("uwb_pa") != die.structure_params("pcm.path")

    def test_label(self, deck):
        assert SimulatedDie(3, deck.nominal, deck, 0).label() == "MC3"


class TestEngine:
    def test_rejects_noisy_campaign(self, deck):
        noisy = FingerprintCampaign.random_stimuli(nm=4, seed=0, noisy_bench=True)
        with pytest.raises(ValueError, match="noise-free"):
            MonteCarloEngine(deck, noisy)

    def test_rejects_negative_noise(self, deck, sim_campaign):
        with pytest.raises(ValueError):
            MonteCarloEngine(deck, sim_campaign, numerical_noise=-0.1)

    def test_run_shapes(self, deck, sim_campaign):
        result = MonteCarloEngine(deck, sim_campaign).run(15, seed=1)
        assert result.pcms.shape == (15, 1)
        assert result.fingerprints.shape == (15, 4)
        assert result.n_devices == 15

    def test_run_rejects_nonpositive_n(self, deck, sim_campaign):
        with pytest.raises(ValueError):
            MonteCarloEngine(deck, sim_campaign).run(0)

    def test_run_is_deterministic(self, deck, sim_campaign):
        engine = MonteCarloEngine(deck, sim_campaign)
        a = engine.run(10, seed=5)
        b = engine.run(10, seed=5)
        np.testing.assert_array_equal(a.fingerprints, b.fingerprints)

    def test_numerical_noise_perturbs_readings(self, deck, sim_campaign):
        clean = MonteCarloEngine(deck, sim_campaign).run(10, seed=5)
        noisy = MonteCarloEngine(deck, sim_campaign, numerical_noise=0.01).run(10, seed=5)
        rel = np.abs(noisy.fingerprints / clean.fingerprints - 1.0)
        assert rel.max() < 0.1
        assert rel.mean() > 1e-4

    def test_result_validates_row_mismatch(self):
        with pytest.raises(ValueError):
            MonteCarloResult(pcms=np.zeros((3, 1)), fingerprints=np.zeros((4, 6)))
