"""Epanechnikov KDE: kernel maths, bandwidths, adaptivity, sampling."""

import numpy as np
import pytest
from scipy import integrate

from repro.stats.kde import (
    AdaptiveKde,
    EpanechnikovKde,
    epanechnikov_bandwidth,
    epanechnikov_kernel_value,
    unit_ball_volume,
)


class TestKernelMaths:
    def test_unit_ball_volumes(self):
        assert unit_ball_volume(1) == pytest.approx(2.0)
        assert unit_ball_volume(2) == pytest.approx(np.pi)
        assert unit_ball_volume(3) == pytest.approx(4.0 * np.pi / 3.0)

    def test_kernel_zero_outside_unit_ball(self):
        t = np.array([[1.5, 0.0], [0.0, -2.0]])
        np.testing.assert_array_equal(epanechnikov_kernel_value(t), 0.0)

    def test_kernel_integrates_to_one_1d(self):
        value, _ = integrate.quad(lambda t: epanechnikov_kernel_value([[t]])[0], -1, 1)
        assert value == pytest.approx(1.0, rel=1e-6)

    @pytest.mark.filterwarnings("ignore::scipy.integrate.IntegrationWarning")
    def test_kernel_integrates_to_one_2d(self):
        value, _ = integrate.dblquad(
            lambda y, x: epanechnikov_kernel_value([[x, y]])[0], -1, 1, -1, 1
        )
        assert value == pytest.approx(1.0, rel=1e-4)

    def test_bandwidth_shrinks_with_n(self):
        assert epanechnikov_bandwidth(1000, 3) < epanechnikov_bandwidth(100, 3)

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            epanechnikov_bandwidth(0, 3)
        with pytest.raises(ValueError):
            epanechnikov_bandwidth(10, 0)


class TestFixedKde:
    def test_density_integrates_to_one_1d(self):
        rng = np.random.default_rng(0)
        kde = EpanechnikovKde(whiten=False).fit(rng.standard_normal((200, 1)))
        grid = np.linspace(-6, 6, 2000)[:, None]
        total = np.trapezoid(kde.density(grid), grid[:, 0])
        assert total == pytest.approx(1.0, rel=1e-2)

    def test_density_with_whitening_integrates_to_one(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((200, 1)) * 3.0 + 5.0
        kde = EpanechnikovKde(whiten=True).fit(data)
        grid = np.linspace(-20, 30, 4000)[:, None]
        total = np.trapezoid(kde.density(grid), grid[:, 0])
        assert total == pytest.approx(1.0, rel=1e-2)

    def test_density_zero_far_away(self):
        kde = EpanechnikovKde().fit(np.random.default_rng(0).standard_normal((50, 2)))
        assert kde.density(np.array([[50.0, 50.0]]))[0] == 0.0

    def test_sampling_statistics(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((300, 2)) * np.array([2.0, 0.5])
        kde = EpanechnikovKde().fit(data)
        samples = kde.sample(20_000, rng=1)
        # Smoothing inflates the variance; sample std must bracket the data std.
        assert samples.std(axis=0)[0] == pytest.approx(2.0, rel=0.25)
        assert samples.std(axis=0)[1] == pytest.approx(0.5, rel=0.25)

    def test_sample_determinism(self):
        kde = EpanechnikovKde().fit(np.random.default_rng(0).standard_normal((40, 3)))
        np.testing.assert_array_equal(kde.sample(100, rng=5), kde.sample(100, rng=5))

    def test_explicit_bandwidth_used(self):
        kde = EpanechnikovKde(bandwidth=0.3).fit(np.zeros((10, 2)) + 1.0)
        assert kde.h == 0.3

    def test_bandwidth_scale_applies(self):
        data = np.random.default_rng(0).standard_normal((60, 2))
        full = EpanechnikovKde(bandwidth_scale=1.0).fit(data)
        half = EpanechnikovKde(bandwidth_scale=0.5).fit(data)
        assert half.h == pytest.approx(0.5 * full.h)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            EpanechnikovKde().density(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            EpanechnikovKde().sample(10)

    def test_sample_size_validation(self):
        kde = EpanechnikovKde().fit(np.random.default_rng(0).standard_normal((20, 2)))
        with pytest.raises(ValueError):
            kde.sample(0)


class TestAdaptiveKde:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            AdaptiveKde(alpha=-0.1)
        with pytest.raises(ValueError):
            AdaptiveKde(alpha=1.5)

    def test_alpha_zero_matches_fixed_bandwidths(self):
        data = np.random.default_rng(0).standard_normal((80, 2))
        kde = AdaptiveKde(alpha=0.0).fit(data)
        np.testing.assert_allclose(kde.local_bandwidth_factors, 1.0)

    def test_tail_points_get_larger_bandwidths(self):
        rng = np.random.default_rng(0)
        data = np.vstack([rng.standard_normal((100, 1)), [[6.0]]])
        kde = AdaptiveKde(alpha=0.5).fit(data)
        lambdas = kde.local_bandwidth_factors
        assert lambdas[-1] > np.median(lambdas[:-1])

    def test_geometric_mean_normalization(self):
        data = np.random.default_rng(0).standard_normal((100, 2))
        lambdas = AdaptiveKde(alpha=0.5).fit(data).local_bandwidth_factors
        assert np.exp(np.mean(np.log(lambdas))) == pytest.approx(1.0, rel=0.05)

    def test_adaptive_samples_reach_further_than_fixed(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((100, 1))
        fixed = EpanechnikovKde().fit(data).sample(20_000, rng=1)
        adaptive = AdaptiveKde(alpha=1.0).fit(data).sample(20_000, rng=1)
        assert np.abs(adaptive).max() > np.abs(fixed).max()

    def test_adaptive_density_integrates_to_one(self):
        rng = np.random.default_rng(0)
        kde = AdaptiveKde(alpha=0.5, whiten=False).fit(rng.standard_normal((150, 1)))
        grid = np.linspace(-8, 8, 3000)[:, None]
        total = np.trapezoid(kde.density(grid), grid[:, 0])
        assert total == pytest.approx(1.0, rel=1e-2)

    def test_floor_sigma_bounds_degenerate_direction(self):
        # Rank-deficient data: second coordinate constant.
        data = np.column_stack([np.linspace(0, 1, 50), np.full(50, 3.0)])
        kde = AdaptiveKde(floor_sigma=0.1).fit(data)
        samples = kde.sample(5000, rng=0)
        spread = samples[:, 1].std()
        assert 0.0 < spread < 0.2  # inflated up to ~the floor, no further
