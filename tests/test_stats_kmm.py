"""Kernel mean matching and importance resampling."""

import numpy as np
import pytest

from repro.stats.kmm import KernelMeanMatcher, importance_resample


@pytest.fixture()
def shifted_data():
    rng = np.random.default_rng(0)
    train = rng.standard_normal((200, 1))
    test = 0.8 + 0.5 * rng.standard_normal((80, 1))
    return train, test


class TestKmm:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KernelMeanMatcher(B=0.0)
        with pytest.raises(ValueError):
            KernelMeanMatcher(eps=-0.1)

    def test_weights_respect_bounds(self, shifted_data):
        train, test = shifted_data
        matcher = KernelMeanMatcher(B=5.0).fit(train, test)
        assert np.all(matcher.weights >= 0.0)
        assert np.all(matcher.weights <= 5.0 + 1e-9)

    def test_mean_constraint_respected(self, shifted_data):
        train, test = shifted_data
        matcher = KernelMeanMatcher(B=10.0, eps=0.3).fit(train, test)
        assert abs(matcher.weights.mean() - 1.0) <= 0.3 + 1e-6

    def test_weighted_mean_moves_toward_test(self, shifted_data):
        train, test = shifted_data
        matcher = KernelMeanMatcher(B=10.0).fit(train, test)
        w = matcher.weights
        weighted_mean = float((w[:, None] * train).sum() / w.sum())
        assert abs(weighted_mean - test.mean()) < abs(train.mean() - test.mean())

    def test_identical_distributions_keep_higher_ess_than_shifted(self):
        rng = np.random.default_rng(1)
        train = rng.standard_normal((150, 2))
        same = rng.standard_normal((150, 2))
        shifted = rng.standard_normal((150, 2)) + 2.0
        ess_same = KernelMeanMatcher(B=10.0).fit(train, same).effective_sample_size()
        ess_shifted = KernelMeanMatcher(B=10.0).fit(train, shifted).effective_sample_size()
        assert ess_same > 20
        assert ess_same > ess_shifted

    def test_feature_mismatch_rejected(self):
        with pytest.raises(ValueError, match="share features"):
            KernelMeanMatcher().fit(np.zeros((5, 2)), np.zeros((5, 3)))

    def test_weights_before_fit_raise(self):
        with pytest.raises(RuntimeError):
            _ = KernelMeanMatcher().weights

    def test_effective_gamma_recorded(self, shifted_data):
        train, test = shifted_data
        matcher = KernelMeanMatcher(gamma=0.7).fit(train, test)
        assert matcher.effective_gamma_ == 0.7


class TestImportanceResample:
    def test_shape_and_membership(self, shifted_data):
        train, _ = shifted_data
        weights = np.ones(train.shape[0])
        out = importance_resample(train, weights, size=50, rng=0)
        assert out.shape == (50, 1)
        assert set(out[:, 0]).issubset(set(train[:, 0]))

    def test_zero_weight_samples_never_drawn(self):
        samples = np.arange(10, dtype=float)[:, None]
        weights = np.zeros(10)
        weights[3] = 1.0
        out = importance_resample(samples, weights, size=20, rng=0)
        assert np.all(out == 3.0)

    def test_validation(self):
        samples = np.zeros((5, 1))
        with pytest.raises(ValueError):
            importance_resample(samples, np.ones(4), size=5)
        with pytest.raises(ValueError):
            importance_resample(samples, -np.ones(5), size=5)
        with pytest.raises(ValueError):
            importance_resample(samples, np.zeros(5), size=5)
        with pytest.raises(ValueError):
            importance_resample(samples, np.ones(5), size=0)

    def test_deterministic_given_seed(self, shifted_data):
        train, test = shifted_data
        w = KernelMeanMatcher().fit(train, test).weights
        a = importance_resample(train, w, size=30, rng=9)
        b = importance_resample(train, w, size=30, rng=9)
        np.testing.assert_array_equal(a, b)


class TestKmmProblem:
    def test_fit_problem_bitwise_matches_fit(self, shifted_data):
        from repro.stats.kmm import KmmProblem

        train, test = shifted_data
        direct = KernelMeanMatcher(B=10.0).fit(train, test)
        problem = KmmProblem(train, test)
        hoisted = KernelMeanMatcher(B=10.0).fit_problem(problem)
        np.testing.assert_array_equal(hoisted.weights, direct.weights)
        assert hoisted.effective_gamma_ == direct.effective_gamma_
        assert hoisted.rkhs_residual_ == direct.rkhs_residual_

    def test_distances_reused_across_bandwidths(self, shifted_data):
        from repro.stats.kmm import KmmProblem

        train, test = shifted_data
        problem = KmmProblem(train, test)
        before = problem.sq_dists_.copy()
        base = problem.median_gamma()
        # warm_start=False keeps every arm bit-identical to a one-shot fit;
        # the warm-started default is covered by TestSweepWarmStart.
        matchers = problem.sweep([0.5 * base, base, 2.0 * base], B=10.0,
                                 warm_start=False)
        # The pooled distances are pristine after a sweep (kernels use copies).
        np.testing.assert_array_equal(problem.sq_dists_, before)
        assert [m.effective_gamma_ for m in matchers] == [
            0.5 * base, base, 2.0 * base
        ]
        # Each sweep arm equals a from-scratch fit at that gamma.
        for matcher in matchers:
            direct = KernelMeanMatcher(
                B=10.0, gamma=matcher.effective_gamma_
            ).fit(train, test)
            np.testing.assert_array_equal(matcher.weights, direct.weights)

    def test_warm_start_matches_cold_within_solver_tolerance(self):
        from repro.stats.kmm import KmmProblem

        # Small enough that every arm converges within the iteration budget
        # (warm starts only chain from converged solutions).
        rng = np.random.default_rng(0)
        train = rng.normal(size=(60, 2))
        test = rng.normal(loc=0.3, size=(50, 2))
        problem = KmmProblem(train, test)
        base = problem.median_gamma()
        gammas = [base, 2.0 * base, 4.0 * base]
        cold = problem.sweep(gammas, B=10.0, warm_start=False)
        warm = problem.sweep(gammas, B=10.0, warm_start=True)
        for c, w in zip(cold, warm):
            assert c.converged_ and w.converged_
            # Same strictly convex QP solved to the same ftol from two
            # starting points: converged weights agree to solver tolerance.
            np.testing.assert_allclose(w.weights, c.weights, atol=5e-3)
            assert abs(w.rkhs_residual_ - c.rkhs_residual_) < 1e-9
        # The first arm has no warm start yet and is bit-identical.
        np.testing.assert_array_equal(warm[0].weights, cold[0].weights)

    def test_fit_problem_records_qp_iterations(self, shifted_data):
        from repro.stats.kmm import KmmProblem

        train, test = shifted_data
        matcher = KernelMeanMatcher(B=10.0).fit_problem(KmmProblem(train, test))
        assert matcher.qp_iterations_ > 0

    def test_median_gamma_matches_one_shot_path(self, shifted_data):
        from repro.stats.kmm import KmmProblem

        train, test = shifted_data
        problem = KmmProblem(train, test)
        assert KernelMeanMatcher(B=10.0).fit(train, test).effective_gamma_ == \
            problem.median_gamma()

    def test_feature_mismatch_rejected(self):
        from repro.stats.kmm import KmmProblem

        with pytest.raises(ValueError, match="share features"):
            KmmProblem(np.zeros((5, 2)), np.zeros((5, 3)))
