"""Production spec tests: Trojans pass the flow, gross defects do not."""

import pytest

from repro.circuits.spicemodel import default_spice_deck
from repro.crypto.bits import random_key
from repro.silicon.foundry import Foundry
from repro.testbed.chip import WirelessCryptoChip
from repro.testbed.spec import ProductionTest, SpecLimits
from repro.trojans.amplitude import AmplitudeModulationTrojan
from repro.trojans.frequency import FrequencyModulationTrojan


@pytest.fixture(scope="module")
def dies():
    deck = default_spice_deck()
    foundry = Foundry(deck_nominal=deck.nominal, variation=deck.variation, seed=0)
    return foundry.fabricate_lot(8)


@pytest.fixture(scope="module")
def key():
    return random_key(rng=0)


@pytest.fixture(scope="module")
def program(dies, key):
    reference = WirelessCryptoChip(die=dies[0], key=key)
    return ProductionTest.centered_on(reference, seed=1)


class TestSpecLimits:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpecLimits(power_low=2.0, power_high=1.0, freq_low_ghz=3.0, freq_high_ghz=5.0)
        with pytest.raises(ValueError):
            SpecLimits(power_low=1.0, power_high=2.0, freq_low_ghz=5.0, freq_high_ghz=3.0)

    def test_margin_validation(self, dies, key):
        reference = WirelessCryptoChip(die=dies[0], key=key)
        with pytest.raises(ValueError):
            ProductionTest.centered_on(reference, margin=1.5)
        with pytest.raises(ValueError):
            ProductionTest.centered_on(reference, freq_margin=0.0)


class TestProductionFlow:
    def test_clean_population_yields(self, program, dies, key):
        chips = [WirelessCryptoChip(die=die, key=key) for die in dies]
        assert program.yield_fraction(chips) == 1.0

    def test_trojan_devices_pass(self, program, dies, key):
        for trojan in (AmplitudeModulationTrojan(depth=0.17),
                       FrequencyModulationTrojan(depth=0.17)):
            chips = [
                WirelessCryptoChip(die=die, key=key, trojan=trojan, version="T")
                for die in dies
            ]
            assert program.yield_fraction(chips) == 1.0

    def test_wrong_key_fails_functional(self, program, dies):
        impostor = WirelessCryptoChip(die=dies[0], key=random_key(rng=99))
        result = program.run(impostor)
        assert not result.functional_pass
        assert not result.passed

    def test_gross_power_defect_fails(self, program, dies, key):
        # A PA driving far outside the margin (e.g. a short to a stronger
        # supply) must be caught by the parametric screen.
        class BrokenPaDie:
            def __init__(self, die):
                self._die = die

            def structure_params(self, structure):
                params = self._die.structure_params(structure)
                if "uwb_pa" in structure:
                    return params.perturbed({"mobility_n": 0.8})
                return params

            def label(self):
                return "broken"

        result = program.run(WirelessCryptoChip(die=BrokenPaDie(dies[0]), key=key))
        assert not result.power_pass
        assert not result.passed

    def test_detuned_oscillator_fails_frequency(self, program, dies, key):
        class DetunedDie:
            def __init__(self, die):
                self._die = die

            def structure_params(self, structure):
                params = self._die.structure_params(structure)
                if "uwb_shaper" in structure:
                    return params.perturbed({"cpar": 0.6})
                return params

            def label(self):
                return "detuned"

        result = program.run(WirelessCryptoChip(die=DetunedDie(dies[0]), key=key))
        assert not result.frequency_pass

    def test_yield_requires_chips(self, program):
        with pytest.raises(ValueError):
            program.yield_fraction([])

    def test_result_fields(self, program, dies, key):
        result = program.run(WirelessCryptoChip(die=dies[1], key=key))
        assert result.passed
        assert result.power > 0
        assert result.frequency_ghz > 0
