"""Principal component analysis."""

import numpy as np
import pytest

from repro.stats.pca import PrincipalComponentAnalysis


@pytest.fixture()
def anisotropic_data():
    rng = np.random.default_rng(0)
    base = rng.standard_normal((500, 3))
    return base * np.array([5.0, 1.0, 0.2])


def test_n_components_validation():
    with pytest.raises(ValueError):
        PrincipalComponentAnalysis(n_components=0)


def test_explained_variance_sorted_and_normalized(anisotropic_data):
    pca = PrincipalComponentAnalysis().fit(anisotropic_data)
    ratios = pca.explained_variance_ratio_
    assert np.all(np.diff(ratios) <= 0)
    assert ratios.sum() == pytest.approx(1.0)


def test_dominant_direction_found(anisotropic_data):
    pca = PrincipalComponentAnalysis(n_components=1).fit(anisotropic_data)
    direction = np.abs(pca.components_[0])
    assert direction[0] > 0.99


def test_components_orthonormal(anisotropic_data):
    pca = PrincipalComponentAnalysis(n_components=3).fit(anisotropic_data)
    gram = pca.components_ @ pca.components_.T
    np.testing.assert_allclose(gram, np.eye(3), atol=1e-10)


def test_transform_decorrelates(anisotropic_data):
    pca = PrincipalComponentAnalysis(n_components=3).fit(anisotropic_data)
    scores = pca.transform(anisotropic_data)
    cov = np.cov(scores.T)
    off_diag = cov - np.diag(np.diag(cov))
    assert np.abs(off_diag).max() < 0.05


def test_full_rank_reconstruction(anisotropic_data):
    pca = PrincipalComponentAnalysis().fit(anisotropic_data)
    scores = pca.transform(anisotropic_data)
    np.testing.assert_allclose(pca.inverse_transform(scores), anisotropic_data, atol=1e-8)


def test_truncated_reconstruction_error_is_small_for_dominant_axes(anisotropic_data):
    pca = PrincipalComponentAnalysis(n_components=2).fit(anisotropic_data)
    recon = pca.inverse_transform(pca.transform(anisotropic_data))
    err = np.sqrt(np.mean((recon - anisotropic_data) ** 2))
    assert err < 0.3  # only the sigma=0.2 axis is lost


def test_n_components_capped_by_data(anisotropic_data):
    pca = PrincipalComponentAnalysis(n_components=10).fit(anisotropic_data)
    assert pca.components_.shape == (3, 3)


def test_unfitted_raises():
    with pytest.raises(RuntimeError):
        PrincipalComponentAnalysis().transform(np.zeros((2, 2)))


def test_feature_mismatch_rejected(anisotropic_data):
    pca = PrincipalComponentAnalysis().fit(anisotropic_data)
    with pytest.raises(ValueError):
        pca.transform(np.zeros((2, 5)))


def test_constant_data_zero_ratios():
    pca = PrincipalComponentAnalysis().fit(np.full((10, 2), 3.0))
    np.testing.assert_allclose(pca.explained_variance_ratio_, 0.0)
