"""Ablation runners (small configurations)."""

import pytest

from repro.core.config import DetectorConfig
from repro.experiments.ablations import (
    ablate_kde,
    ablate_kmm,
    ablate_regression_mode,
    format_rows,
)
from tests.conftest import small_detector_config


@pytest.fixture(scope="module")
def config():
    return small_detector_config()


def test_kde_ablation_rows(experiment_data, config):
    rows = ablate_kde(
        data=experiment_data,
        alphas=(0.0, 0.5),
        sample_sizes=(500,),
        base_config=config,
    )
    assert len(rows) == 3
    assert any("alpha=0.5" in row.label for row in rows)
    assert all(row.n_trojan_free == 12 for row in rows)


def test_kmm_ablation_includes_all_variants(experiment_data, config):
    rows = ablate_kmm(data=experiment_data, base_config=config)
    labels = [row.label for row in rows]
    assert any("no shift" in label for label in labels)
    assert any("mean shift" in label for label in labels)
    assert any("KMM" in label for label in labels)


def test_regression_mode_ablation(experiment_data, config):
    rows = ablate_regression_mode(data=experiment_data, base_config=config)
    assert len(rows) == 2
    assert {row.label for row in rows} == {
        "B5 with latent_gain regression",
        "B5 with independent regression",
    }


def test_format_rows(experiment_data, config):
    rows = ablate_regression_mode(data=experiment_data, base_config=config)
    text = format_rows(rows, "A5: regression mode")
    assert text.startswith("A5: regression mode")
    assert "FP" in text and "FN" in text
