"""Deterministic parallel executor: worker resolution, ordering, fallback.

The box running the test suite may have a single CPU, so every test that
needs a real process pool injects ``cpu_count`` instead of relying on the
machine size.
"""

import numpy as np
import pytest

from repro.utils.parallel import parallel_map, resolve_n_jobs


def _square(x):
    """Module-level so it survives pickling into pool workers."""
    return x * x


def _draw(seed):
    """One deterministic draw per pre-assigned seed (the intended usage)."""
    return float(np.random.default_rng(seed).standard_normal())


def _boom(x):
    raise RuntimeError(f"work failed on {x}")


class TestResolveNJobs:
    def test_none_and_zero_mean_serial(self):
        assert resolve_n_jobs(None, cpu_count=8) == 1
        assert resolve_n_jobs(0, cpu_count=8) == 1

    def test_positive_clamped_to_cpu_count(self):
        assert resolve_n_jobs(4, cpu_count=8) == 4
        assert resolve_n_jobs(16, cpu_count=8) == 8
        assert resolve_n_jobs(4, cpu_count=1) == 1

    def test_negative_counts_back_from_machine_size(self):
        # joblib convention: -1 = all cores, -2 = all but one.
        assert resolve_n_jobs(-1, cpu_count=8) == 8
        assert resolve_n_jobs(-2, cpu_count=8) == 7
        assert resolve_n_jobs(-100, cpu_count=8) == 1

    def test_defaults_to_machine_cpu_count(self):
        assert resolve_n_jobs(-1) >= 1


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], n_jobs=1) == [1, 4, 9]

    def test_empty_items(self):
        assert parallel_map(_square, [], n_jobs=4, cpu_count=4) == []

    def test_pool_results_stay_in_item_order(self):
        items = list(range(40))
        assert parallel_map(_square, items, n_jobs=4, cpu_count=4) == [
            x * x for x in items
        ]

    def test_pool_matches_serial_on_preseeded_streams(self):
        seeds = np.random.SeedSequence(7).spawn(10)
        serial = parallel_map(_draw, seeds, n_jobs=1)
        pooled = parallel_map(_draw, seeds, n_jobs=3, cpu_count=3)
        assert pooled == serial

    def test_unpicklable_fn_falls_back_to_serial(self):
        offset = 10
        closure = lambda x: x + offset  # noqa: E731 - deliberately unpicklable
        assert parallel_map(closure, [1, 2, 3], n_jobs=2, cpu_count=2) == [11, 12, 13]

    def test_work_errors_propagate(self):
        with pytest.raises(RuntimeError, match="work failed"):
            parallel_map(_boom, [1], n_jobs=1)
        with pytest.raises(RuntimeError, match="work failed"):
            parallel_map(_boom, [1, 2, 3, 4], n_jobs=2, cpu_count=2)

    def test_workers_never_exceed_items(self):
        # Two items on a "16-core" machine must still give two results.
        assert parallel_map(_square, [5, 6], n_jobs=16, cpu_count=16) == [25, 36]
