"""Band-pass receiver and wireless channel."""

import numpy as np
import pytest

from repro.rf.channel import AwgnChannel
from repro.rf.pulse import PulseTrain
from repro.rf.receiver import BandPassReceiver


def _train(amplitudes, freqs):
    n = len(amplitudes)
    return PulseTrain(
        bit_indices=np.arange(n),
        amplitudes=np.asarray(amplitudes, dtype=float),
        center_frequencies_ghz=np.asarray(freqs, dtype=float),
    )


class TestReceiver:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BandPassReceiver(center_frequency_ghz=0.0)
        with pytest.raises(ValueError):
            BandPassReceiver(bandwidth_ghz=-1.0)

    def test_band_response_peaks_at_center(self):
        rx = BandPassReceiver(center_frequency_ghz=4.3, bandwidth_ghz=1.0)
        freqs = np.array([3.3, 4.3, 5.3])
        response = rx.band_response(freqs)
        assert response[1] == pytest.approx(1.0)
        assert response[0] == pytest.approx(response[2])
        assert response[0] < 1.0

    def test_block_power_of_empty_train_is_zero(self):
        assert BandPassReceiver().block_power(
            PulseTrain(bit_indices=[], amplitudes=[], center_frequencies_ghz=[])
        ) == 0.0

    def test_block_power_sums_pulse_energy(self):
        rx = BandPassReceiver(center_frequency_ghz=4.3, bandwidth_ghz=2.0)
        one = rx.block_power(_train([1.0], [4.3]))
        five = rx.block_power(_train([1.0] * 5, [4.3] * 5))
        assert five == pytest.approx(5.0 * one)

    def test_detuned_pulses_lose_power(self):
        rx = BandPassReceiver(center_frequency_ghz=4.3, bandwidth_ghz=1.0)
        on_band = rx.block_power(_train([1.0], [4.3]))
        # Compensate the 1/f pulse-energy factor so only the band matters.
        detuned = rx.block_power(_train([np.sqrt(6.0 / 4.3)], [6.0]))
        assert detuned < on_band

    def test_power_scales_with_amplitude_squared(self):
        rx = BandPassReceiver()
        one = rx.block_power(_train([1.0], [4.3]))
        double = rx.block_power(_train([2.0], [4.3]))
        assert double == pytest.approx(4.0 * one)


class TestChannel:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AwgnChannel(path_gain=0.0)
        with pytest.raises(ValueError):
            AwgnChannel(fading_sigma=-0.1)

    def test_ideal_channel_preserves_train(self):
        train = _train([1.0, 2.0], [4.3, 4.3])
        out = AwgnChannel().propagate(train)
        np.testing.assert_allclose(out.amplitudes, train.amplitudes)
        np.testing.assert_array_equal(out.bit_indices, train.bit_indices)

    def test_path_gain_scales_amplitudes(self):
        train = _train([1.0, 2.0], [4.3, 4.3])
        out = AwgnChannel(path_gain=0.5).propagate(train)
        np.testing.assert_allclose(out.amplitudes, [0.5, 1.0])

    def test_fading_perturbs_amplitudes(self):
        train = _train([1.0] * 100, [4.3] * 100)
        out = AwgnChannel(fading_sigma=0.05, seed=0).propagate(train)
        rel = out.amplitudes / train.amplitudes - 1.0
        assert rel.std() == pytest.approx(0.05, rel=0.3)

    def test_fading_never_negative(self):
        train = _train([1.0] * 200, [4.3] * 200)
        out = AwgnChannel(fading_sigma=1.0, seed=0).propagate(train)
        assert np.all(out.amplitudes >= 0.0)

    def test_propagate_does_not_mutate_input(self):
        train = _train([1.0], [4.3])
        AwgnChannel(path_gain=0.1, seed=0).propagate(train)
        assert train.amplitudes[0] == 1.0
