"""Run manifests: round-trip, schema validation, sink format."""

import json

import pytest

from repro.obs import manifest as m
from repro.obs.sink import JsonlSink, read_events, write_span_events
from repro.obs.trace import Span


def _sample_manifest() -> m.RunManifest:
    return m.RunManifest(
        run_id="20260101-000000-00001",
        command="table1",
        created="2026-01-01T00:00:00+0000",
        argv=["table1", "--trace"],
        environment=m.collect_environment(),
        git={"revision": "deadbeef", "dirty": False},
        config={"seed": 16, "chips": 40, "kde_samples": 30000},
        seeds={"experiment": 16},
        metrics={"counters": {"mc.devices_simulated": 100.0},
                 "gauges": {}, "histograms": {}},
        spans=[
            Span("table1", 1, None, 100.0, wall=2.0, cpu=1.9).to_dict(),
            Span("mc.run", 2, 1, 100.1, wall=1.0, cpu=0.9,
                 attributes={"n": 100}).to_dict(),
        ],
        results={"matches_paper_shape": True},
    )


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        manifest = _sample_manifest()
        path = m.write_manifest(manifest, str(tmp_path / "run"))
        assert path.endswith("manifest.json")
        loaded = m.load_manifest(path)
        assert loaded == manifest

    def test_load_accepts_run_directory(self, tmp_path):
        manifest = _sample_manifest()
        run_dir = str(tmp_path / "run")
        m.write_manifest(manifest, run_dir)
        assert m.load_manifest(run_dir).run_id == manifest.run_id

    def test_span_objects_reconstruct(self):
        spans = _sample_manifest().span_objects()
        assert [s.name for s in spans] == ["table1", "mc.run"]
        assert spans[1].parent_id == spans[0].span_id
        assert spans[1].attributes == {"n": 100}

    def test_config_and_seeds_survive(self, tmp_path):
        manifest = _sample_manifest()
        m.write_manifest(manifest, str(tmp_path))
        loaded = m.load_manifest(str(tmp_path))
        assert loaded.config == manifest.config
        assert loaded.seeds == manifest.seeds


class TestValidation:
    def test_sample_manifest_validates(self):
        assert m.validate(_sample_manifest().to_dict()) == []

    def test_packaged_schema_loads(self):
        schema = m.load_schema()
        assert schema["type"] == "object"
        assert "run_id" in schema["required"]

    def test_missing_required_field_fails(self):
        data = _sample_manifest().to_dict()
        del data["run_id"]
        errors = m.validate(data)
        assert any("run_id" in error for error in errors)

    def test_wrong_type_fails(self):
        data = _sample_manifest().to_dict()
        data["spans"] = "not-a-list"
        errors = m.validate(data)
        assert any("spans" in error for error in errors)

    def test_bad_span_entry_fails(self):
        data = _sample_manifest().to_dict()
        del data["spans"][0]["wall"]
        errors = m.validate(data)
        assert any("spans[0]" in error for error in errors)

    def test_written_file_is_valid_json(self, tmp_path):
        path = m.write_manifest(_sample_manifest(), str(tmp_path))
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert m.validate(data) == []


class TestEnvironment:
    def test_collect_environment_reports_versions(self):
        env = m.collect_environment()
        assert env["versions"]["python"]
        assert env["versions"]["numpy"]

    def test_git_revision_in_repo(self):
        info = m.git_revision()
        if info is None:
            pytest.skip("not running inside a git repository")
        assert len(info["revision"]) == 40

    def test_new_run_ids_are_strings(self):
        run_id = m.new_run_id()
        assert isinstance(run_id, str) and len(run_id) > 10


class TestSink:
    def test_span_events_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        spans = _sample_manifest().span_objects()
        with JsonlSink(path) as sink:
            write_span_events(sink, spans, run_id="r1")
        events = read_events(path, event="span")
        assert len(events) == 2
        assert events[0]["name"] == "table1"
        assert all(e["run_id"] == "r1" for e in events)

    def test_lazy_open_creates_nothing_when_silent(self, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        with JsonlSink(str(path)):
            pass
        assert not path.exists()

    def test_mixed_event_stream_filters(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with JsonlSink(path) as sink:
            sink.emit({"event": "bench", "component": "kde_density",
                       "seconds": 0.1})
            write_span_events(sink, _sample_manifest().span_objects())
        assert len(read_events(path)) == 3
        assert len(read_events(path, event="bench")) == 1
        assert len(read_events(path, event="span")) == 2
