"""Gaussian monocycle pulses and pulse trains."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rf.pulse import GaussianMonocycle, PulseTrain


class TestGaussianMonocycle:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            GaussianMonocycle(amplitude=-1.0, center_frequency_ghz=4.0)
        with pytest.raises(ValueError):
            GaussianMonocycle(amplitude=1.0, center_frequency_ghz=0.0)

    def test_peak_amplitude_is_normalized(self):
        pulse = GaussianMonocycle(amplitude=2.0, center_frequency_ghz=4.0)
        t = np.linspace(-1, 1, 20001)
        peak = np.abs(pulse.waveform(t)).max()
        assert peak == pytest.approx(2.0, rel=1e-4)

    def test_waveform_is_odd(self):
        pulse = GaussianMonocycle(amplitude=1.0, center_frequency_ghz=4.0)
        t = np.linspace(0.01, 0.5, 50)
        np.testing.assert_allclose(pulse.waveform(t), -pulse.waveform(-t))

    def test_energy_matches_numerical_integral(self):
        pulse = GaussianMonocycle(amplitude=1.5, center_frequency_ghz=4.3)
        t = np.linspace(-1.0, 1.0, 400001)
        numeric = np.trapezoid(pulse.waveform(t) ** 2, t)
        assert pulse.energy() == pytest.approx(numeric, rel=1e-4)

    @given(st.floats(min_value=0.1, max_value=5.0), st.floats(min_value=1.0, max_value=10.0))
    def test_energy_scales_with_amplitude_squared(self, amplitude, freq):
        one = GaussianMonocycle(amplitude=1.0, center_frequency_ghz=freq).energy()
        scaled = GaussianMonocycle(amplitude=amplitude, center_frequency_ghz=freq).energy()
        assert scaled == pytest.approx(amplitude**2 * one, rel=1e-9)

    def test_energy_decreases_with_frequency(self):
        low = GaussianMonocycle(amplitude=1.0, center_frequency_ghz=3.0).energy()
        high = GaussianMonocycle(amplitude=1.0, center_frequency_ghz=6.0).energy()
        assert high == pytest.approx(low / 2.0, rel=1e-9)


class TestPulseTrain:
    def _train(self, n=5):
        return PulseTrain(
            bit_indices=np.arange(n),
            amplitudes=np.full(n, 2.0),
            center_frequencies_ghz=np.full(n, 4.3),
        )

    def test_len(self):
        assert len(self._train(7)) == 7

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PulseTrain(bit_indices=[0, 1], amplitudes=[1.0], center_frequencies_ghz=[4.0, 4.0])

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ValueError):
            PulseTrain(bit_indices=[0], amplitudes=[-1.0], center_frequencies_ghz=[4.0])

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            PulseTrain(bit_indices=[0], amplitudes=[1.0], center_frequencies_ghz=[0.0])

    def test_pulse_energies_match_single_pulse(self):
        train = self._train(3)
        single = GaussianMonocycle(amplitude=2.0, center_frequency_ghz=4.3).energy()
        np.testing.assert_allclose(train.pulse_energies(), single)

    def test_pulses_iterator_yields_monocycles(self):
        pulses = list(self._train(3).pulses())
        assert len(pulses) == 3
        assert all(isinstance(p, GaussianMonocycle) for p in pulses)
        assert pulses[0].amplitude == 2.0
