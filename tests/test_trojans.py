"""Hardware Trojan models and attacker-side key recovery."""

import numpy as np
import pytest

from repro.crypto.bits import bytes_to_bits, random_key
from repro.process.parameters import nominal_350nm
from repro.rf.uwb import UwbTransmitter
from repro.testbed.chip import WirelessCryptoChip
from repro.trojans.amplitude import AmplitudeModulationTrojan
from repro.trojans.attacker import KeyRecoveryAttacker
from repro.trojans.frequency import FrequencyModulationTrojan


class _StubDie:
    """Minimal die object for chip-level tests."""

    def structure_params(self, structure):
        return nominal_350nm()

    def label(self):
        return "stub"


@pytest.fixture()
def emitted():
    n = 16
    return dict(
        bit_indices=np.arange(n),
        leaked_bits=np.tile([1, 0], n // 2),
        amplitudes=np.full(n, 2.0),
        center_frequencies_ghz=np.full(n, 4.3),
    )


class TestTrojanModels:
    def test_depth_validation(self):
        for cls in (AmplitudeModulationTrojan, FrequencyModulationTrojan):
            with pytest.raises(ValueError):
                cls(depth=0.0)
            with pytest.raises(ValueError):
                cls(depth=0.6)

    def test_amplitude_trojan_touches_only_amplitude(self, emitted):
        amp, freq = AmplitudeModulationTrojan(depth=0.1).modulate(**emitted)
        np.testing.assert_allclose(freq, emitted["center_frequencies_ghz"])
        mask = emitted["leaked_bits"] == 0
        np.testing.assert_allclose(amp[mask], 2.2)
        np.testing.assert_allclose(amp[~mask], 2.0)

    def test_frequency_trojan_touches_only_frequency(self, emitted):
        amp, freq = FrequencyModulationTrojan(depth=0.1).modulate(**emitted)
        np.testing.assert_allclose(amp, emitted["amplitudes"])
        mask = emitted["leaked_bits"] == 0
        np.testing.assert_allclose(freq[mask], 4.3 * 1.1)
        np.testing.assert_allclose(freq[~mask], 4.3)

    def test_modulate_does_not_mutate_inputs(self, emitted):
        before = emitted["amplitudes"].copy()
        AmplitudeModulationTrojan(depth=0.1).modulate(**emitted)
        np.testing.assert_array_equal(emitted["amplitudes"], before)

    def test_validate_rejects_length_mismatch(self, emitted):
        bad = dict(emitted)
        bad["leaked_bits"] = bad["leaked_bits"][:-1]
        with pytest.raises(ValueError, match="length"):
            AmplitudeModulationTrojan().modulate(**bad)

    def test_validate_rejects_non_binary_leak(self, emitted):
        bad = dict(emitted)
        bad["leaked_bits"] = np.full(len(bad["bit_indices"]), 2)
        with pytest.raises(ValueError, match="0 and 1"):
            FrequencyModulationTrojan().modulate(**bad)

    def test_repr_shows_depth(self):
        assert "0.08" in repr(AmplitudeModulationTrojan(depth=0.08))
        assert "0.05" in repr(FrequencyModulationTrojan(depth=0.05))


class TestKeyRecovery:
    def _intercept(self, trojan, key, n_blocks=60, mode="amplitude", rng_seed=0):
        chip = WirelessCryptoChip(die=_StubDie(), key=key, trojan=trojan)
        rng = np.random.default_rng(rng_seed)
        attacker = KeyRecoveryAttacker(mode=mode)
        for _ in range(n_blocks):
            plaintext = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
            attacker.observe(chip.transmit_plaintext(plaintext))
        return attacker

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            KeyRecoveryAttacker(mode="phase")

    def test_recovers_key_from_amplitude_trojan(self):
        key = random_key(rng=1)
        attacker = self._intercept(AmplitudeModulationTrojan(depth=0.05), key)
        assert attacker.coverage() == 1.0
        recovered = attacker.recover_key_bits()
        np.testing.assert_array_equal(recovered, bytes_to_bits(key))

    def test_recovers_key_from_frequency_trojan(self):
        key = random_key(rng=2)
        attacker = self._intercept(
            FrequencyModulationTrojan(depth=0.05), key, mode="frequency"
        )
        np.testing.assert_array_equal(attacker.recover_key_bits(), bytes_to_bits(key))

    def test_returns_none_with_partial_coverage(self):
        attacker = KeyRecoveryAttacker()
        # One observed block cannot cover all 128 positions.
        chip = WirelessCryptoChip(die=_StubDie(), key=random_key(rng=3),
                                  trojan=AmplitudeModulationTrojan())
        attacker.observe(chip.transmit_plaintext(b"\x01" * 16))
        assert attacker.coverage() < 1.0
        assert attacker.recover_key_bits() is None

    def test_trojan_free_device_shows_no_leak_margin(self):
        key = random_key(rng=4)
        attacker = self._intercept(None, key)
        assert attacker.leak_margin() < 1e-6

    def test_infested_device_shows_leak_margin(self):
        key = random_key(rng=5)
        attacker = self._intercept(AmplitudeModulationTrojan(depth=0.05), key)
        assert attacker.leak_margin() == pytest.approx(0.05, rel=0.2)
