"""Benchmark-regression harness: timing plumbing and the compare gate.

These tests cover the cheap pure logic only; the actual component workloads
(``build_cases``) are exercised by running ``benchmarks/bench_report.py``
itself (see the Makefile's ``bench`` target).
"""

import json

import pytest

from repro.benchreport import SCHEMA_VERSION, compare_reports, main, time_case


def _report(**results):
    return {"schema": SCHEMA_VERSION, "units": "seconds", "n_jobs": 1,
            "results": results}


class TestTimeCase:
    def test_returns_positive_seconds_and_runs_warmup(self):
        calls = []
        elapsed = time_case(lambda: calls.append(1), repeats=3, warmup=2)
        assert elapsed > 0.0
        assert len(calls) == 5  # 2 warmup + 3 timed


class TestCompareReports:
    def test_no_regression_within_threshold(self):
        current = _report(kde_density=0.11, table1=0.30)
        baseline = _report(kde_density=0.10, table1=0.30)
        assert compare_reports(current, baseline, threshold=0.20) == []

    def test_flags_component_over_threshold(self):
        current = _report(kde_density=0.13, table1=0.30)
        baseline = _report(kde_density=0.10, table1=0.30)
        failures = compare_reports(current, baseline, threshold=0.20)
        assert len(failures) == 1
        assert "kde_density" in failures[0]

    def test_speedups_and_new_components_pass(self):
        current = _report(kde_density=0.01, brand_new=9.9)
        baseline = _report(kde_density=0.10, retired=0.1)
        assert compare_reports(current, baseline) == []

    def test_disjoint_reports_are_an_error(self):
        failures = compare_reports(_report(a=1.0), _report(b=1.0))
        assert failures == ["no shared components between report and baseline"]

    def test_zero_baseline_entries_are_skipped(self):
        assert compare_reports(_report(a=5.0), _report(a=0.0)) == []


class TestCompareGateCli:
    """End-to-end gate semantics with a stubbed timing run."""

    @pytest.fixture()
    def stub_report(self, monkeypatch):
        report = _report(kde_density=0.10)
        monkeypatch.setattr(
            "repro.benchreport.run_report", lambda n_jobs=1, verbose=True: report
        )
        return report

    def test_exit_zero_without_baseline(self, stub_report, tmp_path):
        out = tmp_path / "report.json"
        assert main(["--output", str(out)]) == 0
        assert json.loads(out.read_text())["results"] == {"kde_density": 0.10}

    def test_exit_one_on_regression(self, stub_report, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_report(kde_density=0.05)))
        assert main(["--compare", str(baseline)]) == 1
        # A looser threshold lets the same report through.
        assert main(["--compare", str(baseline), "--threshold", "2.0"]) == 0
