"""n_jobs invariance: parallel runs are bit-identical to serial runs.

The parallelism contract (see ``repro.utils.parallel``) is that every work
item owns a pre-spawned random stream, so the *number* of workers can never
change a single bit of the output.  The CI box may have one CPU, so the
tests force real process pools by patching ``os.cpu_count``.
"""

from unittest import mock

import numpy as np
import pytest

from repro import obs
from repro.circuits.montecarlo import MonteCarloEngine
from repro.circuits.spicemodel import default_spice_deck
from repro.core.pipeline import GoldenChipFreeDetector
from repro.experiments.platformcfg import generate_experiment_data
from repro.testbed.campaign import FingerprintCampaign
from tests.conftest import small_detector_config, small_platform


def _with_fake_cores(n):
    return mock.patch("os.cpu_count", return_value=n)


@pytest.fixture(scope="module")
def engine():
    campaign = FingerprintCampaign.random_stimuli(nm=4, seed=0, noisy_bench=False)
    return MonteCarloEngine(default_spice_deck(), campaign, numerical_noise=0.0015)


class TestMonteCarloBitIdentity:
    # The pooled runs pin ``engine="loop"`` — only the loop engine
    # dispatches per-device work items to a pool (the batched engine is one
    # serial array program) — so each assertion covers pool-vs-serial *and*
    # loop-vs-batched identity at once.

    def test_pool_matches_serial(self, engine):
        serial = engine.run(16, seed=123, n_jobs=1)
        with _with_fake_cores(4):
            pooled = engine.run(16, seed=123, n_jobs=4, engine="loop")
        np.testing.assert_array_equal(pooled.pcms, serial.pcms)
        np.testing.assert_array_equal(pooled.fingerprints, serial.fingerprints)

    def test_generator_seed_also_invariant(self, engine):
        serial = engine.run(10, seed=np.random.default_rng(5), n_jobs=1)
        with _with_fake_cores(4):
            pooled = engine.run(10, seed=np.random.default_rng(5), n_jobs=4,
                                engine="loop")
        np.testing.assert_array_equal(pooled.fingerprints, serial.fingerprints)

    def test_excess_workers_are_harmless(self, engine):
        serial = engine.run(6, seed=1, n_jobs=1)
        with _with_fake_cores(4):
            pooled = engine.run(6, seed=1, n_jobs=-1, engine="loop")
        np.testing.assert_array_equal(pooled.fingerprints, serial.fingerprints)


class TestExperimentBitIdentity:
    def test_full_synthetic_experiment(self):
        # Covers both parallel stages at once: the Monte Carlo engine and
        # the noisy-instrument silicon measurement sweep (TF + T1 + T2).
        serial = generate_experiment_data(small_platform(n_chips=8, n_monte_carlo=20))
        with _with_fake_cores(4):
            # engine="loop" so the pools actually engage (the default
            # batched engine runs serially); also cross-checks the engines.
            pooled = generate_experiment_data(
                small_platform(n_chips=8, n_monte_carlo=20, n_jobs=4, engine="loop")
            )
        np.testing.assert_array_equal(pooled.sim_pcms, serial.sim_pcms)
        np.testing.assert_array_equal(pooled.sim_fingerprints, serial.sim_fingerprints)
        np.testing.assert_array_equal(pooled.dutt_pcms, serial.dutt_pcms)
        np.testing.assert_array_equal(
            pooled.dutt_fingerprints, serial.dutt_fingerprints
        )
        np.testing.assert_array_equal(pooled.infested, serial.infested)
        assert pooled.trojan_names == serial.trojan_names


class TestDetectorBitIdentity:
    def test_boundary_fits_match_serial(self, experiment_data):
        detectors = {}
        for n_jobs in (1, 4):
            detector = GoldenChipFreeDetector(small_detector_config(n_jobs=n_jobs))
            with _with_fake_cores(4):
                detector.fit_premanufacturing(
                    experiment_data.sim_pcms, experiment_data.sim_fingerprints
                )
                detector.fit_silicon(experiment_data.dutt_pcms)
            detectors[n_jobs] = detector
        serial, pooled = detectors[1], detectors[4]
        assert set(serial.boundaries) == set(pooled.boundaries)
        for name, region in serial.boundaries.items():
            other = pooled.boundaries[name]
            np.testing.assert_array_equal(
                other._learner.support_vectors_, region._learner.support_vectors_
            )
            np.testing.assert_array_equal(
                other._learner.dual_coefs_, region._learner.dual_coefs_
            )
            assert other._learner.rho_ == region._learner.rho_
        metrics_serial = serial.evaluate(
            experiment_data.dutt_fingerprints, experiment_data.infested
        )
        metrics_pooled = pooled.evaluate(
            experiment_data.dutt_fingerprints, experiment_data.infested
        )
        for name, metric in metrics_serial.items():
            assert metrics_pooled[name].fn_count == metric.fn_count
            assert metrics_pooled[name].fp_count == metric.fp_count


class TestTracingBitIdentity:
    """Instrumentation reads clocks only: tracing must not move one bit."""

    @pytest.fixture(autouse=True)
    def _clean_session(self):
        yield
        if obs.enabled():
            obs.disable()

    def test_traced_experiment_matches_untraced(self):
        plain = generate_experiment_data(small_platform(n_chips=8, n_monte_carlo=20))
        obs.enable()
        traced = generate_experiment_data(small_platform(n_chips=8, n_monte_carlo=20))
        spans, _ = obs.disable()
        assert spans, "tracing session recorded no spans"
        np.testing.assert_array_equal(traced.sim_pcms, plain.sim_pcms)
        np.testing.assert_array_equal(traced.sim_fingerprints, plain.sim_fingerprints)
        np.testing.assert_array_equal(traced.dutt_pcms, plain.dutt_pcms)
        np.testing.assert_array_equal(
            traced.dutt_fingerprints, plain.dutt_fingerprints
        )

    def test_traced_pool_matches_untraced_serial(self, engine):
        plain = engine.run(12, seed=77, n_jobs=1)
        obs.enable()
        with _with_fake_cores(4):
            traced = engine.run(12, seed=77, n_jobs=4, engine="loop")
        spans, _ = obs.disable()
        assert any(s.worker is not None for s in spans), "pool did not engage"
        np.testing.assert_array_equal(traced.pcms, plain.pcms)
        np.testing.assert_array_equal(traced.fingerprints, plain.fingerprints)

    def test_traced_detector_matches_untraced(self, experiment_data):
        def fit_and_evaluate():
            detector = GoldenChipFreeDetector(small_detector_config())
            detector.fit_premanufacturing(
                experiment_data.sim_pcms, experiment_data.sim_fingerprints
            )
            detector.fit_silicon(experiment_data.dutt_pcms)
            return detector.evaluate(
                experiment_data.dutt_fingerprints, experiment_data.infested
            )

        plain = fit_and_evaluate()
        obs.enable()
        traced = fit_and_evaluate()
        obs.disable()
        for name, metric in plain.items():
            assert traced[name].fn_count == metric.fn_count
            assert traced[name].fp_count == metric.fp_count
