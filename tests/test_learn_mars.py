"""MARS regression: hinge recovery, pruning, extrapolation, multi-output."""

import numpy as np
import pytest

from repro.learn.mars import BasisFunction, HingeTerm, MarsRegression, MultiOutputMars


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestHingeAlgebra:
    def test_hinge_evaluation(self):
        x = np.array([[0.0], [1.0], [3.0]])
        up = HingeTerm(variable=0, knot=1.0, sign=+1)
        down = HingeTerm(variable=0, knot=1.0, sign=-1)
        np.testing.assert_allclose(up.evaluate(x), [0.0, 0.0, 2.0])
        np.testing.assert_allclose(down.evaluate(x), [1.0, 0.0, 0.0])

    def test_basis_product(self):
        x = np.array([[2.0, 3.0]])
        basis = BasisFunction(
            terms=(HingeTerm(0, 1.0, +1), HingeTerm(1, 1.0, +1))
        )
        np.testing.assert_allclose(basis.evaluate(x), [2.0])

    def test_constant_basis(self):
        assert BasisFunction().degree() == 0
        np.testing.assert_allclose(BasisFunction().evaluate(np.zeros((3, 1))), 1.0)

    def test_uses_variable(self):
        basis = BasisFunction(terms=(HingeTerm(2, 0.0, +1),))
        assert basis.uses_variable(2)
        assert not basis.uses_variable(0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs", [dict(max_terms=0), dict(max_degree=0), dict(penalty=-1.0),
                   dict(n_knot_candidates=0)]
    )
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ValueError):
            MarsRegression(**kwargs)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MarsRegression().predict(np.zeros((1, 1)))


class TestFitting:
    def test_fits_linear_function_exactly(self, rng):
        x = rng.uniform(-2, 2, size=(150, 1))
        y = 3.0 * x[:, 0] + 1.0
        model = MarsRegression().fit(x, y)
        np.testing.assert_allclose(model.predict(x), y, atol=1e-6)

    def test_fits_absolute_value(self, rng):
        x = rng.uniform(-2, 2, size=(200, 1))
        y = np.abs(x[:, 0])
        model = MarsRegression().fit(x, y)
        test = np.array([[-1.0], [0.0], [1.0]])
        np.testing.assert_allclose(model.predict(test), [1.0, 0.0, 1.0], atol=0.05)

    def test_extrapolates_linearly(self, rng):
        x = rng.uniform(-2, 2, size=(200, 1))
        y = np.abs(x[:, 0])
        model = MarsRegression().fit(x, y)
        assert model.predict(np.array([[5.0]]))[0] == pytest.approx(5.0, abs=0.3)

    def test_prunes_noise_to_few_terms(self, rng):
        x = rng.uniform(-1, 1, size=(100, 1))
        y = rng.standard_normal(100)  # pure noise
        model = MarsRegression(max_terms=15, penalty=3.0).fit(x, y)
        assert model.n_basis_functions() <= 5

    def test_max_terms_caps_forward_pass(self, rng):
        x = rng.uniform(-2, 2, size=(200, 2))
        y = np.sin(2 * x[:, 0]) + np.cos(2 * x[:, 1])
        model = MarsRegression(max_terms=7, penalty=0.0).fit(x, y)
        assert model.n_basis_functions() <= 7

    def test_additive_model_handles_two_variables(self, rng):
        x = rng.uniform(-2, 2, size=(300, 2))
        y = np.abs(x[:, 0]) + 2.0 * np.maximum(0, x[:, 1])
        model = MarsRegression(max_terms=15).fit(x, y)
        residual = y - model.predict(x)
        assert residual.std() < 0.15 * y.std()

    def test_interactions_need_degree_two(self, rng):
        x = rng.uniform(-1, 1, size=(300, 2))
        y = np.maximum(0, x[:, 0]) * np.maximum(0, x[:, 1])
        additive = MarsRegression(max_degree=1).fit(x, y)
        interacting = MarsRegression(max_degree=2).fit(x, y)
        err_additive = np.std(y - additive.predict(x))
        err_interacting = np.std(y - interacting.predict(x))
        assert err_interacting < err_additive

    def test_gcv_recorded(self, rng):
        x = rng.uniform(-1, 1, size=(80, 1))
        model = MarsRegression().fit(x, x[:, 0])
        assert model.gcv_ is not None and model.gcv_ >= 0


class TestMultiOutput:
    def test_predicts_matrix(self, rng):
        x = rng.uniform(-1, 1, size=(120, 1))
        y = np.column_stack([2 * x[:, 0], -x[:, 0] + 1])
        model = MultiOutputMars().fit(x, y)
        pred = model.predict(x)
        assert pred.shape == y.shape
        np.testing.assert_allclose(pred, y, atol=1e-5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MultiOutputMars().predict(np.zeros((1, 1)))


class TestForwardEngines:
    """The fast forward pass must reproduce the reference lstsq engine."""

    @staticmethod
    def _basis_signature(model):
        return [
            [(t.variable, t.knot, t.sign) for t in basis.terms]
            for basis in model.basis_
        ]

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            MarsRegression(forward="newton")

    @pytest.mark.parametrize("seed", range(12))
    def test_bit_identical_selection_2d(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-2, 2, size=(150, 2))
        y = (np.abs(x[:, 0]) + np.maximum(0, x[:, 1])
             + 0.05 * rng.standard_normal(150))
        fast = MarsRegression(forward="fast").fit(x, y)
        slow = MarsRegression(forward="lstsq").fit(x, y)
        assert self._basis_signature(fast) == self._basis_signature(slow)
        np.testing.assert_array_equal(fast.coef_, slow.coef_)
        assert fast.gcv_ == slow.gcv_
        np.testing.assert_array_equal(fast.predict(x), slow.predict(x))

    @pytest.mark.parametrize("seed", range(6))
    def test_bit_identical_selection_1d(self, seed):
        """1-d inputs hit the structurally rank-deficient candidate regime."""
        rng = np.random.default_rng(100 + seed)
        x = rng.uniform(-1, 1, size=(120, 1))
        y = np.sin(3 * x[:, 0]) + 0.02 * rng.standard_normal(120)
        fast = MarsRegression(max_terms=15, forward="fast").fit(x, y)
        slow = MarsRegression(max_terms=15, forward="lstsq").fit(x, y)
        assert self._basis_signature(fast) == self._basis_signature(slow)
        np.testing.assert_array_equal(fast.coef_, slow.coef_)

    def test_bit_identical_with_interactions(self):
        rng = np.random.default_rng(42)
        x = rng.uniform(-1, 1, size=(200, 3))
        y = (np.maximum(0, x[:, 0]) * np.maximum(0, x[:, 1]) + x[:, 2]
             + 0.05 * rng.standard_normal(200))
        fast = MarsRegression(max_degree=2, forward="fast").fit(x, y)
        slow = MarsRegression(max_degree=2, forward="lstsq").fit(x, y)
        assert self._basis_signature(fast) == self._basis_signature(slow)
        np.testing.assert_array_equal(fast.coef_, slow.coef_)

    def test_duplicate_sample_values(self):
        """Tied knot candidates must not split the two engines."""
        rng = np.random.default_rng(3)
        x = rng.integers(-3, 4, size=(120, 2)).astype(float)  # heavy ties
        y = np.abs(x[:, 0]) + 0.1 * rng.standard_normal(120)
        fast = MarsRegression(forward="fast").fit(x, y)
        slow = MarsRegression(forward="lstsq").fit(x, y)
        assert self._basis_signature(fast) == self._basis_signature(slow)
        np.testing.assert_array_equal(fast.coef_, slow.coef_)

    def test_state_round_trip(self, rng):
        x = rng.uniform(-2, 2, size=(150, 2))
        y = np.abs(x[:, 0]) - x[:, 1]
        model = MarsRegression(max_terms=9).fit(x, y)
        clone = MarsRegression.from_state(model.to_state())
        np.testing.assert_array_equal(clone.predict(x), model.predict(x))
        assert clone.forward == model.forward
        assert self._basis_signature(clone) == self._basis_signature(model)
