"""Shared fixtures: one small synthetic experiment reused across test modules.

Generating silicon + simulation data is the expensive part of most
integration tests, so a reduced-size experiment is built once per session.
Unit tests that need raw populations (fingerprints, PCMs) slice it instead
of regenerating.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.pipeline import GoldenChipFreeDetector
from repro.experiments.platformcfg import PlatformConfig, generate_experiment_data


def small_platform(**overrides) -> PlatformConfig:
    """A reduced-size platform configuration for fast tests."""
    defaults = dict(n_chips=12, n_monte_carlo=40, seed=5)
    defaults.update(overrides)
    return PlatformConfig(**defaults)


def small_detector_config(**overrides) -> DetectorConfig:
    """A reduced-size detector configuration for fast tests."""
    defaults = dict(kde_samples=2000, svm_max_training_samples=400, seed=11)
    defaults.update(overrides)
    return DetectorConfig(**defaults)


@pytest.fixture(scope="session")
def experiment_data():
    """A small but complete synthetic experiment (sim + silicon)."""
    return generate_experiment_data(small_platform())


@pytest.fixture(scope="session")
def full_experiment_data():
    """The paper-sized experiment (40 chips, 100 MC devices)."""
    return generate_experiment_data(PlatformConfig())


@pytest.fixture(scope="session")
def fitted_detector(experiment_data):
    """A detector fitted on the small experiment."""
    detector = GoldenChipFreeDetector(small_detector_config())
    detector.fit_premanufacturing(
        experiment_data.sim_pcms, experiment_data.sim_fingerprints
    )
    detector.fit_silicon(experiment_data.dutt_pcms)
    return detector


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
