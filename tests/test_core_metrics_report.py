"""Detection metrics (Eq. 1-2) and Table-1 reporting."""

import numpy as np
import pytest

from repro.core.metrics import DetectionMetrics, evaluate_detection
from repro.core.report import BOUNDARY_TO_DATASET, format_table1, summarize_rates


class TestMetrics:
    def test_counts(self):
        #                 TF    TF     TI     TI
        predicted = [True, False, True, False]
        infested = [False, False, True, True]
        metrics = evaluate_detection(predicted, infested)
        assert metrics.fp_count == 1   # infested passed
        assert metrics.fn_count == 1   # clean flagged
        assert metrics.n_infested == 2
        assert metrics.n_trojan_free == 2

    def test_rates(self):
        metrics = DetectionMetrics(fp_count=2, fn_count=1, n_infested=8, n_trojan_free=4)
        assert metrics.fp_rate == pytest.approx(0.25)
        assert metrics.fn_rate == pytest.approx(0.25)

    def test_rates_with_empty_classes(self):
        metrics = DetectionMetrics(fp_count=0, fn_count=0, n_infested=0, n_trojan_free=0)
        assert metrics.fp_rate == 0.0
        assert metrics.fn_rate == 0.0

    def test_perfect_detection(self):
        predicted = np.array([True] * 5 + [False] * 10)
        infested = np.array([False] * 5 + [True] * 10)
        metrics = evaluate_detection(predicted, infested)
        assert metrics.fp_count == 0 and metrics.fn_count == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            evaluate_detection([True, False], [True])
        with pytest.raises(ValueError, match="1-D"):
            evaluate_detection(np.ones((2, 2), dtype=bool), np.ones((2, 2), dtype=bool))

    def test_as_row_format(self):
        metrics = DetectionMetrics(fp_count=0, fn_count=3, n_infested=80, n_trojan_free=40)
        assert metrics.as_row() == "0/80  3/40"


class TestReport:
    def _metrics(self):
        return {
            name: DetectionMetrics(fp_count=0, fn_count=i, n_infested=80, n_trojan_free=40)
            for i, name in enumerate(("B1", "B2", "B3", "B4", "B5"))
        }

    def test_format_contains_all_rows(self):
        text = format_table1(self._metrics())
        for dataset in ("S1", "S2", "S3", "S4", "S5"):
            assert dataset in text
        assert "0/80" in text and "4/40" in text

    def test_format_with_partial_results(self):
        metrics = {"B1": DetectionMetrics(0, 40, 80, 40)}
        text = format_table1(metrics)
        assert "S1" in text and "S5" not in text

    def test_format_empty_raises(self):
        with pytest.raises(ValueError):
            format_table1({})

    def test_title_included(self):
        assert format_table1(self._metrics(), title="Hello").startswith("Hello")

    def test_boundary_dataset_mapping(self):
        assert BOUNDARY_TO_DATASET["B5"] == "S5"

    def test_summarize_rates(self):
        rates = summarize_rates(self._metrics())
        assert rates["B3"]["fn_rate"] == pytest.approx(2 / 40)
        assert rates["B3"]["fp_rate"] == 0.0


class TestMarkdownReport:
    def _metrics(self):
        return {
            name: DetectionMetrics(fp_count=0, fn_count=i, n_infested=80, n_trojan_free=40)
            for i, name in enumerate(("B1", "B2", "B3", "B4", "B5"))
        }

    def test_markdown_rows(self):
        from repro.core.report import format_table1_markdown
        text = format_table1_markdown(self._metrics())
        assert text.startswith("| Data set | FP | FN |")
        assert "| S5 | 0/80 | 4/40 |" in text

    def test_markdown_with_paper_column(self):
        from repro.core.report import format_table1_markdown
        text = format_table1_markdown(self._metrics(), paper_fn={"B1": 40, "B5": 3})
        assert "Paper FN" in text
        assert "| 3/40 |" in text

    def test_markdown_empty_raises(self):
        from repro.core.report import format_table1_markdown
        import pytest
        with pytest.raises(ValueError):
            format_table1_markdown({})
