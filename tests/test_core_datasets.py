"""Dataset builders S1..S5."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.datasets import (
    DatasetBundle,
    build_all,
    build_s1,
    build_s3,
    build_s4,
    shift_pcm_population,
    tail_enhance,
    train_regressions,
)
from tests.conftest import small_detector_config


@pytest.fixture(scope="module")
def config():
    return small_detector_config()


class TestBundle:
    def test_missing_key_raises(self):
        with pytest.raises(KeyError, match="not built"):
            DatasetBundle()["S3"]

    def test_names_in_pipeline_order(self):
        bundle = DatasetBundle()
        bundle.sets["S5"] = np.zeros((1, 2))
        bundle.sets["S1"] = np.zeros((1, 2))
        assert bundle.names() == ["S1", "S5"]
        assert "S1" in bundle and "S2" not in bundle


class TestBuilders:
    def test_s1_is_a_copy(self, experiment_data):
        s1 = build_s1(experiment_data.sim_fingerprints)
        s1[0, 0] = -1.0
        assert experiment_data.sim_fingerprints[0, 0] != -1.0

    def test_tail_enhance_size_and_support(self, experiment_data, config):
        s2 = tail_enhance(experiment_data.sim_fingerprints, config, rng=0)
        assert s2.shape == (config.kde_samples, experiment_data.sim_fingerprints.shape[1])
        # The enhanced set must cover (and exceed) the original spread.
        assert s2.std(axis=0).min() >= 0.8 * experiment_data.sim_fingerprints.std(axis=0).min()

    def test_regressions_predict_reasonably(self, experiment_data, config):
        model = train_regressions(
            experiment_data.sim_pcms, experiment_data.sim_fingerprints, config
        )
        pred = model.predict(experiment_data.sim_pcms)
        residual = experiment_data.sim_fingerprints - pred
        r2 = 1.0 - residual.var(axis=0) / experiment_data.sim_fingerprints.var(axis=0)
        assert r2.mean() > 0.5

    def test_independent_mode_trains_per_output(self, experiment_data, config):
        from dataclasses import replace

        model = train_regressions(
            experiment_data.sim_pcms,
            experiment_data.sim_fingerprints,
            replace(config, regression_mode="independent"),
        )
        pred = model.predict(experiment_data.sim_pcms)
        assert pred.shape == experiment_data.sim_fingerprints.shape

    def test_s3_shape(self, experiment_data, config):
        model = train_regressions(
            experiment_data.sim_pcms, experiment_data.sim_fingerprints, config
        )
        s3 = build_s3(model, experiment_data.dutt_pcms)
        assert s3.shape == (
            experiment_data.dutt_pcms.shape[0],
            experiment_data.sim_fingerprints.shape[1],
        )

    def test_shifted_pcms_move_toward_silicon(self, experiment_data, config):
        shifted = shift_pcm_population(
            experiment_data.sim_pcms, experiment_data.dutt_pcms, config, rng=0
        )
        assert shifted.shape == (config.kmm_resample_size, experiment_data.sim_pcms.shape[1])
        sim_mean = experiment_data.sim_pcms.mean()
        silicon_mean = experiment_data.dutt_pcms.mean()
        assert abs(shifted.mean() - silicon_mean) < abs(sim_mean - silicon_mean)

    def test_s4_values_lie_on_regression_image(self, experiment_data, config):
        model = train_regressions(
            experiment_data.sim_pcms, experiment_data.sim_fingerprints, config
        )
        s4 = build_s4(
            model, experiment_data.sim_pcms, experiment_data.dutt_pcms, config, rng=0
        )
        # Every S4 row must equal the prediction of SOME simulated PCM.
        all_predictions = model.predict(experiment_data.sim_pcms)
        for row in s4[:10]:
            distances = np.abs(all_predictions - row).sum(axis=1)
            assert distances.min() < 1e-9

    def test_build_all_produces_all_five(self, experiment_data, config):
        bundle = build_all(
            experiment_data.sim_pcms,
            experiment_data.sim_fingerprints,
            experiment_data.dutt_pcms,
            config=config,
        )
        assert bundle.names() == ["S1", "S2", "S3", "S4", "S5"]
        assert bundle["S2"].shape[0] == config.kde_samples
        assert bundle["S5"].shape[0] == config.kde_samples

    def test_tail_enhance_is_seeded(self, experiment_data, config):
        a = tail_enhance(experiment_data.sim_fingerprints, config, rng=3)
        b = tail_enhance(experiment_data.sim_fingerprints, config, rng=3)
        np.testing.assert_array_equal(a, b)
