"""Process parameters and operating-point shifts."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.process.parameters import (
    PARAMETER_NAMES,
    OperatingPointShift,
    ProcessParameters,
    nominal_350nm,
)


class TestProcessParameters:
    def test_array_round_trip(self):
        params = nominal_350nm()
        assert ProcessParameters.from_array(params.as_array()) == params

    def test_from_array_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            ProcessParameters.from_array([1.0, 2.0])

    def test_perturbed_is_additive_and_pure(self):
        base = nominal_350nm()
        out = base.perturbed({"vth_n": 0.01})
        assert out.vth_n == pytest.approx(base.vth_n + 0.01)
        assert out.vth_p == base.vth_p
        assert base.vth_n == nominal_350nm().vth_n  # base untouched

    def test_perturbed_rejects_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown"):
            nominal_350nm().perturbed({"vdd": 0.1})

    def test_validate_rejects_nonphysical(self):
        with pytest.raises(ValueError):
            ProcessParameters(vth_n=2.0).validate()
        with pytest.raises(ValueError):
            ProcessParameters(tox=-1.0).validate()
        with pytest.raises(ValueError):
            ProcessParameters(mobility_n=0.0).validate()

    def test_parameter_names_match_fields(self):
        params = nominal_350nm()
        for name in PARAMETER_NAMES:
            assert hasattr(params, name)


class TestOperatingPointShift:
    def test_none_shift_is_identity(self):
        base = nominal_350nm()
        assert base.shifted(OperatingPointShift.none()) == base

    def test_shift_is_multiplicative(self):
        base = nominal_350nm()
        shifted = base.shifted(OperatingPointShift(relative={"tox": -0.10}))
        assert shifted.tox == pytest.approx(base.tox * 0.90)

    def test_rejects_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown"):
            OperatingPointShift(relative={"bogus": 0.1})

    def test_typical_drift_scales_linearly(self):
        one = OperatingPointShift.typical_drift(1.0)
        two = OperatingPointShift.typical_drift(2.0)
        for name, value in one.relative.items():
            assert two.relative[name] == pytest.approx(2.0 * value)

    def test_typical_drift_is_a_speed_up(self):
        drift = OperatingPointShift.typical_drift()
        assert drift.relative["vth_n"] < 0
        assert drift.relative["mobility_n"] > 0
        assert drift.relative["tox"] < 0

    def test_magnitude(self):
        assert OperatingPointShift.none().magnitude() == 0.0
        assert OperatingPointShift.typical_drift().magnitude() > 0

    @given(st.floats(min_value=0.0, max_value=3.0))
    def test_magnitude_scales(self, scale):
        base = OperatingPointShift.typical_drift(1.0).magnitude()
        assert OperatingPointShift.typical_drift(scale).magnitude() == pytest.approx(
            scale * base, abs=1e-12
        )

    def test_shifted_parameters_remain_physical_for_moderate_drift(self):
        base = nominal_350nm()
        shifted = base.shifted(OperatingPointShift.typical_drift(2.0))
        shifted.validate()
        assert np.all(shifted.as_array() > 0)
