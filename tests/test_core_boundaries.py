"""TrustedRegion: whitened-space one-class boundary."""

import numpy as np
import pytest

from repro.core.boundaries import TrustedRegion


@pytest.fixture()
def ray_population():
    """A strongly correlated population, like fingerprint block powers."""
    rng = np.random.default_rng(0)
    gains = 1.0 + 0.05 * rng.standard_normal(300)
    pattern = np.array([10.0, 12.0, 9.0, 11.0])
    noise = 0.02 * rng.standard_normal((300, 4))
    return gains[:, None] * pattern[None, :] + noise


def test_unfitted_raises():
    with pytest.raises(RuntimeError):
        TrustedRegion().predict_trojan_free(np.zeros((1, 4)))


def test_negative_noise_floor_rejected():
    with pytest.raises(ValueError):
        TrustedRegion(noise_floor_rel=-0.1)


def test_training_population_mostly_inside(ray_population):
    region = TrustedRegion(nu=0.1, noise_floor_rel=0.003, seed=0).fit(ray_population)
    inside = region.predict_trojan_free(ray_population)
    assert inside.mean() > 0.8


def test_gain_outlier_rejected(ray_population):
    region = TrustedRegion(nu=0.05, noise_floor_rel=0.003, seed=0).fit(ray_population)
    outlier = ray_population.mean(axis=0) * 1.5
    assert not region.predict_trojan_free(outlier[None, :])[0]


def test_off_ray_displacement_rejected(ray_population):
    """A Trojan-like pattern distortion is caught even at constant total power."""
    region = TrustedRegion(nu=0.05, noise_floor_rel=0.003, seed=0).fit(ray_population)
    center = ray_population.mean(axis=0)
    # Redistribute power between blocks without changing the total.
    distorted = center + np.array([+0.8, -0.8, +0.8, -0.8])
    assert region.predict_trojan_free(center[None, :])[0]
    assert not region.predict_trojan_free(distorted[None, :])[0]


def test_noise_floor_tolerates_measurement_noise(ray_population):
    rng = np.random.default_rng(1)
    tight = TrustedRegion(nu=0.05, noise_floor_rel=1e-6, seed=0).fit(ray_population)
    tolerant = TrustedRegion(nu=0.05, noise_floor_rel=0.01, seed=0).fit(ray_population)
    noisy = ray_population[:50] * (1.0 + 0.005 * rng.standard_normal((50, 4)))
    assert tolerant.predict_trojan_free(noisy).mean() >= tight.predict_trojan_free(noisy).mean()


def test_decision_scores_sign_matches_prediction(ray_population):
    region = TrustedRegion(nu=0.1, seed=0).fit(ray_population)
    points = np.vstack([ray_population[:10], ray_population[:5] * 2.0])
    scores = region.decision_scores(points)
    np.testing.assert_array_equal(scores >= 0, region.predict_trojan_free(points))


def test_fit_records_training_size(ray_population):
    region = TrustedRegion(seed=0).fit(ray_population)
    assert region.n_training_samples_ == 300


def test_accessors_exposed(ray_population):
    region = TrustedRegion(seed=0).fit(ray_population)
    assert region.whitener.scales_ is not None
    assert region.svm.rho_ is not None
