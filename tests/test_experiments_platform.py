"""Synthetic experimentation platform assembly."""

import numpy as np
import pytest

from repro.experiments.platformcfg import (
    PlatformConfig,
    build_foundry,
    build_deck,
    generate_experiment_data,
    rf_model_error,
)
from tests.conftest import small_platform


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [dict(nm=0), dict(n_chips=1), dict(n_monte_carlo=5), dict(drift_scale=-1.0)],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PlatformConfig(**kwargs)

    def test_rf_model_error_scales(self):
        zero = rf_model_error(0.0)
        one = rf_model_error(1.0)
        assert zero["uwb_pa"]["mobility_n"] == 0.0
        assert one["uwb_pa"]["mobility_n"] > 0.0


class TestGeneratedData:
    def test_shapes(self, experiment_data):
        n_chips = 12
        assert experiment_data.sim_pcms.shape == (40, 1)
        assert experiment_data.sim_fingerprints.shape == (40, 6)
        assert experiment_data.dutt_pcms.shape == (3 * n_chips, 1)
        assert experiment_data.dutt_fingerprints.shape == (3 * n_chips, 6)
        assert experiment_data.n_devices == 3 * n_chips

    def test_device_ordering_and_labels(self, experiment_data):
        n = 12
        assert not experiment_data.infested[:n].any()
        assert experiment_data.infested[n:].all()
        names = experiment_data.trojan_names
        assert set(names[:n]) == {"none"}
        assert set(names[n:2 * n]) == {"trojan-I-amplitude"}
        assert set(names[2 * n:]) == {"trojan-II-frequency"}

    def test_accessors(self, experiment_data):
        assert experiment_data.trojan_free_fingerprints().shape[0] == 12
        assert experiment_data.infested_fingerprints().shape[0] == 24
        assert experiment_data.infested_fingerprints("trojan-I-amplitude").shape[0] == 12

    def test_determinism(self):
        a = generate_experiment_data(small_platform(seed=3))
        b = generate_experiment_data(small_platform(seed=3))
        np.testing.assert_array_equal(a.dutt_fingerprints, b.dutt_fingerprints)

    def test_versions_share_pcm_structures_per_die(self, experiment_data):
        """PCMs belong to the die, so the three versions measure the same
        structure — readings differ only by instrument noise."""
        n = 12
        tf_pcms = experiment_data.dutt_pcms[:n, 0]
        t1_pcms = experiment_data.dutt_pcms[n:2 * n, 0]
        rel = np.abs(t1_pcms / tf_pcms - 1.0)
        assert rel.max() < 0.25  # same structure, bench noise only

    def test_trojans_shift_fingerprints(self, experiment_data):
        n = 12
        tf = experiment_data.dutt_fingerprints[:n]
        t1 = experiment_data.dutt_fingerprints[n:2 * n]
        t2 = experiment_data.dutt_fingerprints[2 * n:]
        # Amplitude trojan raises power; frequency trojan lowers captured power.
        assert t1.mean() > tf.mean()
        assert t2.mean() < tf.mean()

    def test_drift_moves_silicon_away_from_simulation(self):
        still = generate_experiment_data(small_platform(drift_scale=0.0,
                                                        rf_model_error_scale=0.0))
        drifted = generate_experiment_data(small_platform())
        def gap(data):
            return abs(data.dutt_pcms.mean() - data.sim_pcms.mean()) / data.sim_pcms.std()
        assert gap(drifted) > gap(still)

    def test_extended_pcms(self):
        data = generate_experiment_data(small_platform(extended_pcms=True))
        assert data.sim_pcms.shape[1] == 2
        assert data.dutt_pcms.shape[1] == 2

    def test_foundry_uses_drift_and_model_error(self):
        config = small_platform(drift_scale=1.0)
        deck = build_deck(config)
        foundry = build_foundry(config, deck, seed=0)
        assert foundry.operating_point != deck.nominal
        assert "uwb_pa" in foundry.analog_model_error


def test_full_pcm_suite():
    data = generate_experiment_data(small_platform(pcm_suite_name="full"))
    assert data.sim_pcms.shape[1] == 3
    assert data.dutt_pcms.shape[1] == 3

def test_pcm_suite_name_validated():
    import pytest
    with pytest.raises(ValueError, match="pcm_suite_name"):
        small_platform(pcm_suite_name="imaginary")
