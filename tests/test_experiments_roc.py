"""Operating-curve analysis."""

import numpy as np
import pytest

from repro.core.boundaries import TrustedRegion
from repro.experiments.roc import operating_curve


@pytest.fixture(scope="module")
def region_and_data(fitted_detector, experiment_data):
    return (
        fitted_detector.boundaries["B5"],
        experiment_data.dutt_fingerprints,
        experiment_data.infested,
    )


def test_curve_endpoints(region_and_data):
    region, fingerprints, infested = region_and_data
    curve = operating_curve(region, fingerprints, infested)
    first, last = curve.points[0], curve.points[-1]
    # threshold -inf: everything passes -> all Trojans escape, no false alarms.
    assert first.fp_count == int(infested.sum()) and first.fn_count == 0
    # threshold +inf: nothing passes -> no escapes, every clean device flagged.
    assert last.fp_count == 0 and last.fn_count == int((~infested).sum())


def test_fp_monotone_in_threshold(region_and_data):
    region, fingerprints, infested = region_and_data
    curve = operating_curve(region, fingerprints, infested)
    fp = [p.fp_count for p in curve.points]
    assert all(a >= b for a, b in zip(fp, fp[1:]))


def test_natural_point_matches_prediction(region_and_data):
    region, fingerprints, infested = region_and_data
    curve = operating_curve(region, fingerprints, infested)
    predictions = region.predict_trojan_free(fingerprints)
    assert curve.natural_point.fp_count == int(np.sum(predictions & infested))
    assert curve.natural_point.fn_count == int(np.sum(~predictions & ~infested))


def test_auc_perfect_for_separated_scores():
    rng = np.random.default_rng(0)
    clean = rng.standard_normal((100, 2)) * 0.1
    region = TrustedRegion(nu=0.05, seed=0).fit(clean)
    trojans = clean[:50] + 5.0
    fingerprints = np.vstack([clean, trojans])
    infested = np.array([False] * 100 + [True] * 50)
    curve = operating_curve(region, fingerprints, infested)
    assert curve.auc == pytest.approx(1.0)
    assert curve.zero_escape_fn() == 0


def test_rates_and_format(region_and_data):
    region, fingerprints, infested = region_and_data
    curve = operating_curve(region, fingerprints, infested)
    point = curve.natural_point
    assert 0.0 <= point.fp_rate <= 1.0
    assert 0.0 <= point.fn_rate <= 1.0
    text = curve.format()
    assert "AUC" in text and "zero escapes" in text


def test_label_shape_validated(region_and_data):
    region, fingerprints, _ = region_and_data
    with pytest.raises(ValueError, match="label"):
        operating_curve(region, fingerprints, np.zeros(3, dtype=bool))
