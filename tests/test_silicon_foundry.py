"""Foundry fabrication: operating point, lots, mismatch, model error."""

import numpy as np
import pytest

from repro.circuits.spicemodel import default_spice_deck
from repro.process.parameters import OperatingPointShift
from repro.silicon.foundry import Foundry


@pytest.fixture()
def deck():
    return default_spice_deck()


def _foundry(deck, **kwargs):
    defaults = dict(deck_nominal=deck.nominal, variation=deck.variation, seed=0)
    defaults.update(kwargs)
    return Foundry(**defaults)


class TestOperatingPoint:
    def test_no_shift_matches_deck(self, deck):
        assert _foundry(deck).operating_point == deck.nominal

    def test_drift_moves_operating_point(self, deck):
        foundry = _foundry(deck, shift=OperatingPointShift.typical_drift())
        assert foundry.operating_point.vth_n < deck.nominal.vth_n
        assert foundry.operating_point.mobility_n > deck.nominal.mobility_n


class TestFabrication:
    def test_rejects_nonpositive_counts(self, deck):
        with pytest.raises(ValueError):
            _foundry(deck).fabricate_lot(0)
        with pytest.raises(ValueError):
            _foundry(deck).fabricate(10, n_lots=0)

    def test_lot_count_and_identity(self, deck):
        dies = _foundry(deck).fabricate_lot(10)
        assert len(dies) == 10
        assert len({die.site.label() for die in dies}) == 10

    def test_dies_in_one_lot_share_lot_component(self, deck):
        # Dies of one lot scatter around a common lot draw, so the between-lot
        # spread of lot means must exceed the within-lot standard error.
        foundry = _foundry(deck)
        lot_means = []
        for _ in range(8):
            dies = foundry.fabricate_lot(12)
            lot_means.append(np.mean([d.die_params.vth_n for d in dies]))
        within = np.std([d.die_params.vth_n for d in foundry.fabricate_lot(12)])
        assert np.std(lot_means) > within / np.sqrt(12) * 1.5

    def test_fabricate_round_robin_lots(self, deck):
        foundry = _foundry(deck)
        dies = foundry.fabricate(10, n_lots=3)
        assert len(dies) == 10
        assert len({d.site.lot_id for d in dies}) == 3

    def test_fabrication_is_seeded(self, deck):
        a = _foundry(deck, seed=42).fabricate_lot(5)
        b = _foundry(deck, seed=42).fabricate_lot(5)
        assert [d.die_params for d in a] == [d.die_params for d in b]


class TestFabricatedDie:
    def test_structure_params_deterministic_per_name(self, deck):
        die = _foundry(deck).fabricate_lot(1)[0]
        assert die.structure_params("uwb_pa") == die.structure_params("uwb_pa")
        assert die.structure_params("uwb_pa") != die.structure_params("pcm.path")

    def test_structure_params_near_die_params(self, deck):
        die = _foundry(deck).fabricate_lot(1)[0]
        local = die.structure_params("uwb_pa")
        assert abs(local.vth_n / die.die_params.vth_n - 1.0) < 0.02

    def test_analog_model_error_applies_to_matching_structures(self, deck):
        error = {"uwb_pa": {"mobility_n": 0.10}}
        plain = _foundry(deck, seed=1).fabricate_lot(1)[0]
        skewed = _foundry(deck, seed=1, analog_model_error=error).fabricate_lot(1)[0]
        # Same mismatch seed stream -> the only difference is the error term.
        ratio = (
            skewed.structure_params("TF.uwb_pa").mobility_n
            / plain.structure_params("TF.uwb_pa").mobility_n
        )
        assert ratio == pytest.approx(1.10)
        # Non-matching structures are untouched.
        assert skewed.structure_params("pcm.path") == plain.structure_params("pcm.path")
