"""Gate delay model: structure checks and delay physics."""

import pytest

from repro.circuits.gates import Gate, inverter, nand2, nor2
from repro.circuits.mosfet import AlphaPowerMosfet, MosfetPolarity
from repro.process.parameters import nominal_350nm


@pytest.fixture()
def inv():
    return inverter()


def test_gate_polarity_is_enforced():
    n = AlphaPowerMosfet(MosfetPolarity.NMOS, width_um=4.0)
    p = AlphaPowerMosfet(MosfetPolarity.PMOS, width_um=8.0)
    with pytest.raises(ValueError, match="pull_down"):
        Gate(name="bad", pull_down=p, pull_up=p)
    with pytest.raises(ValueError, match="pull_up"):
        Gate(name="bad", pull_down=n, pull_up=n)


def test_standard_cells_construct():
    for gate in (inverter(), nand2(), nor2()):
        assert gate.input_capacitance_ff(nominal_350nm()) > 0


def test_delay_positive_and_increases_with_load(inv):
    params = nominal_350nm()
    d_small = inv.propagation_delay_ns(params, load_ff=5.0)
    d_large = inv.propagation_delay_ns(params, load_ff=50.0)
    assert 0 < d_small < d_large


def test_delay_rejects_negative_load(inv):
    with pytest.raises(ValueError):
        inv.propagation_delay_ns(nominal_350nm(), load_ff=-1.0)


def test_delay_is_average_of_edges(inv):
    params = nominal_350nm()
    rise = inv.edge_delay_ns(params, 10.0, "rise")
    fall = inv.edge_delay_ns(params, 10.0, "fall")
    assert inv.propagation_delay_ns(params, 10.0) == pytest.approx(0.5 * (rise + fall))


def test_edge_delay_rejects_unknown_edge(inv):
    with pytest.raises(ValueError, match="edge"):
        inv.edge_delay_ns(nominal_350nm(), 10.0, "sideways")


def test_faster_process_means_shorter_delay(inv):
    base = nominal_350nm()
    fast = base.perturbed({"vth_n": -0.02, "vth_p": -0.02, "mobility_n": 0.05,
                           "mobility_p": 0.05})
    assert inv.propagation_delay_ns(fast, 10.0) < inv.propagation_delay_ns(base, 10.0)


def test_more_parasitics_means_longer_delay(inv):
    base = nominal_350nm()
    loaded = base.perturbed({"cpar": 0.2})
    assert inv.propagation_delay_ns(loaded, 10.0) > inv.propagation_delay_ns(base, 10.0)


def test_drive_current_is_weaker_edge(inv):
    params = nominal_350nm()
    pd = inv.pull_down.saturation_current(params)
    pu = inv.pull_up.saturation_current(params)
    assert inv.drive_current(params) == pytest.approx(min(pd, pu))


def test_gate_delay_plausible_magnitude(inv):
    # A 350 nm inverter driving a small fan-out: tens to hundreds of ps.
    delay = inv.propagation_delay_ns(nominal_350nm(), load_ff=15.0)
    assert 0.005 < delay < 1.0
