"""RNG plumbing and argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    spawn_children,
    spawn_seed_sequences,
    structure_entropy,
)
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_in_range,
    check_matching_rows,
    check_positive,
    check_probability,
)


class TestRng:
    def test_as_generator_from_int_is_deterministic(self):
        assert as_generator(3).integers(0, 100) == as_generator(3).integers(0, 100)

    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_as_generator_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawn_children_are_independent_and_deterministic(self):
        a1, b1 = spawn_children(9, 2)
        a2, b2 = spawn_children(9, 2)
        assert a1.integers(0, 1 << 30) == a2.integers(0, 1 << 30)
        assert b1.integers(0, 1 << 30) == b2.integers(0, 1 << 30)
        # Distinct children produce distinct streams.
        c1, c2 = spawn_children(10, 2)
        assert c1.integers(0, 1 << 30) != c2.integers(0, 1 << 30)

    def test_spawn_children_from_generator(self):
        children = spawn_children(np.random.default_rng(0), 3)
        assert len(children) == 3

    def test_spawn_children_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)

    def test_spawn_seed_sequences_deterministic_and_prefix_stable(self):
        long = spawn_seed_sequences(9, 8)
        short = spawn_seed_sequences(9, 3)
        # Prefix stability: asking for more children never changes the
        # first ones, so a grown population keeps its existing devices.
        for a, b in zip(short, long):
            assert np.random.default_rng(a).integers(0, 1 << 30) == \
                np.random.default_rng(b).integers(0, 1 << 30)
        draws = [int(np.random.default_rng(s).integers(0, 1 << 30)) for s in long]
        assert len(set(draws)) == len(draws)

    def test_spawn_seed_sequences_from_generator_and_sequence(self):
        from_gen = spawn_seed_sequences(np.random.default_rng(4), 3)
        again = spawn_seed_sequences(np.random.default_rng(4), 3)
        assert [s.entropy for s in from_gen] == [s.entropy for s in again]
        from_seq = spawn_seed_sequences(np.random.SeedSequence(4), 2)
        assert all(isinstance(s, np.random.SeedSequence) for s in from_seq)
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -1)

    def test_structure_entropy_matches_utf8_bytes(self):
        name = "ring-oscillator-31"
        expected = tuple(np.frombuffer(name.encode("utf-8"), dtype=np.uint8).tolist())
        assert structure_entropy(name) == expected
        # Memoized: the same name returns the identical tuple object.
        assert structure_entropy(name) is structure_entropy(name)
        assert structure_entropy("pcm") != structure_entropy("pa")


class TestValidation:
    def test_check_2d_accepts_lists(self):
        out = check_2d([[1, 2], [3, 4]], "x")
        assert out.shape == (2, 2)
        assert out.dtype == float

    def test_check_2d_rejects_1d_and_empty(self):
        with pytest.raises(ValueError, match="must be 2-D"):
            check_2d([1, 2, 3], "x")
        with pytest.raises(ValueError, match="at least one sample"):
            check_2d(np.empty((0, 3)), "x")

    def test_check_2d_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_2d([[1.0, np.nan]], "x")

    def test_check_1d(self):
        assert check_1d([1, 2], "v").shape == (2,)
        with pytest.raises(ValueError):
            check_1d([[1, 2]], "v")

    def test_check_positive(self):
        assert check_positive(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_positive(0.0, "p")

    def test_check_probability(self):
        assert check_probability(1.0, "nu") == 1.0
        with pytest.raises(ValueError):
            check_probability(0.0, "nu")
        with pytest.raises(ValueError):
            check_probability(1.5, "nu")

    def test_check_in_range(self):
        assert check_in_range(0.5, 0, 1, "a") == 0.5
        with pytest.raises(ValueError):
            check_in_range(2.0, 0, 1, "a")

    def test_check_matching_rows(self):
        a = np.zeros((3, 2))
        check_matching_rows(a, np.zeros((3, 5)), "a", "b")
        with pytest.raises(ValueError):
            check_matching_rows(a, np.zeros((4, 2)), "a", "b")
