"""UWB transmitter: process dependence, OOK emission, trojan hooks."""

import numpy as np
import pytest

from repro.process.parameters import nominal_350nm
from repro.rf.uwb import UwbTransmitter
from repro.trojans.amplitude import AmplitudeModulationTrojan


@pytest.fixture()
def tx():
    return UwbTransmitter(pa_params=nominal_350nm())


def test_amplitude_and_frequency_plausible(tx):
    assert 0.5 < tx.output_amplitude() < 3.2
    assert 2.0 < tx.center_frequency_ghz() < 8.0


def test_amplitude_responds_to_pa_process():
    base = UwbTransmitter(pa_params=nominal_350nm())
    strong = UwbTransmitter(pa_params=nominal_350nm().perturbed({"mobility_n": 0.1}))
    assert strong.output_amplitude() > base.output_amplitude()


def test_frequency_responds_to_shaper_process():
    base = UwbTransmitter(pa_params=nominal_350nm())
    slowed = UwbTransmitter(
        pa_params=nominal_350nm(),
        shaper_params=nominal_350nm().perturbed({"cpar": 0.2}),
    )
    assert slowed.center_frequency_ghz() < base.center_frequency_ghz()


def test_shaper_defaults_to_pa_params():
    params = nominal_350nm()
    tx = UwbTransmitter(pa_params=params)
    assert tx.shaper_params == params


def test_amplitude_clips_below_rail():
    very_fast = nominal_350nm().perturbed({"mobility_n": 3.0})
    tx = UwbTransmitter(pa_params=very_fast)
    assert tx.output_amplitude() <= 0.95 * tx.vdd


def test_ook_emits_one_pulse_per_one_bit(tx):
    bits = np.array([1, 0, 1, 1, 0, 0, 1])
    train = tx.transmit(bits)
    assert len(train) == 4
    np.testing.assert_array_equal(train.bit_indices, [0, 2, 3, 6])


def test_all_zero_block_is_silent(tx):
    assert len(tx.transmit(np.zeros(16, dtype=int))) == 0


def test_transmit_validates_bits(tx):
    with pytest.raises(ValueError, match="only 0 and 1"):
        tx.transmit(np.array([0, 2, 1]))
    with pytest.raises(ValueError, match="1-D"):
        tx.transmit(np.zeros((2, 8), dtype=int))


def test_trojan_requires_key_bits(tx):
    with pytest.raises(ValueError, match="key_bits"):
        tx.transmit(np.ones(8, dtype=int), trojan=AmplitudeModulationTrojan())


def test_trojan_requires_matching_key_length(tx):
    with pytest.raises(ValueError, match="shape"):
        tx.transmit(
            np.ones(8, dtype=int),
            trojan=AmplitudeModulationTrojan(),
            key_bits=np.ones(4, dtype=int),
        )


def test_trojan_modulates_key_zero_pulses(tx):
    bits = np.ones(8, dtype=int)
    key = np.array([1, 0, 1, 0, 1, 0, 1, 0])
    clean = tx.transmit(bits)
    dirty = tx.transmit(bits, trojan=AmplitudeModulationTrojan(depth=0.1), key_bits=key)
    ratio = dirty.amplitudes / clean.amplitudes
    np.testing.assert_allclose(ratio[key == 1], 1.0)
    np.testing.assert_allclose(ratio[key == 0], 1.1)


def test_analog_quantities_are_cached(tx):
    # Both quantities are pure functions of frozen process parameters and
    # are read once per transmitted block; the transmitter memoizes them.
    assert tx.output_amplitude() == tx.output_amplitude()
    assert tx._amplitude is not None
    tx._amplitude = 123.0  # poke the cache to prove reads come from it
    assert tx.output_amplitude() == 123.0
    assert tx.center_frequency_ghz() == tx.center_frequency_ghz()
    tx._frequency_ghz = 4.5
    assert tx.center_frequency_ghz() == 4.5


def test_clean_transmission_is_uniform(tx):
    train = tx.transmit(np.ones(16, dtype=int))
    assert np.ptp(train.amplitudes) == 0.0
    assert np.ptp(train.center_frequencies_ghz) == 0.0
