"""Generalized Pareto tail enhancement."""

import numpy as np
import pytest

from repro.stats.evt import GpdTailEnhancer


@pytest.fixture()
def gaussian_data():
    return np.random.default_rng(0).standard_normal((400, 3))


class TestValidation:
    def test_threshold_quantile_range(self):
        with pytest.raises(ValueError):
            GpdTailEnhancer(threshold_quantile=0.3)
        with pytest.raises(ValueError):
            GpdTailEnhancer(threshold_quantile=0.99)

    def test_shape_cap_positive(self):
        with pytest.raises(ValueError):
            GpdTailEnhancer(shape_cap=0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GpdTailEnhancer().sample(10)
        with pytest.raises(RuntimeError):
            GpdTailEnhancer().tail_quantile(0.01)


class TestFit:
    def test_threshold_at_requested_quantile(self, gaussian_data):
        enhancer = GpdTailEnhancer(threshold_quantile=0.8).fit(gaussian_data)
        radii = np.linalg.norm(
            enhancer._whitener.transform(gaussian_data), axis=1
        )
        assert enhancer.threshold_ == pytest.approx(np.quantile(radii, 0.8))

    def test_gpd_shape_is_capped(self, gaussian_data):
        enhancer = GpdTailEnhancer(shape_cap=0.2).fit(gaussian_data)
        assert enhancer.gpd_shape_ <= 0.2

    def test_tiny_sample_falls_back_to_exponential(self):
        data = np.random.default_rng(0).standard_normal((8, 2))
        enhancer = GpdTailEnhancer().fit(data)
        assert enhancer.gpd_scale_ > 0


class TestSampling:
    def test_sample_shape_and_determinism(self, gaussian_data):
        enhancer = GpdTailEnhancer().fit(gaussian_data)
        a = enhancer.sample(500, rng=1)
        b = enhancer.sample(500, rng=1)
        assert a.shape == (500, 3)
        np.testing.assert_array_equal(a, b)

    def test_samples_match_body_statistics(self, gaussian_data):
        enhancer = GpdTailEnhancer().fit(gaussian_data)
        samples = enhancer.sample(20_000, rng=0)
        # Mean preserved; spread within a reasonable factor of the data.
        np.testing.assert_allclose(samples.mean(axis=0), gaussian_data.mean(axis=0),
                                   atol=0.15)
        ratio = samples.std(axis=0) / gaussian_data.std(axis=0)
        assert np.all(ratio > 0.7) and np.all(ratio < 1.6)

    def test_enhancement_extends_the_tail(self, gaussian_data):
        enhancer = GpdTailEnhancer().fit(gaussian_data)
        samples = enhancer.sample(20_000, rng=0)
        data_max = np.linalg.norm(
            enhancer._whitener.transform(gaussian_data), axis=1
        ).max()
        sample_max = np.linalg.norm(
            enhancer._whitener.transform(samples), axis=1
        ).max()
        assert sample_max > data_max

    def test_sample_size_validation(self, gaussian_data):
        with pytest.raises(ValueError):
            GpdTailEnhancer().fit(gaussian_data).sample(0)


class TestTailQuantile:
    def test_monotone_in_probability(self, gaussian_data):
        enhancer = GpdTailEnhancer().fit(gaussian_data)
        assert enhancer.tail_quantile(0.01) > enhancer.tail_quantile(0.1)

    def test_quantile_above_threshold(self, gaussian_data):
        enhancer = GpdTailEnhancer().fit(gaussian_data)
        assert enhancer.tail_quantile(0.05) >= enhancer.threshold_

    def test_probability_validated(self, gaussian_data):
        enhancer = GpdTailEnhancer(threshold_quantile=0.7).fit(gaussian_data)
        with pytest.raises(ValueError):
            enhancer.tail_quantile(0.5)  # beyond the modelled tail mass
