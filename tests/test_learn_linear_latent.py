"""Linear baselines, the latent-gain regressor and model selection."""

import numpy as np
import pytest

from repro.learn.latent import LatentGainMars
from repro.learn.linear import LinearRegression, RidgeRegression
from repro.learn.model_selection import grid_search_regression, kfold_indices


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestLinearRegression:
    def test_exact_fit(self, rng):
        x = rng.standard_normal((100, 2))
        y = 2.0 * x[:, 0] - 3.0 * x[:, 1] + 5.0
        model = LinearRegression().fit(x, y)
        np.testing.assert_allclose(model.coef_, [2.0, -3.0], atol=1e-10)
        assert model.intercept_ == pytest.approx(5.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.zeros((1, 2)))


class TestRidgeRegression:
    def test_alpha_zero_matches_ols(self, rng):
        x = rng.standard_normal((100, 2))
        y = x[:, 0] + 0.1 * rng.standard_normal(100)
        ols = LinearRegression().fit(x, y)
        ridge = RidgeRegression(alpha=0.0).fit(x, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_regularization_shrinks_coefficients(self, rng):
        x = rng.standard_normal((50, 2))
        y = 5.0 * x[:, 0]
        weak = RidgeRegression(alpha=0.01).fit(x, y)
        strong = RidgeRegression(alpha=100.0).fit(x, y)
        assert abs(strong.coef_[0]) < abs(weak.coef_[0])

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)

    def test_intercept_not_penalized(self, rng):
        x = rng.standard_normal((200, 1))
        y = np.full(200, 10.0)
        model = RidgeRegression(alpha=1000.0).fit(x, y)
        assert model.predict(np.zeros((1, 1)))[0] == pytest.approx(10.0, abs=0.1)


class TestLatentGainMars:
    def test_predictions_are_exactly_proportional(self, rng):
        x = rng.uniform(0.8, 1.2, size=(120, 1))
        means = np.array([10.0, 20.0, 30.0])
        gains = 1.0 + 0.5 * (x[:, 0] - 1.0)
        y = gains[:, None] * means[None, :]
        model = LatentGainMars().fit(x, y)
        pred = model.predict(x)
        ratios = pred / pred[:, :1]
        np.testing.assert_allclose(ratios - ratios[0][None, :], 0.0, atol=1e-12)

    def test_recovers_gain_relation(self, rng):
        x = rng.uniform(0.8, 1.2, size=(200, 1))
        means = np.array([10.0, 20.0])
        gains = 1.0 + 0.6 * (x[:, 0] - 1.0)
        y = gains[:, None] * means[None, :]
        model = LatentGainMars().fit(x, y)
        # The latent gain is defined relative to the training means, so check
        # the reconstructed fingerprints rather than the raw gain scale.
        np.testing.assert_allclose(model.predict(x), y, rtol=1e-3)

    def test_rejects_zero_mean_feature(self, rng):
        x = rng.uniform(0, 1, size=(50, 1))
        y = np.column_stack([x[:, 0], np.zeros(50)])
        with pytest.raises(ValueError, match="zero mean"):
            LatentGainMars().fit(x, y)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LatentGainMars().predict(np.zeros((1, 1)))
        with pytest.raises(RuntimeError):
            LatentGainMars().predict_gain(np.zeros((1, 1)))


class TestModelSelection:
    def test_kfold_partitions_everything(self):
        splits = kfold_indices(20, 4, rng=0)
        assert len(splits) == 4
        all_test = np.concatenate([test for _, test in splits])
        assert sorted(all_test.tolist()) == list(range(20))
        for train, test in splits:
            assert set(train) & set(test) == set()

    def test_kfold_validation(self):
        with pytest.raises(ValueError):
            kfold_indices(1, 2)
        with pytest.raises(ValueError):
            kfold_indices(10, 11)

    def test_grid_search_finds_better_alpha(self, rng):
        x = rng.standard_normal((80, 5))
        y = x[:, 0] + 0.05 * rng.standard_normal(80)
        result = grid_search_regression(
            RidgeRegression, {"alpha": [0.01, 1000.0]}, x, y, k=4, rng=0
        )
        assert result.best_params == {"alpha": 0.01}
        assert len(result.all_scores) == 2
        assert result.best_score <= min(score for _, score in result.all_scores)
