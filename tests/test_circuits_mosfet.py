"""Alpha-power MOSFET model: monotonicity and scaling laws."""

import pytest

from repro.circuits.mosfet import DEFAULT_VDD, AlphaPowerMosfet, MosfetPolarity
from repro.process.parameters import nominal_350nm


@pytest.fixture()
def nmos():
    return AlphaPowerMosfet(MosfetPolarity.NMOS, width_um=10.0)


@pytest.fixture()
def pmos():
    return AlphaPowerMosfet(MosfetPolarity.PMOS, width_um=10.0)


def test_rejects_nonpositive_dimensions():
    with pytest.raises(ValueError):
        AlphaPowerMosfet(MosfetPolarity.NMOS, width_um=0.0)
    with pytest.raises(ValueError):
        AlphaPowerMosfet(MosfetPolarity.NMOS, width_um=1.0, length_um=-1.0)


def test_polarity_selects_threshold(nmos, pmos):
    params = nominal_350nm()
    assert nmos.threshold(params) == params.vth_n
    assert pmos.threshold(params) == params.vth_p


def test_current_scales_with_width():
    params = nominal_350nm()
    narrow = AlphaPowerMosfet(MosfetPolarity.NMOS, width_um=5.0)
    wide = AlphaPowerMosfet(MosfetPolarity.NMOS, width_um=10.0)
    ratio = wide.saturation_current(params) / narrow.saturation_current(params)
    assert ratio == pytest.approx(2.0)


def test_current_increases_with_mobility(nmos):
    base = nominal_350nm()
    faster = base.perturbed({"mobility_n": 0.1})
    assert nmos.saturation_current(faster) > nmos.saturation_current(base)


def test_current_decreases_with_threshold(nmos):
    base = nominal_350nm()
    slower = base.perturbed({"vth_n": 0.05})
    assert nmos.saturation_current(slower) < nmos.saturation_current(base)


def test_current_decreases_with_thicker_oxide(nmos):
    base = nominal_350nm()
    thicker = base.perturbed({"tox": 0.5})
    assert nmos.saturation_current(thicker) < nmos.saturation_current(base)


def test_alpha_power_law_exponent(nmos):
    params = nominal_350nm()
    i1 = nmos.saturation_current(params, vdd=2.5)
    i2 = nmos.saturation_current(params, vdd=3.3)
    expected = ((3.3 - params.vth_n) / (2.5 - params.vth_n)) ** nmos.alpha
    assert i2 / i1 == pytest.approx(expected)


def test_cutoff_raises(nmos):
    params = nominal_350nm()
    with pytest.raises(ValueError, match="does not conduct"):
        nmos.saturation_current(params, vdd=params.vth_n)


def test_nmos_stronger_than_pmos_at_equal_size(nmos, pmos):
    params = nominal_350nm()
    assert nmos.saturation_current(params) > pmos.saturation_current(params)


def test_input_capacitance_scales_with_area():
    params = nominal_350nm()
    small = AlphaPowerMosfet(MosfetPolarity.NMOS, width_um=2.0)
    large = AlphaPowerMosfet(MosfetPolarity.NMOS, width_um=8.0)
    assert large.input_capacitance_ff(params) == pytest.approx(
        4.0 * small.input_capacitance_ff(params)
    )


def test_plausible_current_magnitude(nmos):
    # A 10/0.35 device at 3.3 V should drive on the order of milliamperes.
    current = nmos.saturation_current(nominal_350nm(), DEFAULT_VDD)
    assert 1e-4 < current < 1e-2
