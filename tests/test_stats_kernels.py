"""Kernel functions and the median heuristic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats.kernels import (
    linear_kernel,
    median_heuristic_gamma,
    polynomial_kernel,
    rbf_kernel,
)

finite_matrix = arrays(
    dtype=float,
    shape=st.tuples(st.integers(2, 8), st.integers(1, 4)),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
)


class TestRbf:
    def test_diagonal_is_one(self):
        x = np.random.default_rng(0).standard_normal((6, 3))
        np.testing.assert_allclose(np.diag(rbf_kernel(x, gamma=0.7)), 1.0)

    def test_symmetry(self):
        x = np.random.default_rng(0).standard_normal((6, 3))
        k = rbf_kernel(x, gamma=0.7)
        np.testing.assert_allclose(k, k.T)

    def test_known_value(self):
        x = np.array([[0.0], [1.0]])
        k = rbf_kernel(x, gamma=2.0)
        assert k[0, 1] == pytest.approx(np.exp(-2.0))

    def test_rectangular(self):
        x = np.zeros((3, 2))
        y = np.ones((5, 2))
        assert rbf_kernel(x, y, gamma=1.0).shape == (3, 5)

    def test_rejects_nonpositive_gamma(self):
        with pytest.raises(ValueError):
            rbf_kernel(np.zeros((2, 2)), gamma=0.0)

    @settings(max_examples=25)
    @given(finite_matrix)
    def test_values_in_unit_interval(self, x):
        k = rbf_kernel(x, gamma=0.5)
        assert np.all(k > 0) and np.all(k <= 1.0 + 1e-12)

    @settings(max_examples=15)
    @given(finite_matrix)
    def test_positive_semidefinite(self, x):
        k = rbf_kernel(x, gamma=0.5)
        eigvals = np.linalg.eigvalsh(k)
        assert eigvals.min() > -1e-8


class TestOtherKernels:
    def test_linear_matches_dot(self):
        x = np.random.default_rng(0).standard_normal((4, 3))
        np.testing.assert_allclose(linear_kernel(x), x @ x.T)

    def test_polynomial_degree_one_is_affine_linear(self):
        x = np.random.default_rng(0).standard_normal((4, 3))
        np.testing.assert_allclose(
            polynomial_kernel(x, degree=1, coef0=0.0, gamma=1.0), x @ x.T
        )

    def test_polynomial_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            polynomial_kernel(np.zeros((2, 2)), degree=0)


class TestMedianHeuristic:
    def test_matches_manual_median(self):
        x = np.array([[0.0], [1.0], [3.0]])
        # pairwise squared distances: 1, 9, 4 -> median 4.
        assert median_heuristic_gamma(x) == pytest.approx(1.0 / 8.0)

    def test_degenerate_data_returns_one(self):
        assert median_heuristic_gamma(np.zeros((5, 2))) == 1.0
        assert median_heuristic_gamma(np.zeros((1, 2))) == 1.0

    def test_subsampling_is_close_to_full(self):
        x = np.random.default_rng(0).standard_normal((3000, 2))
        full = median_heuristic_gamma(x, max_samples=3000)
        sub = median_heuristic_gamma(x, max_samples=500, rng=np.random.default_rng(1))
        assert sub == pytest.approx(full, rel=0.2)
