"""One-class SVM: ν-property, boundary behaviour, SMO convergence."""

import numpy as np
import pytest

from repro.learn.ocsvm import OneClassSvm


@pytest.fixture()
def gaussian_cloud():
    return np.random.default_rng(0).standard_normal((400, 2))


class TestValidation:
    def test_nu_range(self):
        with pytest.raises(ValueError):
            OneClassSvm(nu=0.0)
        with pytest.raises(ValueError):
            OneClassSvm(nu=1.5)

    def test_gamma_positive(self):
        with pytest.raises(ValueError):
            OneClassSvm(gamma=-1.0)

    def test_max_training_samples(self):
        with pytest.raises(ValueError):
            OneClassSvm(max_training_samples=1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            OneClassSvm().decision_function(np.zeros((1, 2)))


class TestNuProperty:
    @pytest.mark.parametrize("nu", [0.05, 0.1, 0.25])
    def test_training_outlier_fraction_close_to_nu(self, gaussian_cloud, nu):
        svm = OneClassSvm(nu=nu, seed=0).fit(gaussian_cloud)
        outlier_fraction = 1.0 - svm.training_inlier_fraction(gaussian_cloud)
        assert outlier_fraction == pytest.approx(nu, abs=0.05)

    def test_support_vector_fraction_at_least_nu(self, gaussian_cloud):
        nu = 0.2
        svm = OneClassSvm(nu=nu, seed=0).fit(gaussian_cloud)
        sv_fraction = svm.support_vectors_.shape[0] / gaussian_cloud.shape[0]
        assert sv_fraction >= nu - 0.02


class TestBoundary:
    def test_center_inside_far_point_outside(self, gaussian_cloud):
        svm = OneClassSvm(nu=0.1, seed=0).fit(gaussian_cloud)
        assert svm.predict_inside(np.array([[0.0, 0.0]]))[0]
        assert not svm.predict_inside(np.array([[8.0, 8.0]]))[0]

    def test_decision_function_decreases_outward(self, gaussian_cloud):
        # Fixed gamma: the median-heuristic kernel is deliberately broad and
        # can plateau inside the cloud, which is not what this test probes.
        svm = OneClassSvm(nu=0.1, gamma=1.0, seed=0).fit(gaussian_cloud)
        radii = np.array([[1.0, 0.0], [2.0, 0.0], [3.0, 0.0], [6.0, 0.0]])
        scores = svm.decision_function(radii)
        assert np.all(np.diff(scores) < 0)

    def test_bimodal_data_excludes_the_gap(self):
        rng = np.random.default_rng(0)
        clusters = np.vstack([
            rng.standard_normal((200, 2)) * 0.3 + [-3.0, 0.0],
            rng.standard_normal((200, 2)) * 0.3 + [+3.0, 0.0],
        ])
        svm = OneClassSvm(nu=0.05, gamma=2.0, seed=0).fit(clusters)
        assert svm.predict_inside(np.array([[-3.0, 0.0], [3.0, 0.0]])).all()
        assert not svm.predict_inside(np.array([[0.0, 0.0]]))[0]

    def test_explicit_gamma_is_used(self, gaussian_cloud):
        svm = OneClassSvm(nu=0.1, gamma=2.5, seed=0).fit(gaussian_cloud)
        assert svm.effective_gamma_ == 2.5


class TestSolver:
    def test_alpha_sums_to_one(self, gaussian_cloud):
        svm = OneClassSvm(nu=0.1, seed=0).fit(gaussian_cloud)
        assert svm.dual_coefs_.sum() == pytest.approx(1.0, abs=1e-8)

    def test_alpha_within_box(self, gaussian_cloud):
        nu = 0.1
        svm = OneClassSvm(nu=nu, seed=0).fit(gaussian_cloud)
        bound = 1.0 / (nu * gaussian_cloud.shape[0])
        assert np.all(svm.dual_coefs_ >= 0)
        assert np.all(svm.dual_coefs_ <= bound + 1e-12)

    def test_subsampling_caps_support_set(self):
        data = np.random.default_rng(0).standard_normal((3000, 2))
        svm = OneClassSvm(nu=0.5, max_training_samples=200, seed=0).fit(data)
        assert svm.support_vectors_.shape[0] <= 200

    def test_subsampling_is_deterministic(self):
        data = np.random.default_rng(0).standard_normal((1000, 2))
        a = OneClassSvm(nu=0.1, max_training_samples=300, seed=7).fit(data)
        b = OneClassSvm(nu=0.1, max_training_samples=300, seed=7).fit(data)
        np.testing.assert_array_equal(a.support_vectors_, b.support_vectors_)
        assert a.rho_ == b.rho_

    def test_converges_quickly_on_small_data(self):
        data = np.random.default_rng(0).standard_normal((50, 2))
        svm = OneClassSvm(nu=0.2, seed=0).fit(data)
        assert svm.n_iterations_ < 50_000
