"""Reference-implementation property tests for the vectorized hot paths.

The KDE density evaluation and the SMO solver were rewritten for speed; these
tests pin them against slow-but-obviously-correct references:

* the blocked GEMM density evaluation must match a per-observation Python
  loop over the kernel definition (Eq. 5-7) to 1e-12, for both the fixed and
  the adaptive estimate;
* the Epanechnikov offset sampler must satisfy the kernel's radial law
  (support inside the unit ball, E[r^2] = d / (d + 4));
* the SMO solver must keep reproducing a frozen reference solution
  (rho, gamma, support set) on a fixed fingerprint-sized problem, so any
  future "optimization" that changes the optimum is caught immediately.
"""

import numpy as np
import pytest

from repro.learn.ocsvm import OneClassSvm
from repro.stats.kde import (
    AdaptiveKde,
    EpanechnikovKde,
    _sample_unit_epanechnikov,
    unit_ball_volume,
)


def _loop_density(kde, points):
    """Per-observation transliteration of Eq. (5)/(7): f(x) = (1/M) sum_i
    Ke((x - m_i) / h_i) / h_i^d, evaluated in the estimator's working
    coordinates and mapped back through the whitening Jacobian."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    working = kde._to_working(points)
    train = kde._points
    m, d = train.shape
    if getattr(kde, "_lambdas", None) is not None:
        bandwidths = kde._h * kde._lambdas
    else:
        bandwidths = np.full(m, kde._h)
    coeff = 0.5 * (d + 2.0) / unit_ball_volume(d)
    out = np.empty(working.shape[0])
    for row, x in enumerate(working):
        total = 0.0
        for center, h in zip(train, bandwidths):
            t_sq = float(np.sum((x - center) ** 2)) / h**2
            if t_sq < 1.0:
                total += coeff * (1.0 - t_sq) / h**d
        out[row] = total / m
    return out * kde._jacobian()


@pytest.fixture(scope="module")
def clouds():
    rng = np.random.default_rng(2024)
    train = rng.standard_normal((180, 4)) @ np.diag([3.0, 1.0, 0.4, 0.05])
    # Queries that straddle the cloud: training points, near-misses, and
    # far-out probes whose density must be exactly zero in both paths.
    queries = np.vstack([
        train[:40],
        train[40:80] + 0.1 * rng.standard_normal((40, 4)),
        train[:10] + 50.0,
    ])
    return train, queries


class TestDensityMatchesLoop:
    def test_fixed_bandwidth(self, clouds):
        train, queries = clouds
        kde = EpanechnikovKde().fit(train)
        np.testing.assert_allclose(
            kde.density(queries), _loop_density(kde, queries), rtol=1e-12, atol=1e-15
        )

    def test_adaptive_bandwidth(self, clouds):
        train, queries = clouds
        kde = AdaptiveKde(alpha=0.5).fit(train)
        np.testing.assert_allclose(
            kde.density(queries), _loop_density(kde, queries), rtol=1e-12, atol=1e-15
        )

    def test_blocked_evaluation_is_invisible(self, clouds):
        # A tiny scratch budget forces many blocks; the split changes GEMM
        # shapes (1-ulp reassociation) but nothing beyond that.
        train, queries = clouds
        one_block = AdaptiveKde(alpha=0.5).fit(train)
        many_blocks = AdaptiveKde(alpha=0.5, max_block_bytes=4096).fit(train)
        np.testing.assert_allclose(
            one_block.density(queries), many_blocks.density(queries),
            rtol=1e-12, atol=1e-15,
        )

    def test_unwhitened_and_alpha_extremes(self, clouds):
        train, queries = clouds
        for kde in (
            EpanechnikovKde(whiten=False).fit(train),
            AdaptiveKde(alpha=0.0).fit(train),
            AdaptiveKde(alpha=1.0).fit(train),
        ):
            np.testing.assert_allclose(
                kde.density(queries), _loop_density(kde, queries),
                rtol=1e-12, atol=1e-15,
            )


class TestEpanechnikovSampler:
    def test_offsets_live_in_the_unit_ball(self):
        offsets = _sample_unit_epanechnikov(5000, 3, np.random.default_rng(1))
        radii = np.linalg.norm(offsets, axis=1)
        assert radii.max() <= 1.0

    @pytest.mark.parametrize("d", [1, 2, 6])
    def test_radial_second_moment(self, d):
        # The kernel's radial law gives E[r^2] = d / (d + 4).
        offsets = _sample_unit_epanechnikov(40_000, d, np.random.default_rng(d))
        observed = float(np.mean(np.sum(offsets**2, axis=1)))
        assert observed == pytest.approx(d / (d + 4.0), rel=0.03)

    def test_sampling_is_deterministic_per_seed(self, clouds):
        train, _ = clouds
        kde = AdaptiveKde(alpha=0.5).fit(train)
        np.testing.assert_array_equal(kde.sample(500, rng=9), kde.sample(500, rng=9))

    def test_fixed_kde_samples_stay_within_bandwidth_reach(self, clouds):
        train, _ = clouds
        kde = EpanechnikovKde(whiten=False).fit(train)
        samples = kde.sample(1000, rng=3)
        # Every sample is center + h * (unit-ball offset): its distance to
        # the nearest training point can be at most h.
        d2 = (
            np.sum(samples**2, axis=1)[:, None]
            + np.sum(train**2, axis=1)[None, :]
            - 2.0 * samples @ train.T
        )
        nearest = np.sqrt(np.maximum(d2.min(axis=1), 0.0))
        assert nearest.max() <= kde.h + 1e-9


class TestOcsvmReferenceFixture:
    """Frozen optimum of the SMO solver on a fingerprint-sized problem.

    The numbers were captured from the maximal-violating-pair solver on
    ``default_rng(42).standard_normal((400, 6))`` with nu=0.08; they pin both
    the solution (rho, support set) and the solver trajectory (iteration
    count).  A refactor may legitimately change the trajectory, but the
    optimum itself must stay put to ~1e-12.
    """

    def test_reference_solution(self):
        data = np.random.default_rng(42).standard_normal((400, 6))
        model = OneClassSvm(nu=0.08, seed=0).fit(data)
        assert model.rho_ == pytest.approx(0.3595916782773646, abs=1e-12)
        assert model.effective_gamma_ == pytest.approx(0.04598908353902973, abs=1e-14)
        assert model.support_vectors_.shape == (37, 6)
        assert model.n_iterations_ == 105
        assert float(model.support_vectors_.sum()) == pytest.approx(
            -17.660921191243737, abs=1e-10
        )
        assert float(np.linalg.norm(model.dual_coefs_)) == pytest.approx(
            0.17012268526666183, abs=1e-12
        )
        # nu bounds the training outlier fraction from above (soft ~ 1 - nu).
        assert model.training_inlier_fraction(data) == pytest.approx(0.92, abs=1e-12)

    def test_dual_feasibility(self):
        data = np.random.default_rng(42).standard_normal((400, 6))
        model = OneClassSvm(nu=0.08, seed=0).fit(data)
        c_bound = 1.0 / (0.08 * 400)
        assert float(model.dual_coefs_.sum()) == pytest.approx(1.0, abs=1e-9)
        assert model.dual_coefs_.min() > 0.0
        assert model.dual_coefs_.max() <= c_bound + 1e-12
