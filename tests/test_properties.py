"""Cross-cutting property tests (hypothesis) on pipeline invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boundaries import TrustedRegion
from repro.core.metrics import evaluate_detection
from repro.crypto.aes import AES128
from repro.crypto.bits import bytes_to_bits
from repro.process.parameters import nominal_350nm
from repro.rf.receiver import BandPassReceiver
from repro.rf.uwb import UwbTransmitter
from repro.stats.kde import AdaptiveKde
from repro.stats.pca import PrincipalComponentAnalysis
from repro.testbed.chip import WirelessCryptoChip
from repro.trojans.amplitude import AmplitudeModulationTrojan


class _StubDie:
    def structure_params(self, structure):
        return nominal_350nm()

    def label(self):
        return "stub"


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
def test_transmitted_ciphertext_is_decryptable(key, plaintext):
    """Channel-level invariant: the transmitted bits decrypt to the input."""
    chip = WirelessCryptoChip(die=_StubDie(), key=key)
    ciphertext = chip.encrypt(plaintext)
    train = chip.transmit_ciphertext(ciphertext)
    # OOK: the transmitted bit positions are exactly the '1' ciphertext bits.
    bits = bytes_to_bits(ciphertext)
    np.testing.assert_array_equal(np.flatnonzero(bits == 1), train.bit_indices)
    assert AES128(key).decrypt_block(ciphertext) == plaintext


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_trojan_never_reduces_amplitude(seed):
    """Paper encoding: key '0' increases, key '1' leaves untouched."""
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, 128)
    key_bits = rng.integers(0, 2, 128)
    tx = UwbTransmitter(pa_params=nominal_350nm())
    clean = tx.transmit(bits)
    dirty = tx.transmit(bits, trojan=AmplitudeModulationTrojan(depth=0.1),
                        key_bits=key_bits)
    assert np.all(dirty.amplitudes >= clean.amplitudes - 1e-12)


@settings(max_examples=15, deadline=None)
@given(st.floats(min_value=0.5, max_value=2.0))
def test_receiver_power_scale_invariance(gain):
    """Scaling all amplitudes by g scales block power by exactly g^2."""
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2, 64)
    tx = UwbTransmitter(pa_params=nominal_350nm())
    train = tx.transmit(bits)
    receiver = BandPassReceiver()
    base = receiver.block_power(train)
    train.amplitudes = train.amplitudes * gain
    assert receiver.block_power(train) == pytest.approx(gain**2 * base, rel=1e-9)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_metrics_partition_devices(seed):
    """FP + FN + correct counts always partition the population."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 50))
    predicted = rng.random(n) < 0.5
    infested = rng.random(n) < 0.5
    metrics = evaluate_detection(predicted, infested)
    caught = int(np.sum(~predicted & infested))
    passed_clean = int(np.sum(predicted & ~infested))
    assert metrics.fp_count + metrics.fn_count + caught + passed_clean == n


@settings(max_examples=10, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=-5.0, max_value=5.0),
)
def test_trusted_region_invariant_to_feature_scaling(scale, offset):
    """Whitening makes decisions invariant to affine feature re-scaling.

    Checked on probes far from the decision boundary: points *on* the
    boundary can legitimately flip under floating-point re-parametrization.
    """
    rng = np.random.default_rng(0)
    population = rng.standard_normal((150, 3))
    center = population.mean(axis=0, keepdims=True)
    far = center + 8.0
    probes = np.vstack([center, far])

    plain = TrustedRegion(nu=0.1, seed=0).fit(population)
    scaled = TrustedRegion(nu=0.1, seed=0).fit(population * scale + offset)
    expected = plain.predict_trojan_free(probes)
    assert expected.tolist() == [True, False]
    np.testing.assert_array_equal(
        expected, scaled.predict_trojan_free(probes * scale + offset)
    )


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_kde_samples_stay_in_plausible_region(seed):
    """KDE-enhanced samples never stray absurdly far from the data."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((60, 2))
    kde = AdaptiveKde(alpha=0.5).fit(data)
    samples = kde.sample(2000, rng=seed)
    data_reach = np.abs(data).max()
    assert np.abs(samples).max() < data_reach + 10.0


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_pca_preserves_total_variance(seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((40, 4)) * rng.uniform(0.1, 3.0, size=4)
    pca = PrincipalComponentAnalysis().fit(data)
    total = data.var(axis=0, ddof=1).sum()
    assert pca.explained_variance_.sum() == pytest.approx(total, rel=1e-9)
