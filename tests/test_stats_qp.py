"""Quadratic-programming front-end."""

import numpy as np
import pytest

from repro.stats.qp import solve_qp


def test_unconstrained_quadratic():
    # min 0.5 x'Ix + q'x -> x = -q
    result = solve_qp(P=np.eye(2), q=np.array([1.0, -2.0]))
    np.testing.assert_allclose(result.x, [-1.0, 2.0], atol=1e-6)
    assert result.converged


def test_box_constraint_binds():
    result = solve_qp(P=np.eye(1), q=np.array([-5.0]), lb=0.0, ub=2.0)
    assert result.x[0] == pytest.approx(2.0, abs=1e-8)


def test_equality_constraint():
    # min 0.5(x^2 + y^2) s.t. x + y = 1 -> x = y = 0.5
    result = solve_qp(
        P=np.eye(2),
        q=np.zeros(2),
        A_eq=np.array([[1.0, 1.0]]),
        b_eq=np.array([1.0]),
    )
    np.testing.assert_allclose(result.x, [0.5, 0.5], atol=1e-6)


def test_inequality_constraint():
    # min 0.5||x||^2 s.t. x0 >= 1  (written as -x0 <= -1)
    result = solve_qp(
        P=np.eye(2),
        q=np.zeros(2),
        G=np.array([[-1.0, 0.0]]),
        h=np.array([-1.0]),
    )
    np.testing.assert_allclose(result.x, [1.0, 0.0], atol=1e-6)


def test_kkt_at_interior_solution():
    rng = np.random.default_rng(0)
    m = rng.standard_normal((4, 4))
    P = m @ m.T + 0.5 * np.eye(4)
    q = rng.standard_normal(4)
    result = solve_qp(P=P, q=q, lb=-10.0, ub=10.0)
    gradient = P @ result.x + q
    assert np.linalg.norm(gradient) < 1e-5


def test_objective_value_reported():
    result = solve_qp(P=np.eye(1), q=np.array([0.0]), lb=1.0, ub=2.0)
    assert result.objective == pytest.approx(0.5, abs=1e-8)


def test_shape_validation():
    with pytest.raises(ValueError):
        solve_qp(P=np.eye(3), q=np.zeros(2))
    with pytest.raises(ValueError):
        solve_qp(P=np.eye(2), q=np.zeros(2), A_eq=np.ones((1, 3)), b_eq=np.ones(1))
    with pytest.raises(ValueError):
        solve_qp(P=np.eye(2), q=np.zeros(2), G=np.ones((1, 3)), h=np.ones(1))


def test_infeasible_bounds_rejected():
    with pytest.raises(ValueError):
        solve_qp(P=np.eye(1), q=np.zeros(1), lb=2.0, ub=1.0)


def test_warm_start_respects_bounds():
    result = solve_qp(P=np.eye(1), q=np.zeros(1), lb=0.0, ub=1.0, x0=np.array([5.0]))
    assert 0.0 <= result.x[0] <= 1.0


def test_asymmetric_p_is_symmetrized():
    P = np.array([[2.0, 0.5], [0.0, 2.0]])  # asymmetric on purpose
    result = solve_qp(P=P, q=np.array([-1.0, -1.0]))
    sym = 0.5 * (P + P.T)
    expected = np.linalg.solve(sym, [1.0, 1.0])
    np.testing.assert_allclose(result.x, expected, atol=1e-6)
