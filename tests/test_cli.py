"""Unified command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = ["--chips", "10", "--kde-samples", "1500"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table1_command(capsys):
    assert main(["table1", *FAST]) == 0
    out = capsys.readouterr().out
    assert "matches paper shape" in out
    assert "S5" in out


def test_figure4_command(capsys):
    assert main(["figure4", *FAST]) == 0
    out = capsys.readouterr().out
    assert "cover" in out


def test_audit_command(capsys):
    assert main(["audit", *FAST, "--boundary", "B5"]) == 0
    out = capsys.readouterr().out
    assert "flagged" in out


def test_audit_rejects_unknown_boundary():
    with pytest.raises(SystemExit):
        main(["audit", "--boundary", "B9"])


def test_generate_then_reuse(tmp_path, capsys):
    archive = tmp_path / "run.npz"
    assert main(["generate", str(archive), "--chips", "10"]) == 0
    assert archive.exists()

    assert main(["table1", "--data", str(archive), "--kde-samples", "1500"]) == 0
    out = capsys.readouterr().out
    assert "/20" in out  # 2 * 10 infested devices


def test_ablation_command(capsys):
    assert main(["ablation", "regression", *FAST]) == 0
    out = capsys.readouterr().out
    assert "regression" in out


def test_ablation_rejects_unknown_study():
    with pytest.raises(SystemExit):
        main(["ablation", "warp-drive"])
