"""PCM structures: path delay, ring oscillator, suites."""

import pytest

from repro.process.parameters import nominal_350nm
from repro.silicon.pcm import PCMSuite, PathDelayPCM, RingOscillatorPCM


class TestPathDelayPCM:
    def test_rejects_zero_stages(self):
        with pytest.raises(ValueError):
            PathDelayPCM(stage_count=0)

    def test_measure_positive_and_deterministic(self):
        pcm = PathDelayPCM()
        params = nominal_350nm()
        assert pcm.measure(params) > 0
        assert pcm.measure(params) == pcm.measure(params)

    def test_delay_scales_with_stage_count(self):
        params = nominal_350nm()
        short = PathDelayPCM(stage_count=11).measure(params)
        long = PathDelayPCM(stage_count=33).measure(params)
        assert long > 2.5 * short

    def test_tracks_process_speed(self):
        pcm = PathDelayPCM()
        base = nominal_350nm()
        fast = base.perturbed({"vth_n": -0.02, "vth_p": -0.02})
        assert pcm.measure(fast) < pcm.measure(base)


class TestRingOscillatorPCM:
    def test_rejects_even_or_tiny_stage_counts(self):
        with pytest.raises(ValueError):
            RingOscillatorPCM(stage_count=10)
        with pytest.raises(ValueError):
            RingOscillatorPCM(stage_count=1)

    def test_frequency_plausible(self):
        freq = RingOscillatorPCM().measure(nominal_350nm())
        assert 10.0 < freq < 2000.0  # MHz

    def test_frequency_decreases_with_more_stages(self):
        params = nominal_350nm()
        assert RingOscillatorPCM(stage_count=101).measure(params) < RingOscillatorPCM(
            stage_count=51
        ).measure(params)

    def test_frequency_increases_on_fast_silicon(self):
        ring = RingOscillatorPCM()
        base = nominal_350nm()
        fast = base.perturbed({"mobility_n": 0.08, "mobility_p": 0.08})
        assert ring.measure(fast) > ring.measure(base)


class TestPCMSuite:
    def test_rejects_empty_suite(self):
        with pytest.raises(ValueError):
            PCMSuite(monitors=[])

    def test_paper_default_is_single_path_delay(self):
        suite = PCMSuite.paper_default()
        assert len(suite) == 1
        assert suite.names == ["path_delay_ns"]

    def test_extended_suite(self):
        suite = PCMSuite.extended()
        assert len(suite) == 2
        assert suite.names == ["path_delay_ns", "ring_osc_mhz"]

    def test_measure_returns_all_monitors(self):
        readings = PCMSuite.extended().measure(nominal_350nm())
        assert len(readings) == 2
        assert all(r > 0 for r in readings)


class TestDigitalFmaxPCM:
    def test_validation(self):
        from repro.silicon.pcm import DigitalFmaxPCM
        import pytest
        with pytest.raises(ValueError):
            DigitalFmaxPCM(rounds_of=0)
        with pytest.raises(ValueError):
            DigitalFmaxPCM(setup_overhead_ns=-1.0)

    def test_fmax_plausible(self):
        from repro.silicon.pcm import DigitalFmaxPCM
        fmax = DigitalFmaxPCM().measure(nominal_350nm())
        assert 20.0 < fmax < 1000.0  # MHz, 350nm-era digital block

    def test_fmax_tracks_process_speed(self):
        from repro.silicon.pcm import DigitalFmaxPCM
        pcm = DigitalFmaxPCM()
        base = nominal_350nm()
        fast = base.perturbed({"mobility_n": 0.08, "mobility_p": 0.08})
        assert pcm.measure(fast) > pcm.measure(base)

    def test_more_rounds_lower_fmax(self):
        from repro.silicon.pcm import DigitalFmaxPCM
        params = nominal_350nm()
        assert DigitalFmaxPCM(rounds_of=8).measure(params) < DigitalFmaxPCM(
            rounds_of=2
        ).measure(params)

    def test_full_suite_has_three_monitors(self):
        suite = PCMSuite.full()
        assert suite.names == ["path_delay_ns", "ring_osc_mhz", "digital_fmax_mhz"]
        readings = suite.measure(nominal_350nm())
        assert len(readings) == 3
