"""End-to-end reproduction checks: Table 1 shape, Figure 4 geometry, CLI."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.experiments.figure4 import run_figure4
from repro.experiments.platformcfg import PlatformConfig
from repro.experiments.table1 import main as table1_main
from repro.experiments.table1 import run_table1


@pytest.fixture(scope="module")
def table1_result(full_experiment_data):
    return run_table1(
        detector_config=DetectorConfig(kde_samples=30_000),
        data=full_experiment_data,
    )


@pytest.mark.slow
class TestTable1:
    def test_matches_paper_shape(self, table1_result):
        assert table1_result.matches_paper_shape(), table1_result.format()

    def test_no_trojan_escapes(self, table1_result):
        assert all(m.fp_count == 0 for m in table1_result.metrics.values())

    def test_simulation_only_boundaries_fail(self, table1_result):
        assert table1_result.metrics["B1"].fn_count >= 36
        assert table1_result.metrics["B2"].fn_count >= 30

    def test_final_boundary_near_golden(self, table1_result):
        assert table1_result.metrics["B5"].fn_count <= 8

    def test_format_renders_rows(self, table1_result):
        text = table1_result.format()
        assert "S1" in text and "S5" in text and "/80" in text

    def test_population_sizes_match_paper(self, table1_result):
        metrics = table1_result.metrics["B5"]
        assert metrics.n_infested == 80
        assert metrics.n_trojan_free == 40


@pytest.mark.slow
class TestFigure4:
    @pytest.fixture(scope="class")
    def figure(self, full_experiment_data):
        return run_figure4(
            detector_config=DetectorConfig(kde_samples=20_000),
            data=full_experiment_data,
        )

    def test_all_panels_present(self, figure):
        assert set(figure.panels) == {"S1", "S2", "S3", "S4", "S5"}

    def test_pc1_dominates(self, figure):
        assert figure.explained_variance_ratio[0] > 0.9

    def test_simulation_sets_sit_far_from_silicon(self, figure):
        assert figure.panels["S1"].centroid_distance_tf > 2.0
        assert figure.panels["S2"].centroid_distance_tf > 2.0

    def test_silicon_anchored_sets_are_closer(self, figure):
        assert figure.panels["S3"].centroid_distance_tf < figure.panels["S1"].centroid_distance_tf

    def test_s5_covers_trojan_free_but_not_trojans(self, figure):
        assert figure.panels["S5"].tf_coverage > 0.8
        assert figure.panels["S5"].ti_coverage < 0.05

    def test_projections_have_three_components(self, figure):
        assert figure.tf_projection.shape == (40, 3)
        assert figure.panels["S1"].projection.shape[1] == 3

    def test_format_is_printable(self, figure):
        text = figure.format()
        assert "S5" in text and "cover" in text


class TestCli:
    def test_table1_main_runs(self, capsys):
        assert table1_main(["--kde-samples", "2000", "--chips", "10"]) == 0
        out = capsys.readouterr().out
        assert "matches paper shape" in out
