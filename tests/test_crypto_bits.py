"""Bit/byte conversion helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.bits import (
    BLOCK_BITS,
    BLOCK_BYTES,
    bits_to_bytes,
    bytes_to_bits,
    hamming_weight,
    random_block,
    random_key,
)


def test_bytes_to_bits_msb_first():
    bits = bytes_to_bits(b"\x80\x01")
    assert bits.tolist() == [1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]


def test_bits_to_bytes_known_pattern():
    assert bits_to_bytes([1, 0, 0, 0, 0, 0, 0, 0]) == b"\x80"
    assert bits_to_bytes([1] * 8) == b"\xff"


@given(st.binary(min_size=0, max_size=64))
def test_round_trip(data):
    assert bits_to_bytes(bytes_to_bits(data)) == data


def test_bits_to_bytes_rejects_bad_length():
    with pytest.raises(ValueError):
        bits_to_bytes([1, 0, 1])


def test_bits_to_bytes_rejects_non_binary():
    with pytest.raises(ValueError):
        bits_to_bytes([2, 0, 0, 0, 0, 0, 0, 0])


def test_bits_to_bytes_rejects_2d():
    with pytest.raises(ValueError):
        bits_to_bytes(np.zeros((2, 8)))


@given(st.binary(min_size=1, max_size=32))
def test_hamming_weight_matches_popcount(data):
    assert hamming_weight(data) == sum(bin(b).count("1") for b in data)


def test_random_block_shape_and_determinism():
    assert len(random_block(rng=0)) == BLOCK_BYTES
    assert random_block(rng=0) == random_block(rng=0)
    assert random_block(rng=0) != random_block(rng=1)


def test_random_key_is_a_block():
    key = random_key(rng=7)
    assert len(key) * 8 == BLOCK_BITS
