"""GoldenChipFreeDetector: staging, classification, evaluation."""

import numpy as np
import pytest

from repro.core.pipeline import GoldenChipFreeDetector
from tests.conftest import small_detector_config


class TestStaging:
    def test_silicon_before_premanufacturing_raises(self, experiment_data):
        detector = GoldenChipFreeDetector(small_detector_config())
        with pytest.raises(RuntimeError, match="fit_premanufacturing"):
            detector.fit_silicon(experiment_data.dutt_pcms)

    def test_premanufacturing_builds_b1_b2(self, experiment_data):
        detector = GoldenChipFreeDetector(small_detector_config())
        detector.fit_premanufacturing(
            experiment_data.sim_pcms, experiment_data.sim_fingerprints
        )
        assert set(detector.boundaries) == {"B1", "B2"}
        assert detector.datasets.names() == ["S1", "S2"]

    def test_silicon_builds_b3_b4_b5(self, fitted_detector):
        assert set(fitted_detector.boundaries) == {"B1", "B2", "B3", "B4", "B5"}
        assert fitted_detector.datasets.names() == ["S1", "S2", "S3", "S4", "S5"]

    def test_pcm_dimension_mismatch_rejected(self, experiment_data):
        detector = GoldenChipFreeDetector(small_detector_config())
        detector.fit_premanufacturing(
            experiment_data.sim_pcms, experiment_data.sim_fingerprints
        )
        with pytest.raises(ValueError, match="features"):
            detector.fit_silicon(np.zeros((10, 3)))


class TestClassification:
    def test_unknown_boundary_raises(self, fitted_detector, experiment_data):
        with pytest.raises(KeyError, match="B9"):
            fitted_detector.classify(experiment_data.dutt_fingerprints, boundary="B9")

    def test_classify_returns_bool_per_device(self, fitted_detector, experiment_data):
        verdicts = fitted_detector.classify(experiment_data.dutt_fingerprints)
        assert verdicts.shape == (experiment_data.n_devices,)
        assert verdicts.dtype == bool

    def test_evaluate_covers_all_boundaries(self, fitted_detector, experiment_data):
        results = fitted_detector.evaluate(
            experiment_data.dutt_fingerprints, experiment_data.infested
        )
        assert set(results) == {"B1", "B2", "B3", "B4", "B5"}

    def test_no_trojan_escapes_any_boundary(self, fitted_detector, experiment_data):
        results = fitted_detector.evaluate(
            experiment_data.dutt_fingerprints, experiment_data.infested
        )
        assert all(metrics.fp_count == 0 for metrics in results.values())

    def test_silicon_anchoring_beats_simulation_only(self, fitted_detector, experiment_data):
        results = fitted_detector.evaluate(
            experiment_data.dutt_fingerprints, experiment_data.infested
        )
        best_anchored = min(results[b].fn_count for b in ("B3", "B4", "B5"))
        assert best_anchored < results["B1"].fn_count


class TestDeterminism:
    def test_same_seed_same_boundaries(self, experiment_data):
        def build():
            detector = GoldenChipFreeDetector(small_detector_config(seed=77))
            detector.fit_premanufacturing(
                experiment_data.sim_pcms, experiment_data.sim_fingerprints
            )
            detector.fit_silicon(experiment_data.dutt_pcms)
            return detector.classify(experiment_data.dutt_fingerprints)

        np.testing.assert_array_equal(build(), build())

    def test_different_seed_changes_synthetic_sets(self, experiment_data):
        def s5(seed):
            detector = GoldenChipFreeDetector(small_detector_config(seed=seed))
            detector.fit_premanufacturing(
                experiment_data.sim_pcms, experiment_data.sim_fingerprints
            )
            detector.fit_silicon(experiment_data.dutt_pcms)
            return detector.datasets["S5"]

        assert not np.array_equal(s5(1), s5(2))
