"""DetectorConfig validation."""

import pytest

from repro.core.config import DetectorConfig


def test_defaults_construct():
    config = DetectorConfig()
    assert config.kde_samples == 100_000
    assert config.regression_mode == "latent_gain"


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n_monte_carlo=5),
        dict(kde_samples=0),
        dict(kde_alpha=1.5),
        dict(kde_bandwidth=-1.0),
        dict(kde_bandwidth_scale=0.0),
        dict(noise_floor_rel=-0.1),
        dict(svm_nu=0.0),
        dict(svm_nu=1.2),
        dict(floor_ratio=2.0),
        dict(kmm_B=0.0),
        dict(kmm_resample_size=0),
        dict(svm_max_training_samples=5),
        dict(regression_mode="magic"),
    ],
)
def test_rejects_invalid(kwargs):
    with pytest.raises(ValueError):
        DetectorConfig(**kwargs)


def test_accepts_independent_regression_mode():
    assert DetectorConfig(regression_mode="independent").regression_mode == "independent"


def test_accepts_boundary_values():
    DetectorConfig(kde_alpha=0.0)
    DetectorConfig(kde_alpha=1.0)
    DetectorConfig(svm_nu=1.0)
