"""Waveform-level spectral analysis."""

import pytest

from repro.rf.pulse import GaussianMonocycle
from repro.rf.spectrum import occupied_bandwidth_ghz, pulse_spectrum, spectral_peak_ghz


@pytest.fixture()
def pulse():
    return GaussianMonocycle(amplitude=1.0, center_frequency_ghz=4.3)


def test_spectrum_shapes(pulse):
    freqs, spectrum = pulse_spectrum(pulse, n_samples=1024)
    assert freqs.shape == spectrum.shape
    assert freqs[0] == 0.0


def test_validation(pulse):
    with pytest.raises(ValueError):
        pulse_spectrum(pulse, span_sigmas=0.0)
    with pytest.raises(ValueError):
        pulse_spectrum(pulse, n_samples=4)
    with pytest.raises(ValueError):
        occupied_bandwidth_ghz(pulse, fraction=1.0)


def test_peak_at_center_frequency(pulse):
    assert spectral_peak_ghz(pulse) == pytest.approx(4.3, rel=0.03)


@pytest.mark.parametrize("freq", [2.0, 4.3, 7.0])
def test_peak_tracks_center_frequency(freq):
    pulse = GaussianMonocycle(amplitude=1.0, center_frequency_ghz=freq)
    assert spectral_peak_ghz(pulse) == pytest.approx(freq, rel=0.03)


def test_dc_component_is_zero(pulse):
    freqs, spectrum = pulse_spectrum(pulse)
    assert spectrum[0] == pytest.approx(0.0, abs=1e-6)  # monocycle has no DC


def test_occupied_bandwidth_is_ultra_wide(pulse):
    bandwidth = occupied_bandwidth_ghz(pulse, fraction=0.99)
    # UWB definition: fractional bandwidth > 20 %; the monocycle far exceeds it.
    assert bandwidth / 4.3 > 0.2


def test_frequency_trojan_shifts_the_peak():
    clean = GaussianMonocycle(amplitude=1.0, center_frequency_ghz=4.3)
    detuned = GaussianMonocycle(amplitude=1.0, center_frequency_ghz=4.3 * 1.17)
    assert spectral_peak_ghz(detuned) > spectral_peak_ghz(clean) * 1.1
