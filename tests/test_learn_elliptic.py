"""Mahalanobis elliptic envelope."""

import numpy as np
import pytest

from repro.learn.elliptic import EllipticEnvelope


@pytest.fixture()
def cloud():
    rng = np.random.default_rng(0)
    return rng.standard_normal((500, 3)) * np.array([2.0, 1.0, 0.5]) + [1.0, -2.0, 0.0]


class TestValidation:
    def test_contamination_range(self):
        with pytest.raises(ValueError):
            EllipticEnvelope(contamination=0.0)

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            EllipticEnvelope(floor_ratio=0.0)
        with pytest.raises(ValueError):
            EllipticEnvelope(floor_sigma=-1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            EllipticEnvelope().predict_inside(np.zeros((1, 3)))


class TestEnvelope:
    def test_contamination_matches_training_outliers(self, cloud):
        envelope = EllipticEnvelope(contamination=0.1).fit(cloud)
        outliers = 1.0 - envelope.predict_inside(cloud).mean()
        assert outliers == pytest.approx(0.1, abs=0.04)

    def test_mean_is_inside_far_point_outside(self, cloud):
        envelope = EllipticEnvelope().fit(cloud)
        assert envelope.predict_inside(cloud.mean(axis=0)[None, :])[0]
        far = cloud.mean(axis=0) + np.array([20.0, 0.0, 0.0])
        assert not envelope.predict_inside(far[None, :])[0]

    def test_mahalanobis_accounts_for_anisotropy(self, cloud):
        envelope = EllipticEnvelope().fit(cloud)
        center = cloud.mean(axis=0)
        # 3 units along the wide axis (sigma 2) vs the narrow axis (sigma 0.5).
        wide = envelope.mahalanobis_squared((center + [3.0, 0, 0])[None, :])[0]
        narrow = envelope.mahalanobis_squared((center + [0, 0, 3.0])[None, :])[0]
        assert narrow > wide

    def test_chi2_distance_statistics(self, cloud):
        envelope = EllipticEnvelope().fit(cloud)
        d2 = envelope.mahalanobis_squared(cloud)
        # Squared Mahalanobis distances of Gaussian data ~ chi2(d): mean = d.
        assert d2.mean() == pytest.approx(3.0, rel=0.15)

    def test_floor_sigma_tolerates_degenerate_direction(self):
        data = np.column_stack([np.linspace(0, 10, 200), np.zeros(200)])
        tight = EllipticEnvelope(floor_sigma=1e-9).fit(data)
        tolerant = EllipticEnvelope(floor_sigma=0.5).fit(data)
        probe = np.array([[5.0, 0.4]])
        assert not tight.predict_inside(probe)[0]
        assert tolerant.predict_inside(probe)[0]

    def test_decision_sign_matches_prediction(self, cloud):
        envelope = EllipticEnvelope().fit(cloud)
        points = np.vstack([cloud[:20], cloud[:5] + 30.0])
        np.testing.assert_array_equal(
            envelope.decision_function(points) >= 0, envelope.predict_inside(points)
        )
