"""Content-addressed artifact cache: keys, codec, store semantics, pipeline.

The load-bearing guarantees under test:

* keys are stable across processes and sensitive to every semantic input;
* registered model classes round-trip through the npz codec with bitwise
  identical predictions;
* the store is safe: LRU eviction respects the byte cap, corrupt entries
  fall back to recompute (never a crash, never a wrong answer);
* a warm table1 run is bit-identical to a cold run and to a cache-off run.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro import cache as artifact_cache
from repro.cache import (
    MISS,
    ArtifactCache,
    CacheKeyError,
    canonicalize,
    digest_array,
    make_key,
)
from repro.cache import codec


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(str(tmp_path / "cache"))


class TestKeys:
    def test_deterministic_in_process(self):
        parts = {"seed": 7, "nm": 6, "scale": 0.1}
        assert make_key("mc", parts) == make_key("mc", parts)

    def test_sensitive_to_every_component(self):
        base = make_key("mc", {"seed": 7}, version=1)
        assert make_key("mc", {"seed": 8}, version=1) != base
        assert make_key("dutt", {"seed": 7}, version=1) != base
        assert make_key("mc", {"seed": 7}, version=2) != base

    def test_order_independent_dicts(self):
        assert make_key("s", {"a": 1, "b": 2}) == make_key("s", {"b": 2, "a": 1})

    def test_tuple_and_list_equivalent(self):
        assert make_key("s", {"v": (1, 2)}) == make_key("s", {"v": [1, 2]})

    def test_numpy_scalars_match_python(self):
        assert make_key("s", {"n": np.int64(3), "x": np.float64(0.1)}) == \
            make_key("s", {"n": 3, "x": 0.1})

    def test_nan_is_stable(self):
        assert make_key("s", {"x": float("nan")}) == make_key("s", {"x": float("nan")})
        assert canonicalize(float("nan")) == {"__float__": "nan"}

    def test_array_content_addressing(self):
        a = np.arange(12.0).reshape(3, 4)
        assert digest_array(a) == digest_array(a.copy())
        assert digest_array(a) != digest_array(a.T)          # shape/layout
        assert digest_array(a) != digest_array(a.astype(np.float32))
        b = a.copy()
        b[0, 0] += 1e-12
        assert digest_array(a) != digest_array(b)

    def test_unstable_values_rejected(self):
        with pytest.raises(CacheKeyError):
            make_key("s", {"f": lambda: None})
        with pytest.raises(CacheKeyError):
            make_key("s", {1: "non-string key"})
        with pytest.raises(CacheKeyError):
            make_key("bad/stage", {})

    def test_stable_across_processes(self):
        """The same parts must hash identically in a fresh interpreter."""
        parts_src = ("{'seed': 7, 'nm': 6, 'drift': 0.05, "
                     "'arr': __import__('numpy').arange(6.0)}")
        script = (
            "from repro.cache import make_key\n"
            f"print(make_key('mc', {parts_src}, version=3))\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            env=env, cwd=os.path.join(os.path.dirname(__file__), ".."),
            check=True,
        )
        local = make_key("mc", {"seed": 7, "nm": 6, "drift": 0.05,
                                "arr": np.arange(6.0)}, version=3)
        assert out.stdout.strip() == local


class TestCodec:
    def test_plain_tree_round_trip(self, cache):
        value = {
            "pcms": np.arange(20.0).reshape(4, 5),
            "names": ["a", "b"],
            "shape": (4, 5),
            "flags": {"ok": True, "count": 3, "ratio": 0.25, "none": None},
        }
        cache.store("t", "k" * 32, value)
        loaded = cache.load("t", "k" * 32)
        assert loaded is not MISS
        np.testing.assert_array_equal(loaded["pcms"], value["pcms"])
        assert loaded["names"] == value["names"]
        assert loaded["shape"] == (4, 5)          # tuples survive
        assert loaded["flags"] == value["flags"]

    def test_cached_none_is_not_a_miss(self, cache):
        cache.store("t", "n" * 32, None)
        assert cache.load("t", "n" * 32) is None

    def test_unregistered_object_rejected(self, cache):
        with pytest.raises(codec.CacheCodecError):
            cache.store("t", "o" * 32, object())

    def test_mars_round_trip(self, cache):
        from repro.learn.mars import MarsRegression

        rng = np.random.default_rng(0)
        x = rng.standard_normal((120, 3))
        y = np.maximum(x[:, 0] - 0.2, 0.0) + 0.5 * x[:, 1] + 0.01 * rng.standard_normal(120)
        model = MarsRegression(max_terms=12).fit(x, y)
        cache.store("m", "m" * 32, model)
        loaded = cache.load("m", "m" * 32)
        np.testing.assert_array_equal(loaded.predict(x), model.predict(x))
        assert loaded.gcv_ == model.gcv_

    def test_multi_output_mars_round_trip(self, cache):
        from repro.learn.mars import MultiOutputMars

        rng = np.random.default_rng(1)
        x = rng.standard_normal((100, 2))
        y = np.column_stack([x[:, 0] ** 2, np.abs(x[:, 1])])
        model = MultiOutputMars(max_terms=8).fit(x, y)
        cache.store("m", "p" * 32, model)
        loaded = cache.load("m", "p" * 32)
        np.testing.assert_array_equal(loaded.predict(x), model.predict(x))

    def test_trusted_region_round_trip(self, cache):
        from repro.core.boundaries import TrustedRegion

        rng = np.random.default_rng(2)
        train = rng.standard_normal((300, 4))
        probe = rng.standard_normal((50, 4))
        region = TrustedRegion(name="B1", nu=0.08, seed=0).fit(train)
        cache.store("boundary", "b" * 32, region)
        loaded = cache.load("boundary", "b" * 32)
        np.testing.assert_array_equal(
            loaded.predict_trojan_free(probe), region.predict_trojan_free(probe)
        )
        np.testing.assert_array_equal(
            loaded.decision_scores(probe), region.decision_scores(probe)
        )

    def test_whitener_and_ocsvm_round_trip(self, cache):
        from repro.learn.ocsvm import OneClassSvm
        from repro.stats.preprocessing import Whitener

        rng = np.random.default_rng(3)
        train = rng.standard_normal((200, 3)) * np.array([1.0, 5.0, 0.2])
        probe = rng.standard_normal((40, 3))
        whitener = Whitener().fit(train)
        svm = OneClassSvm(nu=0.1, seed=0).fit(whitener.transform(train))
        cache.store("w", "w" * 32, {"whitener": whitener, "svm": svm})
        loaded = cache.load("w", "w" * 32)
        np.testing.assert_array_equal(
            loaded["whitener"].transform(probe), whitener.transform(probe)
        )
        np.testing.assert_array_equal(
            loaded["svm"].decision_function(whitener.transform(probe)),
            svm.decision_function(whitener.transform(probe)),
        )


class TestStore:
    def test_miss_then_hit(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return {"x": np.ones(4)}

        first = cache.get_or_compute("s", {"seed": 1}, compute)
        second = cache.get_or_compute("s", {"seed": 1}, compute)
        assert len(calls) == 1
        np.testing.assert_array_equal(first["x"], second["x"])
        counts = cache.session.stage("s")
        assert counts.misses == 1 and counts.hits == 1 and counts.stores == 1

    def test_disabled_cache_is_pass_through(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), enabled=False)
        calls = []
        for _ in range(2):
            cache.get_or_compute("s", {}, lambda: calls.append(1))
        assert len(calls) == 2
        assert not os.path.isdir(os.path.join(str(tmp_path), "s"))

    def test_lru_eviction_under_small_cap(self, tmp_path):
        payload = {"x": np.arange(4096.0)}          # ~32 KiB per entry
        cache = ArtifactCache(str(tmp_path / "c"), max_bytes=100 * 1024)
        for i in range(8):
            cache.store("s", f"{i:032d}", payload)
            # Distinct mtimes so LRU order is well defined on coarse clocks.
            path = cache._entry_path("s", f"{i:032d}")
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        cache._evict_over_cap()
        stats = cache.disk_stats()
        assert stats["bytes"] <= cache.max_bytes
        assert cache.session.evictions > 0
        # The oldest entries were evicted, the newest survive.
        assert cache.load("s", f"{0:032d}") is MISS
        assert cache.load("s", f"{7:032d}") is not MISS

    def test_hit_refreshes_lru_recency(self, tmp_path):
        payload = {"x": np.arange(4096.0)}
        cache = ArtifactCache(str(tmp_path / "c"), max_bytes=10**9)
        for i in range(4):
            cache.store("s", f"{i:032d}", payload)
            os.utime(cache._entry_path("s", f"{i:032d}"),
                     (1_000_000 + i, 1_000_000 + i))
        assert cache.load("s", f"{0:032d}") is not MISS  # touch the oldest
        cache.max_bytes = 80 * 1024                      # now force eviction
        cache._evict_over_cap()
        assert cache.load("s", f"{0:032d}") is not MISS  # survived: recently used
        assert cache.load("s", f"{1:032d}") is MISS      # evicted instead

    def test_corrupted_entry_recovers_by_recompute(self, cache):
        key = "c" * 32
        cache.store("s", key, {"x": np.ones(8)})
        path = cache._entry_path("s", key)
        with open(path, "wb") as handle:
            handle.write(b"this is not an npz archive")
        assert cache.load("s", key) is MISS
        assert cache.session.corrupt_entries == 1
        assert not os.path.exists(path)                  # dropped on read
        value = cache.get_or_compute("s", {"k": 1}, lambda: {"x": np.zeros(2)})
        np.testing.assert_array_equal(value["x"], np.zeros(2))

    def test_truncated_entry_recovers(self, cache):
        key = "d" * 32
        cache.store("s", key, {"x": np.arange(1000.0)})
        path = cache._entry_path("s", key)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])
        assert cache.load("s", key) is MISS
        assert cache.session.corrupt_entries == 1

    def test_clear_and_disk_stats(self, cache):
        cache.store("a", "1" * 32, {"x": np.ones(2)})
        cache.store("b", "2" * 32, {"x": np.ones(2)})
        stats = cache.disk_stats()
        assert stats["entries"] == 2
        assert set(stats["stages"]) == {"a", "b"}
        assert cache.clear() == 2
        assert cache.disk_stats()["entries"] == 0


class TestPipelineIntegration:
    """Warm-vs-cold bit identity on a reduced table1 run."""

    @pytest.fixture(scope="class")
    def table1_runs(self, tmp_path_factory):
        from repro.core.config import DetectorConfig
        from repro.experiments.platformcfg import PlatformConfig
        from repro.experiments.table1 import run_table1

        root = str(tmp_path_factory.mktemp("cache"))
        platform = PlatformConfig(n_chips=10, n_monte_carlo=30, seed=7)
        detector_config = DetectorConfig(kde_samples=3000, seed=11)

        def one_run(cache):
            with artifact_cache.activated(cache):
                return run_table1(platform=platform,
                                  detector_config=detector_config)

        off = one_run(None)
        cold_cache = ArtifactCache(root)
        cold = one_run(cold_cache)
        warm_cache = ArtifactCache(root)
        warm = one_run(warm_cache)
        return off, cold, warm, cold_cache, warm_cache

    def test_cold_run_populates_warm_run_hits(self, table1_runs):
        _, _, _, cold_cache, warm_cache = table1_runs
        assert cold_cache.session.hits == 0
        assert cold_cache.session.misses > 0
        assert warm_cache.session.misses == 0
        assert warm_cache.session.hits == cold_cache.session.misses
        # Every cacheable stage participates.
        assert set(warm_cache.session.per_stage) >= {
            "mc", "dutt", "regressions", "kde_tail", "kmm_shift", "boundary",
        }

    def test_populations_bit_identical(self, table1_runs):
        off, cold, warm, _, _ = table1_runs
        for a, b in ((off, cold), (off, warm)):
            np.testing.assert_array_equal(a.data.sim_pcms, b.data.sim_pcms)
            np.testing.assert_array_equal(a.data.dutt_pcms, b.data.dutt_pcms)
            np.testing.assert_array_equal(
                a.data.dutt_fingerprints, b.data.dutt_fingerprints
            )

    def test_classifications_bit_identical(self, table1_runs):
        off, cold, warm, _, _ = table1_runs
        fingerprints = off.data.dutt_fingerprints
        for boundary in ("B1", "B2", "B3", "B4", "B5"):
            reference = off.detector.classify(fingerprints, boundary=boundary)
            np.testing.assert_array_equal(
                cold.detector.classify(fingerprints, boundary=boundary), reference
            )
            np.testing.assert_array_equal(
                warm.detector.classify(fingerprints, boundary=boundary), reference
            )

    def test_metrics_identical(self, table1_runs):
        off, cold, warm, _, _ = table1_runs
        for run in (cold, warm):
            for name, metric in off.metrics.items():
                assert run.metrics[name].fp_count == metric.fp_count
                assert run.metrics[name].fn_count == metric.fn_count

    def test_provenance_shape(self, table1_runs):
        _, _, _, _, warm_cache = table1_runs
        record = warm_cache.provenance()
        assert record["enabled"] is True
        session = record["session"]
        assert session["hits"] > 0 and session["misses"] == 0
        assert "stages" in session


class TestModuleConfiguration:
    def test_stage_cached_pass_through_when_off(self):
        with artifact_cache.activated(None):
            assert not artifact_cache.is_enabled()
            assert artifact_cache.stage_cached("s", {}, lambda: 42) == 42
            assert artifact_cache.provenance() is None

    def test_activated_installs_and_restores(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        with artifact_cache.activated(cache):
            assert artifact_cache.get_cache() is cache
            assert artifact_cache.is_enabled()
            assert artifact_cache.provenance()["root"] == cache.root

    def test_seedless_pipeline_skips_stochastic_caching(self, tmp_path):
        """seed=None runs must not cache stochastic stages (not reproducible)."""
        from repro.experiments.platformcfg import PlatformConfig, generate_experiment_data

        cache = ArtifactCache(str(tmp_path / "c"))
        with artifact_cache.activated(cache):
            generate_experiment_data(
                PlatformConfig(n_chips=4, n_monte_carlo=10, seed=None)
            )
        assert cache.disk_stats()["entries"] == 0
