"""Bundle format tests: round-trip bit-identity, versioning, integrity.

The acceptance bar for ``repro-bundle-v1`` is strict: a bundle written by
:func:`repro.serve.bundle.export_bundle` must reload — in this process or a
fresh one — into a detector whose decision scores and verdicts for every
boundary are **bit-identical** to the in-process original, and any file
that is not a well-formed, uncorrupted bundle of a supported schema version
must be rejected before it can produce a verdict.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.pipeline import BOUNDARY_NAMES, GoldenChipFreeDetector
from repro.serve import bundle
from repro.serve.bundle import (
    BundleError,
    BundleFormatError,
    BundleIntegrityError,
    export_bundle,
    load_bundle,
    read_bundle_header,
)
from tests.conftest import small_detector_config


@pytest.fixture(scope="module")
def bundle_path(fitted_detector, tmp_path_factory):
    """The small fitted detector exported once for the whole module."""
    path = tmp_path_factory.mktemp("bundles") / "detector.npz"
    export_bundle(fitted_detector, path)
    return str(path)


def _rewrite_bundle(src, dst, mutate_header=None, mutate_arrays=None):
    """Re-save a bundle with surgical header/payload mutations."""
    with np.load(src, allow_pickle=False) as archive:
        entries = {name: archive[name] for name in archive.files}
    if mutate_header is not None:
        header = json.loads(entries[bundle.HEADER_ENTRY].tobytes().decode("utf-8"))
        mutate_header(header)
        raw = json.dumps(header, sort_keys=True).encode("utf-8")
        entries[bundle.HEADER_ENTRY] = np.frombuffer(raw, dtype=np.uint8)
    if mutate_arrays is not None:
        mutate_arrays(entries)
    with open(dst, "wb") as handle:
        np.savez(handle, **entries)
    return str(dst)


class TestExport:
    def test_header_is_self_describing(self, bundle_path, fitted_detector):
        header = read_bundle_header(bundle_path)
        assert header["format"] == bundle.BUNDLE_FORMAT
        assert header["schema_version"] == bundle.BUNDLE_SCHEMA_VERSION
        assert len(header["digest"]) == 64
        assert header["detector"]["boundaries"] == sorted(fitted_detector.boundaries)
        assert header["detector"]["n_features"] == (
            fitted_detector.n_fingerprint_features_
        )
        assert "created" in header["provenance"]

    def test_export_returns_matching_info(self, fitted_detector, tmp_path):
        info = export_bundle(fitted_detector, tmp_path / "d.npz", note="t17")
        assert info.schema_version == bundle.BUNDLE_SCHEMA_VERSION
        assert info.digest == read_bundle_header(info.path)["digest"]
        assert read_bundle_header(info.path)["extra"] == {"note": "t17"}

    def test_unfitted_detector_is_rejected(self, tmp_path):
        with pytest.raises(BundleError, match="unfitted"):
            export_bundle(GoldenChipFreeDetector(), tmp_path / "d.npz")

    def test_export_is_atomic(self, fitted_detector, tmp_path):
        export_bundle(fitted_detector, tmp_path / "d.npz")
        leftovers = [n for n in os.listdir(tmp_path) if n.startswith(".tmp-")]
        assert leftovers == []

    def test_detector_method_delegates(self, fitted_detector, tmp_path):
        info = fitted_detector.export_bundle(tmp_path / "d.npz")
        assert load_bundle(info.path).digest == info.digest


class TestRoundTrip:
    def test_bit_identical_scores_small_population(self, bundle_path,
                                                   fitted_detector,
                                                   experiment_data):
        restored = load_bundle(bundle_path).detector
        fingerprints = experiment_data.dutt_fingerprints
        expected = fitted_detector.decision_scores_batch(fingerprints)
        actual = restored.decision_scores_batch(fingerprints)
        assert set(actual) == set(BOUNDARY_NAMES)
        for name in BOUNDARY_NAMES:
            assert np.array_equal(actual[name], expected[name]), name

    def test_bit_identical_on_table1_population(self, full_experiment_data,
                                                tmp_path):
        """The acceptance population: all 120 table-1 DUTTs, B1..B5."""
        detector = GoldenChipFreeDetector(small_detector_config())
        detector.fit_premanufacturing(
            full_experiment_data.sim_pcms, full_experiment_data.sim_fingerprints
        )
        detector.fit_silicon(full_experiment_data.dutt_pcms)
        fingerprints = full_experiment_data.dutt_fingerprints
        assert fingerprints.shape[0] == 120

        restored = load_bundle(
            export_bundle(detector, tmp_path / "table1.npz").path
        ).detector
        expected = detector.decision_scores_batch(fingerprints)
        actual = restored.decision_scores_batch(fingerprints)
        for name in BOUNDARY_NAMES:
            assert np.array_equal(actual[name], expected[name]), name
            assert np.array_equal(
                restored.classify(fingerprints, boundary=name),
                detector.classify(fingerprints, boundary=name),
            ), name

    def test_bit_identical_in_fresh_process(self, bundle_path, fitted_detector,
                                            experiment_data, tmp_path):
        """Reload in a brand-new interpreter: scores must match exactly."""
        expected_path = tmp_path / "expected.npz"
        fingerprints = experiment_data.dutt_fingerprints
        np.savez(
            expected_path,
            fingerprints=fingerprints,
            **{name: scores for name, scores in
               fitted_detector.decision_scores_batch(fingerprints).items()},
        )
        script = (
            "import sys\n"
            "import numpy as np\n"
            "from repro.serve.bundle import load_bundle\n"
            "detector = load_bundle(sys.argv[1]).detector\n"
            "with np.load(sys.argv[2]) as data:\n"
            "    scores = detector.decision_scores_batch(data['fingerprints'])\n"
            "    bad = [n for n, s in scores.items()\n"
            "           if not np.array_equal(s, data[n])]\n"
            "sys.exit(f'score drift in {bad}' if bad else 0)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
            + os.pathsep + env.get("PYTHONPATH", "")
        )
        result = subprocess.run(
            [sys.executable, "-c", script, bundle_path, str(expected_path)],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert result.returncode == 0, result.stderr

    def test_restored_detector_is_inference_only(self, bundle_path,
                                                 experiment_data):
        restored = load_bundle(bundle_path).detector
        with pytest.raises(RuntimeError, match="inference-only"):
            restored.fit_silicon(experiment_data.dutt_pcms)

    def test_loaded_bundle_carries_identity(self, bundle_path):
        loaded = load_bundle(bundle_path)
        assert loaded.digest == read_bundle_header(bundle_path)["digest"]
        assert loaded.boundaries == sorted(BOUNDARY_NAMES)


class TestRejection:
    def test_unknown_schema_version(self, bundle_path, tmp_path):
        bad = _rewrite_bundle(
            bundle_path, tmp_path / "future.npz",
            mutate_header=lambda h: h.update(schema_version=99),
        )
        with pytest.raises(BundleFormatError, match="schema version 99"):
            load_bundle(bad)
        with pytest.raises(BundleFormatError, match="schema version 99"):
            read_bundle_header(bad)

    def test_wrong_format_name(self, bundle_path, tmp_path):
        bad = _rewrite_bundle(
            bundle_path, tmp_path / "alien.npz",
            mutate_header=lambda h: h.update(format="other-format-v1"),
        )
        with pytest.raises(BundleFormatError, match="not a repro-bundle-v1"):
            load_bundle(bad)

    def test_plain_npz_is_not_a_bundle(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, weights=np.ones(4))
        with pytest.raises(BundleFormatError, match="__bundle__"):
            load_bundle(path)

    def test_non_npz_garbage(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(BundleFormatError, match="unreadable"):
            load_bundle(path)

    def test_bit_flipped_payload(self, bundle_path, tmp_path):
        def corrupt(entries):
            name = sorted(n for n in entries
                          if n not in (bundle.HEADER_ENTRY, bundle.META_ENTRY)
                          and entries[n].size)[0]
            array = entries[name].copy()
            flat = array.reshape(-1)
            flat[0] = flat[0] + 1 if array.dtype.kind in "iu" else flat[0] + 1e-9
            entries[name] = array

        bad = _rewrite_bundle(bundle_path, tmp_path / "flipped.npz",
                              mutate_arrays=corrupt)
        with pytest.raises(BundleIntegrityError, match="digest mismatch"):
            load_bundle(bad)

    def test_truncated_file(self, bundle_path, tmp_path):
        raw = open(bundle_path, "rb").read()
        path = tmp_path / "truncated.npz"
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(BundleFormatError):
            load_bundle(path)

    def test_forged_digest(self, bundle_path, tmp_path):
        bad = _rewrite_bundle(
            bundle_path, tmp_path / "forged.npz",
            mutate_header=lambda h: h.update(digest="0" * 64),
        )
        with pytest.raises(BundleIntegrityError):
            load_bundle(bad)
