"""StandardScaler and floored Whitener."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats.preprocessing import StandardScaler, Whitener

matrices = arrays(
    dtype=float,
    shape=st.tuples(st.integers(3, 20), st.integers(1, 5)),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestStandardScaler:
    def test_transform_standardizes(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((500, 3)) * [2.0, 5.0, 0.1] + [1.0, -3.0, 7.0]
        out = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.std(axis=0), 1.0, rtol=1e-12)

    def test_constant_feature_is_centred_not_scaled(self):
        data = np.column_stack([np.arange(5.0), np.full(5, 2.0)])
        out = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(out[:, 1], 0.0)

    @settings(max_examples=25)
    @given(matrices)
    def test_inverse_round_trip(self, data):
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(data)), data, atol=1e-8
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_feature_count_checked(self):
        scaler = StandardScaler().fit(np.zeros((3, 2)) + np.arange(3)[:, None])
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((2, 5)))


class TestWhitener:
    def test_floor_ratio_validation(self):
        with pytest.raises(ValueError):
            Whitener(floor_ratio=0.0)
        with pytest.raises(ValueError):
            Whitener(floor_sigma=-1.0)

    def test_whitens_correlated_data(self):
        rng = np.random.default_rng(0)
        base = rng.standard_normal((2000, 2))
        data = base @ np.array([[2.0, 1.5], [0.0, 0.5]])
        out = Whitener(floor_ratio=1e-9).fit_transform(data)
        cov = np.cov(out.T)
        np.testing.assert_allclose(cov, np.eye(2), atol=0.1)

    def test_floor_limits_amplification_of_degenerate_direction(self):
        data = np.column_stack([np.linspace(0, 10, 100), np.full(100, 1.0)])
        whitener = Whitener(floor_ratio=0.01).fit(data)
        # Degenerate direction floored at 10% (sqrt 0.01) of the top sigma.
        assert whitener.scales_[1] == pytest.approx(0.1 * whitener.scales_[0])

    def test_absolute_floor_sigma_wins_when_larger(self):
        data = np.column_stack([np.linspace(0, 1, 100), np.full(100, 1.0)])
        whitener = Whitener(floor_ratio=1e-9, floor_sigma=0.5).fit(data)
        assert whitener.scales_.min() == pytest.approx(0.5)

    @settings(max_examples=25)
    @given(matrices)
    def test_inverse_round_trip(self, data):
        whitener = Whitener().fit(data)
        np.testing.assert_allclose(
            whitener.inverse_transform(whitener.transform(data)), data, atol=1e-6
        )

    def test_single_point_population_is_identity(self):
        whitener = Whitener().fit(np.full((3, 2), 5.0))
        np.testing.assert_allclose(whitener.scales_, 1.0)
        out = whitener.transform(np.array([[6.0, 5.0]]))
        np.testing.assert_allclose(out, [[1.0, 0.0]])

    def test_components_are_orthonormal(self):
        rng = np.random.default_rng(0)
        whitener = Whitener().fit(rng.standard_normal((50, 4)))
        identity = whitener.components_ @ whitener.components_.T
        np.testing.assert_allclose(identity, np.eye(4), atol=1e-10)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Whitener().transform(np.zeros((2, 2)))

    def test_feature_count_checked(self):
        whitener = Whitener().fit(np.random.default_rng(0).standard_normal((10, 3)))
        with pytest.raises(ValueError):
            whitener.transform(np.zeros((2, 4)))
