"""Critical-path composition."""

import pytest

from repro.circuits.gates import inverter, nand2
from repro.circuits.path import CriticalPath
from repro.process.parameters import nominal_350nm


def test_needs_at_least_one_gate():
    with pytest.raises(ValueError):
        CriticalPath(gates=[])


def test_rejects_negative_output_load():
    with pytest.raises(ValueError):
        CriticalPath(gates=[inverter()], output_load_ff=-1.0)


def test_inverter_chain_factory():
    path = CriticalPath.inverter_chain(7, inverter, name="pcm")
    assert len(path) == 7
    assert path.name == "pcm"


def test_inverter_chain_rejects_zero_stages():
    with pytest.raises(ValueError):
        CriticalPath.inverter_chain(0, inverter)


def test_total_is_sum_of_stage_delays():
    path = CriticalPath.inverter_chain(5, inverter)
    params = nominal_350nm()
    stages = path.stage_delays_ns(params)
    assert len(stages) == 5
    assert path.delay_ns(params) == pytest.approx(sum(stages))


def test_delay_grows_with_stage_count():
    params = nominal_350nm()
    short = CriticalPath.inverter_chain(5, inverter).delay_ns(params)
    long = CriticalPath.inverter_chain(15, inverter).delay_ns(params)
    assert long > 2.0 * short


def test_last_stage_drives_output_load():
    params = nominal_350nm()
    light = CriticalPath.inverter_chain(3, inverter, output_load_ff=0.0)
    heavy = CriticalPath.inverter_chain(3, inverter, output_load_ff=100.0)
    assert heavy.delay_ns(params) > light.delay_ns(params)
    # Only the final stage differs.
    assert heavy.stage_delays_ns(params)[:-1] == pytest.approx(
        light.stage_delays_ns(params)[:-1]
    )


def test_heterogeneous_path():
    path = CriticalPath(gates=[inverter(), nand2(), inverter()])
    assert path.delay_ns(nominal_350nm()) > 0


def test_faster_process_shortens_path():
    path = CriticalPath.inverter_chain(9, inverter)
    base = nominal_350nm()
    fast = base.perturbed({"mobility_n": 0.08, "mobility_p": 0.08})
    assert path.delay_ns(fast) < path.delay_ns(base)
