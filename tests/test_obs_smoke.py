"""End-to-end observability smoke test (the ``make smoke-obs`` target).

Runs the real CLI with ``--trace`` on a small fixture and checks the whole
chain: manifest written, schema-valid, stage spans covering >= 90% of the
run's wall time, metrics populated, events stream readable, and the
``report`` command rendering it all.
"""

import pytest

from repro.cli import main
from repro.obs import manifest as obs_manifest
from repro.obs.report import render_report, stage_coverage
from repro.obs.sink import read_events
from repro.benchreport import write_run_artifacts

#: Small-fixture arguments shared with tests/test_cli.py.
FAST = ["--chips", "10", "--kde-samples", "1500"]


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    run_dir = str(tmp_path_factory.mktemp("runs") / "smoke")
    status = main(["table1", "--trace", "--run-dir", run_dir, *FAST])
    assert status == 0
    return run_dir


class TestTracedTable1:
    def test_manifest_validates_against_packaged_schema(self, traced_run):
        manifest = obs_manifest.load_manifest(traced_run)
        assert obs_manifest.validate(manifest.to_dict()) == []

    def test_manifest_records_the_run(self, traced_run):
        manifest = obs_manifest.load_manifest(traced_run)
        assert manifest.command == "table1"
        assert manifest.config["chips"] == 10
        assert manifest.seeds == {"experiment": 16}
        assert manifest.environment["versions"]["python"]
        assert manifest.results["boundaries"]["B5"]["fp_count"] == 0

    def test_stage_spans_cover_90_percent_of_wall_time(self, traced_run):
        manifest = obs_manifest.load_manifest(traced_run)
        spans = manifest.span_objects()
        roots = [s for s in spans if s.parent_id is None]
        assert [s.name for s in roots] == ["table1"]
        assert stage_coverage(spans) >= 0.9

    def test_expected_stages_and_metrics_present(self, traced_run):
        manifest = obs_manifest.load_manifest(traced_run)
        names = {s.name for s in manifest.span_objects()}
        for stage in ("platform.generate_data", "mc.run",
                      "pipeline.fit_premanufacturing", "pipeline.fit_silicon",
                      "pipeline.evaluate", "kde.fit", "ocsvm.fit", "kmm.fit",
                      "mars.fit"):
            assert stage in names, f"missing span {stage}"
        counters = manifest.metrics["counters"]
        assert counters["mc.devices_simulated"] == 100.0
        assert counters["campaign.devices_measured"] == 30.0 + 100.0
        assert "ocsvm.iterations" in manifest.metrics["histograms"]

    def test_events_stream_mirrors_spans(self, traced_run):
        manifest = obs_manifest.load_manifest(traced_run)
        events = read_events(f"{traced_run}/events.jsonl", event="span")
        assert len(events) == len(manifest.spans)

    def test_report_command_renders(self, traced_run, capsys):
        assert main(["report", traced_run]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "stage coverage of run wall time" in out
        assert "mc.devices_simulated" in out

    def test_render_report_api(self, traced_run):
        rendered = render_report(obs_manifest.load_manifest(traced_run))
        assert "pipeline.fit_silicon" in rendered


class TestBenchSink:
    def test_bench_artifacts_share_sink_format(self, tmp_path):
        report = {"schema": 1, "units": "seconds", "n_jobs": 1,
                  "results": {"kde_density": 0.012, "ocsvm_fit": 0.034}}
        run_dir = str(tmp_path / "bench-run")
        path = write_run_artifacts(report, run_dir, ["--run-dir", run_dir])
        manifest = obs_manifest.load_manifest(path)
        assert obs_manifest.validate(manifest.to_dict()) == []
        assert manifest.command == "bench"
        assert manifest.results == report["results"]
        events = read_events(f"{run_dir}/events.jsonl", event="bench")
        assert {e["component"] for e in events} == {"kde_density", "ocsvm_fit"}
        assert all(e["seconds"] > 0 for e in events)
