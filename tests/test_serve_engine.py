"""Scoring-engine tests: validation codes, vectorized parity, micro-batching.

Covers the synchronous :class:`ScoringEngine` (every structured rejection
code, parity with the detector's own ``classify``) and the asynchronous
:class:`BatchingEngine` (per-request result slicing under concurrency,
FIFO backpressure, clean shutdown).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.pipeline import BOUNDARY_NAMES
from repro.serve.engine import (
    BatchingEngine,
    QueueFullError,
    RequestValidationError,
    ScoringEngine,
)


@pytest.fixture(scope="module")
def engine(fitted_detector):
    return ScoringEngine(fitted_detector)


def _code(excinfo) -> str:
    return excinfo.value.code


class TestValidation:
    def test_non_numeric_is_bad_dtype(self, engine):
        with pytest.raises(RequestValidationError) as err:
            engine.validate_request([["a", "b"]])
        assert _code(err) == "bad_dtype"

    def test_ragged_rows_are_bad_dtype(self, engine):
        with pytest.raises(RequestValidationError) as err:
            engine.validate_request([[1.0, 2.0], [3.0]])
        assert _code(err) == "bad_dtype"

    def test_3d_array_is_bad_shape(self, engine):
        with pytest.raises(RequestValidationError) as err:
            engine.validate_request(np.zeros((2, 3, 4)))
        assert _code(err) == "bad_shape"

    def test_zero_devices_is_empty_batch(self, engine):
        width = engine.n_features
        with pytest.raises(RequestValidationError) as err:
            engine.validate_request(np.empty((0, width)))
        assert _code(err) == "empty_batch"

    def test_device_cap_is_too_large(self, fitted_detector):
        capped = ScoringEngine(fitted_detector, max_request_devices=4)
        batch = np.zeros((5, capped.n_features))
        with pytest.raises(RequestValidationError) as err:
            capped.validate_request(batch)
        assert _code(err) == "too_large"

    def test_wrong_width_is_bad_width(self, engine):
        with pytest.raises(RequestValidationError) as err:
            engine.validate_request(np.zeros((2, engine.n_features + 1)))
        assert _code(err) == "bad_width"

    @pytest.mark.parametrize("poison", [np.nan, np.inf, -np.inf])
    def test_non_finite_values(self, engine, poison):
        batch = np.zeros((2, engine.n_features))
        batch[1, 0] = poison
        with pytest.raises(RequestValidationError) as err:
            engine.validate_request(batch)
        assert _code(err) == "non_finite"

    def test_unknown_boundary(self, engine):
        batch = np.zeros((1, engine.n_features))
        with pytest.raises(RequestValidationError) as err:
            engine.validate_request(batch, boundaries=["B9"])
        assert _code(err) == "unknown_boundary"

    def test_empty_boundary_list(self, engine):
        batch = np.zeros((1, engine.n_features))
        with pytest.raises(RequestValidationError) as err:
            engine.validate_request(batch, boundaries=[])
        assert _code(err) == "empty_boundaries"

    def test_single_device_promoted_to_batch(self, engine, experiment_data):
        array, names = engine.validate_request(
            experiment_data.dutt_fingerprints[0]
        )
        assert array.shape == (1, engine.n_features)
        assert names == tuple(BOUNDARY_NAMES)

    def test_unknown_default_boundary_rejected(self, fitted_detector):
        with pytest.raises(ValueError, match="default boundary"):
            ScoringEngine(fitted_detector, default_boundaries=["B7"])

    def test_unfitted_detector_rejected(self):
        class _Bare:
            boundaries = {}

        with pytest.raises(ValueError, match="no trained boundaries"):
            ScoringEngine(_Bare())


class TestScoring:
    def test_matches_detector_classify(self, engine, fitted_detector,
                                       experiment_data):
        fingerprints = experiment_data.dutt_fingerprints
        result = engine.score(fingerprints)
        expected = fitted_detector.decision_scores_batch(fingerprints)
        for name in BOUNDARY_NAMES:
            assert np.array_equal(result.scores[name], expected[name])
            assert np.array_equal(
                result.verdicts[name],
                fitted_detector.classify(fingerprints, boundary=name),
            )

    def test_boundary_subset(self, engine, experiment_data):
        result = engine.score(experiment_data.dutt_fingerprints[:3],
                              boundaries=["B5", "B3"])
        assert set(result.scores) == {"B3", "B5"}
        assert result.n_devices == 3

    def test_to_json_round_trips(self, engine, experiment_data):
        result = engine.score(experiment_data.dutt_fingerprints[:2],
                              boundaries=["B5"])
        payload = result.to_json()
        assert payload["n_devices"] == 2
        block = payload["boundaries"]["B5"]
        assert block["scores"] == [float(s) for s in result.scores["B5"]]
        assert block["trojan_free"] == [bool(v) for v in result.verdicts["B5"]]

    def test_metrics_are_recorded(self, fitted_detector, experiment_data):
        engine = ScoringEngine(fitted_detector)
        n = 7
        engine.score(experiment_data.dutt_fingerprints[:n])
        snapshot = engine.metrics_snapshot()
        assert snapshot["counters"]["serve.requests"] == 1
        assert snapshot["counters"]["serve.devices_scored"] == n
        assert snapshot["histograms"]["serve.batch_size"]["count"] == 1
        assert snapshot["histograms"]["serve.latency_ms"]["count"] == 1
        for name in BOUNDARY_NAMES:
            passed = snapshot["counters"][f"serve.verdicts.{name}.trojan_free"]
            flagged = snapshot["counters"][f"serve.verdicts.{name}.flagged"]
            assert passed + flagged == n


class TestBatching:
    def test_submit_matches_direct_score(self, engine, experiment_data):
        fingerprints = experiment_data.dutt_fingerprints[:8]
        with BatchingEngine(engine) as batcher:
            batched = batcher.submit(fingerprints)
        direct = engine.score(fingerprints)
        for name in BOUNDARY_NAMES:
            assert np.array_equal(batched.scores[name], direct.scores[name])

    def test_concurrent_clients_get_their_own_slices(self, engine,
                                                     experiment_data):
        """Coalesced batches must slice back to per-request results exactly."""
        fingerprints = experiment_data.dutt_fingerprints
        expected = engine.score(fingerprints)
        chunks = [(i, fingerprints[i:i + 3]) for i in
                  range(0, fingerprints.shape[0] - 2, 3)]
        results: dict = {}
        errors: list = []

        def client(offset, block):
            try:
                results[offset] = batcher.submit(block)
            except BaseException as error:  # pragma: no cover - test plumbing
                errors.append(error)

        with BatchingEngine(engine, max_batch=64, max_wait_ms=5.0) as batcher:
            threads = [threading.Thread(target=client, args=chunk)
                       for chunk in chunks]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors
        assert len(results) == len(chunks)
        # Coalesced batches go through BLAS with a different stacked shape,
        # which may perturb the last ULP — hence allclose, not array_equal.
        for offset, result in results.items():
            for name in BOUNDARY_NAMES:
                np.testing.assert_allclose(
                    result.scores[name], expected.scores[name][offset:offset + 3],
                    rtol=1e-9, atol=1e-12, err_msg=f"{offset}/{name}",
                )

    def test_mixed_boundary_subsets_in_one_batch(self, engine,
                                                 experiment_data):
        fingerprints = experiment_data.dutt_fingerprints[:4]
        subsets = [("B5",), ("B1", "B3"), None]
        results = [None] * len(subsets)

        def client(index, subset):
            results[index] = batcher.submit(fingerprints, boundaries=subset)

        with BatchingEngine(engine, max_wait_ms=5.0) as batcher:
            threads = [threading.Thread(target=client, args=(i, s))
                       for i, s in enumerate(subsets)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        assert set(results[0].scores) == {"B5"}
        assert set(results[1].scores) == {"B1", "B3"}
        assert set(results[2].scores) == set(BOUNDARY_NAMES)

    def test_invalid_request_rejected_before_queueing(self, engine):
        with BatchingEngine(engine) as batcher:
            with pytest.raises(RequestValidationError):
                batcher.submit(np.full((1, engine.n_features), np.nan))
            assert batcher.queue_depth == 0

    def test_backpressure_raises_queue_full(self, fitted_detector,
                                            experiment_data):
        """With the worker wedged and the queue full, submit fails fast."""
        release = threading.Event()

        class _WedgedEngine(ScoringEngine):
            def score(self, fingerprints, boundaries=None):
                release.wait(timeout=10)
                return super().score(fingerprints, boundaries)

        engine = _WedgedEngine(fitted_detector)
        fingerprints = experiment_data.dutt_fingerprints[:2]
        batcher = BatchingEngine(engine, max_wait_ms=0.0, max_queue=1)
        try:
            first = threading.Thread(
                target=lambda: batcher.submit(fingerprints), daemon=True
            )
            first.start()
            deadline = time.monotonic() + 5
            # Wait for the worker to pull the first request and wedge on it.
            while batcher.queue_depth != 0 and time.monotonic() < deadline:
                time.sleep(0.001)
            second = threading.Thread(
                target=lambda: batcher.submit(fingerprints), daemon=True
            )
            second.start()
            while batcher.queue_depth != 1 and time.monotonic() < deadline:
                time.sleep(0.001)
            assert batcher.queue_depth == 1
            with pytest.raises(QueueFullError):
                batcher.submit(fingerprints)
            snapshot = engine.metrics_snapshot()
            assert snapshot["counters"]["serve.rejected"] == 1
        finally:
            release.set()
            batcher.close()
        first.join(timeout=5)
        second.join(timeout=5)
        assert not first.is_alive() and not second.is_alive()

    def test_submit_after_close_raises(self, engine, experiment_data):
        batcher = BatchingEngine(engine)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(experiment_data.dutt_fingerprints[:1])

    def test_knob_validation(self, engine):
        with pytest.raises(ValueError, match="max_batch"):
            BatchingEngine(engine, max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            BatchingEngine(engine, max_wait_ms=-1)
        with pytest.raises(ValueError, match="max_queue"):
            BatchingEngine(engine, max_queue=0)
