"""Lot / wafer / die bookkeeping."""

import pytest

from repro.process.wafer import DieSite, Lot, Wafer


def test_die_site_label():
    assert DieSite(lot_id=0, wafer_id=2, x=3, y=1).label() == "L0.W2.(3,1)"


def test_wafer_grid_size_and_sites():
    wafer = Wafer.with_grid(lot_id=1, wafer_id=0, rows=3, cols=4)
    assert len(wafer) == 12
    assert {(s.x, s.y) for s in wafer.sites} == {(x, y) for y in range(3) for x in range(4)}


def test_wafer_rejects_empty_grid():
    with pytest.raises(ValueError):
        Wafer.with_grid(0, 0, rows=0, cols=4)


def test_lot_with_wafers():
    lot = Lot.with_wafers(lot_id=5, n_wafers=2, rows=2, cols=2)
    assert lot.size() == (2, 4)
    sites = lot.sites()
    assert len(sites) == 8
    assert all(site.lot_id == 5 for site in sites)
    assert {site.wafer_id for site in sites} == {0, 1}


def test_lot_rejects_zero_wafers():
    with pytest.raises(ValueError):
        Lot.with_wafers(0, n_wafers=0, rows=2, cols=2)


def test_empty_lot_size():
    assert Lot(lot_id=0).size() == (0, 0)
