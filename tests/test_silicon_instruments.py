"""Bench instruments: noise statistics and validation."""

import numpy as np
import pytest

from repro.silicon.instruments import DelayAnalyzer, Instrument, PowerMeter


def test_rejects_negative_sigmas():
    with pytest.raises(ValueError):
        Instrument(gain_sigma=-0.1)
    with pytest.raises(ValueError):
        Instrument(offset_sigma=-0.1)


def test_noise_free_instrument_is_transparent():
    meter = Instrument(seed=0)
    assert meter.read(3.14) == 3.14
    np.testing.assert_array_equal(meter.read_many([1.0, 2.0]), [1.0, 2.0])


def test_gain_noise_statistics():
    meter = Instrument(gain_sigma=0.02, seed=0)
    readings = meter.read_many(np.full(4000, 10.0))
    rel = readings / 10.0 - 1.0
    assert abs(rel.mean()) < 0.002
    assert rel.std() == pytest.approx(0.02, rel=0.1)


def test_offset_noise_statistics():
    meter = Instrument(offset_sigma=0.5, seed=0)
    readings = meter.read_many(np.zeros(4000))
    assert readings.std() == pytest.approx(0.5, rel=0.1)


def test_read_is_seeded():
    assert Instrument(gain_sigma=0.1, seed=3).read(1.0) == Instrument(
        gain_sigma=0.1, seed=3
    ).read(1.0)


def test_power_meter_default_noise():
    meter = PowerMeter(seed=0)
    assert meter.gain_sigma == pytest.approx(0.0015)
    assert meter.offset_sigma == 0.0


def test_delay_analyzer_default_noise():
    analyzer = DelayAnalyzer(seed=0)
    assert analyzer.gain_sigma == pytest.approx(0.002)


def test_shared_generator_advances_state():
    rng = np.random.default_rng(0)
    meter = Instrument(gain_sigma=0.1, seed=rng)
    assert meter.read(1.0) != meter.read(1.0)
