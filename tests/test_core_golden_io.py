"""Golden-chip reference detector and persistence helpers."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.golden import GoldenReferenceDetector
from repro.core.io import (
    load_detector_config,
    load_experiment_data,
    save_detector_config,
    save_experiment_data,
)
from tests.conftest import small_detector_config


class TestGoldenReference:
    def test_unfitted_raises(self, experiment_data):
        with pytest.raises(RuntimeError):
            GoldenReferenceDetector().classify(experiment_data.dutt_fingerprints)

    def test_accepts_golden_population(self, experiment_data):
        golden = experiment_data.trojan_free_fingerprints()
        detector = GoldenReferenceDetector(small_detector_config()).fit(golden)
        assert detector.classify(golden).mean() > 0.6

    def test_catches_trojans(self, experiment_data):
        golden = experiment_data.trojan_free_fingerprints()
        detector = GoldenReferenceDetector(small_detector_config()).fit(golden)
        metrics = detector.evaluate(
            experiment_data.dutt_fingerprints, experiment_data.infested
        )
        assert metrics.fp_count == 0

    def test_region_accessor(self, experiment_data):
        detector = GoldenReferenceDetector(small_detector_config()).fit(
            experiment_data.trojan_free_fingerprints()
        )
        assert detector.region.n_training_samples_ == 12


class TestExperimentDataIo:
    def test_round_trip(self, experiment_data, tmp_path):
        path = save_experiment_data(experiment_data, tmp_path / "run.npz")
        loaded = load_experiment_data(path)
        np.testing.assert_array_equal(loaded.sim_pcms, experiment_data.sim_pcms)
        np.testing.assert_array_equal(
            loaded.dutt_fingerprints, experiment_data.dutt_fingerprints
        )
        np.testing.assert_array_equal(loaded.infested, experiment_data.infested)
        assert loaded.trojan_names == experiment_data.trojan_names
        assert loaded.campaign is None

    def test_suffix_added_when_missing(self, experiment_data, tmp_path):
        path = save_experiment_data(experiment_data, tmp_path / "run")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_missing_arrays_rejected(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, sim_pcms=np.zeros((2, 1)))
        with pytest.raises(ValueError, match="missing arrays"):
            load_experiment_data(bad)


class TestConfigIo:
    def test_round_trip(self, tmp_path):
        config = DetectorConfig(kde_samples=1234, svm_nu=0.11, seed=99)
        path = save_detector_config(config, tmp_path / "config.json")
        assert load_detector_config(path) == config

    def test_unknown_keys_rejected(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text('{"kde_samples": 10, "flux_capacitor": true}')
        with pytest.raises(ValueError, match="unknown configuration keys"):
            load_detector_config(path)
