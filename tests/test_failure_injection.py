"""Failure-injection tests: degenerate inputs must fail loudly or degrade
gracefully, never silently mis-classify."""

import numpy as np
import pytest

from repro.core.boundaries import TrustedRegion
from repro.core.config import DetectorConfig
from repro.core.pipeline import GoldenChipFreeDetector
from repro.learn.mars import MarsRegression
from repro.learn.ocsvm import OneClassSvm
from repro.stats.kde import AdaptiveKde
from repro.stats.kmm import KernelMeanMatcher, importance_resample
from repro.stats.preprocessing import Whitener
from tests.conftest import small_detector_config


class TestDegenerateInputs:
    def test_nan_fingerprints_rejected_at_every_entry(self, experiment_data):
        bad = experiment_data.sim_fingerprints.copy()
        bad[0, 0] = np.nan
        detector = GoldenChipFreeDetector(small_detector_config())
        with pytest.raises(ValueError, match="non-finite"):
            detector.fit_premanufacturing(experiment_data.sim_pcms, bad)

    def test_constant_pcm_population_still_runs(self, experiment_data):
        """Zero-variance silicon PCMs: the pipeline degrades, not crashes."""
        detector = GoldenChipFreeDetector(small_detector_config())
        detector.fit_premanufacturing(
            experiment_data.sim_pcms, experiment_data.sim_fingerprints
        )
        constant = np.full_like(experiment_data.dutt_pcms,
                                experiment_data.dutt_pcms.mean())
        detector.fit_silicon(constant)
        verdicts = detector.classify(experiment_data.dutt_fingerprints)
        assert verdicts.shape == (experiment_data.n_devices,)

    def test_single_point_boundary_population(self):
        region = TrustedRegion(nu=0.5, seed=0).fit(np.full((3, 4), 2.0))
        assert region.predict_trojan_free(np.full((1, 4), 2.0))[0]
        assert not region.predict_trojan_free(np.full((1, 4), 50.0))[0]

    def test_whitener_on_constant_data(self):
        whitener = Whitener().fit(np.full((5, 3), 1.0))
        out = whitener.transform(np.full((2, 3), 1.0))
        np.testing.assert_allclose(out, 0.0)

    def test_mars_on_constant_target(self):
        x = np.random.default_rng(0).uniform(0, 1, size=(50, 1))
        model = MarsRegression().fit(x, np.full(50, 7.0))
        np.testing.assert_allclose(model.predict(x), 7.0, atol=1e-9)

    def test_mars_on_constant_input(self):
        x = np.full((40, 1), 3.0)
        y = np.random.default_rng(0).standard_normal(40)
        model = MarsRegression().fit(x, y)
        # No usable knots: the model collapses to the mean.
        assert model.n_basis_functions() == 1

    def test_kde_on_duplicated_points(self):
        data = np.tile([[1.0, 2.0]], (30, 1))
        kde = AdaptiveKde().fit(data)
        samples = kde.sample(100, rng=0)
        assert samples.shape == (100, 2)
        assert np.isfinite(samples).all()

    def test_ocsvm_on_duplicated_points(self):
        svm = OneClassSvm(nu=0.5, seed=0).fit(np.ones((20, 2)))
        assert svm.predict_inside(np.ones((1, 2)))[0]

    def test_kmm_with_single_test_sample(self, experiment_data):
        matcher = KernelMeanMatcher(B=10.0).fit(
            experiment_data.sim_pcms, experiment_data.dutt_pcms[:1]
        )
        resampled = importance_resample(
            experiment_data.sim_pcms, matcher.weights, 20, rng=0
        )
        assert np.isfinite(resampled).all()


class TestScoringEntryValidation:
    """classify/evaluate run the same loud input contract as the fit entries."""

    def test_nan_fingerprints_rejected_at_classify(self, fitted_detector,
                                                   experiment_data):
        bad = experiment_data.dutt_fingerprints.copy()
        bad[2, 3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            fitted_detector.classify(bad)

    def test_inf_fingerprints_rejected_at_evaluate(self, fitted_detector,
                                                   experiment_data):
        bad = experiment_data.dutt_fingerprints.copy()
        bad[0, 0] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            fitted_detector.evaluate(bad, experiment_data.infested)

    def test_wrong_feature_width_rejected(self, fitted_detector,
                                          experiment_data):
        narrow = experiment_data.dutt_fingerprints[:, :-1]
        with pytest.raises(ValueError, match="trained on"):
            fitted_detector.classify(narrow)
        with pytest.raises(ValueError, match="trained on"):
            fitted_detector.evaluate(narrow, experiment_data.infested)

    def test_1d_fingerprints_rejected(self, fitted_detector,
                                      experiment_data):
        with pytest.raises(ValueError, match="2-D"):
            fitted_detector.classify(experiment_data.dutt_fingerprints[0])

    def test_mismatched_infested_length_rejected(self, fitted_detector,
                                                 experiment_data):
        with pytest.raises(ValueError, match="one label per device"):
            fitted_detector.evaluate(
                experiment_data.dutt_fingerprints,
                experiment_data.infested[:-1],
            )

    def test_untrained_boundary_rejected(self, fitted_detector,
                                         experiment_data):
        with pytest.raises(KeyError, match="B7"):
            fitted_detector.classify(experiment_data.dutt_fingerprints,
                                     boundary="B7")

    def test_batch_entries_share_the_contract(self, fitted_detector,
                                              experiment_data):
        bad = experiment_data.dutt_fingerprints.copy()
        bad[1, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            fitted_detector.decision_scores_batch(bad)
        with pytest.raises(ValueError, match="non-finite"):
            fitted_detector.classify_batch(bad)


class TestHostileMeasurements:
    def test_wildly_corrupted_fingerprints_are_flagged(self, fitted_detector,
                                                       experiment_data):
        """A tester fault (all-zero power readings) must never pass."""
        zeros = np.full((5, experiment_data.dutt_fingerprints.shape[1]), 1e-9)
        assert not fitted_detector.classify(zeros).any()

    def test_saturated_fingerprints_are_flagged(self, fitted_detector,
                                                experiment_data):
        huge = experiment_data.dutt_fingerprints[:5] * 100.0
        assert not fitted_detector.classify(huge).any()

    def test_negative_power_readings_are_flagged(self, fitted_detector,
                                                 experiment_data):
        negative = -np.abs(experiment_data.dutt_fingerprints[:5])
        assert not fitted_detector.classify(negative).any()

    def test_config_kde_alpha_extremes_still_sound(self, experiment_data):
        for alpha in (0.0, 1.0):
            detector = GoldenChipFreeDetector(small_detector_config(kde_alpha=alpha))
            detector.fit_premanufacturing(
                experiment_data.sim_pcms, experiment_data.sim_fingerprints
            )
            detector.fit_silicon(experiment_data.dutt_pcms)
            results = detector.evaluate(
                experiment_data.dutt_fingerprints, experiment_data.infested
            )
            assert all(m.fp_count == 0 for m in results.values())
