PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-baseline bench-cold bench-serve bench-scaling cache-stats table1 smoke-obs smoke-serve

test:
	$(PYTHON) -m pytest -q

# Observability smoke test: run table1 --trace on a small fixture and
# assert the manifest validates against the checked-in JSON schema.
# The same file runs as part of `make test` (it lives in tests/).
smoke-obs:
	$(PYTHON) -m pytest -q tests/test_obs_smoke.py

# Serving smoke test: export a bundle, serve it over HTTP, score through
# the client, and exercise the structured-error contract end to end.
# The same files run as part of `make test` (they live in tests/).
smoke-serve:
	$(PYTHON) -m pytest -q tests/test_serve_bundle.py tests/test_serve_engine.py tests/test_serve_server.py

# Regression gate: fail when any component is >20% slower than the
# committed baseline (benchmarks/BENCH_components.json), then check the
# screening service sustains the acceptance throughput.
bench:
	$(PYTHON) benchmarks/bench_report.py --compare benchmarks/BENCH_components.json
	$(PYTHON) benchmarks/bench_serve.py --min-throughput 5000

# Closed-loop HTTP load test of the screening service on its own.
bench-serve:
	$(PYTHON) benchmarks/bench_serve.py --min-throughput 5000

# Population-size scaling of the Monte Carlo engines (report only, not
# gated): wall-clock loop vs batched at growing n_mc with the speedup.
bench-scaling:
	$(PYTHON) benchmarks/bench_scaling.py

# Regenerate the committed baseline (run on the reference machine only).
bench-baseline:
	$(PYTHON) benchmarks/bench_report.py --output benchmarks/BENCH_components.json

# Same gate with the artifact cache forced off: times the real compute
# paths even when a warm .repro-cache is sitting in the working tree.
bench-cold:
	REPRO_CACHE=0 $(PYTHON) benchmarks/bench_report.py --compare benchmarks/BENCH_components.json

# On-disk inventory of the artifact cache (root, cap, entries per stage).
cache-stats:
	$(PYTHON) -m repro.cli cache stats

table1:
	$(PYTHON) -m repro.cli table1
