PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-baseline table1

test:
	$(PYTHON) -m pytest -q

# Regression gate: fail when any component is >20% slower than the
# committed baseline (benchmarks/BENCH_components.json).
bench:
	$(PYTHON) benchmarks/bench_report.py --compare benchmarks/BENCH_components.json

# Regenerate the committed baseline (run on the reference machine only).
bench-baseline:
	$(PYTHON) benchmarks/bench_report.py --output benchmarks/BENCH_components.json

table1:
	$(PYTHON) -m repro.cli table1
