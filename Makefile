PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-baseline table1 smoke-obs

test:
	$(PYTHON) -m pytest -q

# Observability smoke test: run table1 --trace on a small fixture and
# assert the manifest validates against the checked-in JSON schema.
# The same file runs as part of `make test` (it lives in tests/).
smoke-obs:
	$(PYTHON) -m pytest -q tests/test_obs_smoke.py

# Regression gate: fail when any component is >20% slower than the
# committed baseline (benchmarks/BENCH_components.json).
bench:
	$(PYTHON) benchmarks/bench_report.py --compare benchmarks/BENCH_components.json

# Regenerate the committed baseline (run on the reference machine only).
bench-baseline:
	$(PYTHON) benchmarks/bench_report.py --output benchmarks/BENCH_components.json

table1:
	$(PYTHON) -m repro.cli table1
